//! Error type for the HTTP layer.

use std::error::Error;
use std::fmt;

use revelio_net::NetError;
use revelio_tls::TlsError;

/// Errors surfaced by HTTP clients and servers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HttpError {
    /// The request or response text could not be parsed.
    Malformed(String),
    /// A URL was not of the form `https://host/path`.
    BadUrl(String),
    /// The TLS layer failed (handshake, certificate, records).
    Tls(TlsError),
    /// The transport failed.
    Net(NetError),
    /// The server answered with an error status the caller treats as fatal.
    Status(u16),
}

impl HttpError {
    /// Whether this error is a transient transport condition worth
    /// retrying. Transient [`NetError`]s can surface directly
    /// ([`HttpError::Net`]) or wrapped by a failed TLS handshake
    /// ([`HttpError::Tls`] around [`TlsError::Net`]); everything else —
    /// parse failures, bad URLs, certificate rejections, error statuses —
    /// is durable.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            HttpError::Net(e) => e.is_transient(),
            HttpError::Tls(TlsError::Net(e)) => e.is_transient(),
            _ => false,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(why) => write!(f, "malformed http message: {why}"),
            HttpError::BadUrl(u) => write!(f, "bad url {u:?}"),
            HttpError::Tls(e) => write!(f, "tls failure: {e}"),
            HttpError::Net(e) => write!(f, "network failure: {e}"),
            HttpError::Status(s) => write!(f, "unexpected http status {s}"),
        }
    }
}

impl Error for HttpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HttpError::Tls(e) => Some(e),
            HttpError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TlsError> for HttpError {
    fn from(e: TlsError) -> Self {
        HttpError::Tls(e)
    }
}

impl From<NetError> for HttpError {
    fn from(e: NetError) -> Self {
        HttpError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(HttpError::Status(404).to_string().contains("404"));
        assert!(HttpError::BadUrl("x".into()).to_string().contains('x'));
    }

    #[test]
    fn transient_classification_sees_through_tls() {
        assert!(HttpError::Net(NetError::Timeout("a".into())).is_transient());
        assert!(HttpError::Net(NetError::Dropped("a".into())).is_transient());
        assert!(HttpError::Tls(TlsError::Net(NetError::ConnectionClosed)).is_transient());
        assert!(!HttpError::Net(NetError::ConnectionRefused("a".into())).is_transient());
        assert!(!HttpError::Status(503).is_transient());
        assert!(!HttpError::Malformed("x".into()).is_transient());
        assert!(!HttpError::BadUrl("x".into()).is_transient());
    }
}

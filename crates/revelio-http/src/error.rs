//! Error type for the HTTP layer.

use std::error::Error;
use std::fmt;

use revelio_net::NetError;
use revelio_tls::TlsError;

/// Errors surfaced by HTTP clients and servers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HttpError {
    /// The request or response text could not be parsed.
    Malformed(String),
    /// A URL was not of the form `https://host/path`.
    BadUrl(String),
    /// The TLS layer failed (handshake, certificate, records).
    Tls(TlsError),
    /// The transport failed.
    Net(NetError),
    /// The server answered with an error status the caller treats as fatal.
    Status(u16),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(why) => write!(f, "malformed http message: {why}"),
            HttpError::BadUrl(u) => write!(f, "bad url {u:?}"),
            HttpError::Tls(e) => write!(f, "tls failure: {e}"),
            HttpError::Net(e) => write!(f, "network failure: {e}"),
            HttpError::Status(s) => write!(f, "unexpected http status {s}"),
        }
    }
}

impl Error for HttpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HttpError::Tls(e) => Some(e),
            HttpError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TlsError> for HttpError {
    fn from(e: TlsError) -> Self {
        HttpError::Tls(e)
    }
}

impl From<NetError> for HttpError {
    fn from(e: NetError) -> Self {
        HttpError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(HttpError::Status(404).to_string().contains("404"));
        assert!(HttpError::BadUrl("x".into()).to_string().contains('x'));
    }
}

//! HTTP servers: TLS-terminated for the public interface, plaintext for
//! provider-internal traffic.

use std::sync::Arc;

use revelio_net::net::{ConnectionHandler, Listener, SimNet};
use revelio_net::NetError;
use revelio_tls::{AppHandler, TlsListener, TlsServerConfig};

use crate::message::{Request, Response};
use crate::router::Router;
use crate::HttpError;

/// Bridges the router into the TLS application layer.
struct RouterApp {
    router: Router,
}

impl AppHandler for RouterApp {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        let response = match Request::from_bytes(request) {
            Ok(req) => self.router.dispatch(&req),
            Err(e) => Response::status(400)
                .with_header("X-Parse-Error", &e.to_string().replace(['\r', '\n'], " ")),
        };
        response
            .to_bytes()
            // A handler that built an unencodable response (header
            // injection) must not take the connection down with it.
            .unwrap_or_else(|_| Response::status(500).to_bytes().expect("no headers"))
    }
}

/// Binds `router` behind TLS at `address` — the public face of a Revelio
/// VM (only this port is reachable; everything else refuses connections).
///
/// # Errors
///
/// Returns [`HttpError::Net`] when the address is taken.
pub fn serve_https(
    net: &SimNet,
    address: &str,
    tls: TlsServerConfig,
    router: Router,
) -> Result<(), HttpError> {
    let listener = TlsListener::new(tls, Arc::new(RouterApp { router }));
    net.bind(address, Arc::new(listener))?;
    Ok(())
}

/// A plaintext HTTP listener (provider-internal networks only).
struct PlainHttpListener {
    router: Router,
}

struct PlainConnection {
    router: Router,
}

impl ConnectionHandler for PlainConnection {
    fn on_message(&mut self, message: &[u8]) -> Result<Vec<u8>, NetError> {
        let response = match Request::from_bytes(message) {
            Ok(req) => self.router.dispatch(&req),
            Err(_) => Response::status(400),
        };
        Ok(response
            .to_bytes()
            .unwrap_or_else(|_| Response::status(500).to_bytes().expect("no headers")))
    }
}

impl Listener for PlainHttpListener {
    fn accept(&self) -> Box<dyn ConnectionHandler> {
        Box::new(PlainConnection {
            router: self.router.clone(),
        })
    }
}

/// Binds `router` over plain HTTP at `address` (the SP node's internal
/// endpoints, §5.3.1 — isolated from the public cloud).
///
/// # Errors
///
/// Returns [`HttpError::Net`] when the address is taken.
pub fn serve_http(net: &SimNet, address: &str, router: Router) -> Result<(), HttpError> {
    net.bind(address, Arc::new(PlainHttpListener { router }))?;
    Ok(())
}

/// A plaintext HTTP client call (provider-internal networks only).
///
/// # Errors
///
/// Returns [`HttpError`] on transport or parse failure.
pub fn plain_request(
    net: &SimNet,
    address: &str,
    request: &Request,
) -> Result<Response, HttpError> {
    let mut conn = net.dial(address)?;
    // The path labels the exchange so per-route fault plans apply.
    let bytes = conn.exchange_routed(&request.path, &request.to_bytes()?)?;
    Response::from_bytes(&bytes)
}

/// [`plain_request`] with trace-context propagation: when a span is open
/// in `telemetry`, its context is injected as a `traceparent` header (an
/// explicit header on the request wins) so the server side can stitch the
/// call into the caller's trace.
///
/// # Errors
///
/// Returns [`HttpError`] on transport or parse failure.
pub fn plain_request_traced(
    net: &SimNet,
    address: &str,
    request: &Request,
    telemetry: Option<&revelio_telemetry::Telemetry>,
) -> Result<Response, HttpError> {
    let context = telemetry.and_then(revelio_telemetry::Telemetry::current_context);
    match context {
        Some(context) if request.header(crate::router::TRACEPARENT_HEADER).is_none() => {
            let traced = request
                .clone()
                .with_header(crate::router::TRACEPARENT_HEADER, &context.to_traceparent());
            plain_request(net, address, &traced)
        }
        _ => plain_request(net, address, request),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_net::clock::SimClock;
    use revelio_net::net::NetConfig;

    fn net() -> SimNet {
        SimNet::new(SimClock::new(), NetConfig::default())
    }

    #[test]
    fn plain_http_roundtrip() {
        let net = net();
        let router = Router::new().get("/ping", |_| Response::ok(b"pong".to_vec()));
        serve_http(&net, "10.1.0.1:80", router).unwrap();
        let res = plain_request(&net, "10.1.0.1:80", &Request::get("/ping")).unwrap();
        assert_eq!(res.status, 200);
        assert_eq!(res.body, b"pong");
    }

    #[test]
    fn unknown_route_is_404() {
        let net = net();
        serve_http(&net, "10.1.0.1:80", Router::new()).unwrap();
        let res = plain_request(&net, "10.1.0.1:80", &Request::get("/nope")).unwrap();
        assert_eq!(res.status, 404);
    }

    #[test]
    fn malformed_request_is_400() {
        let net = net();
        serve_http(&net, "10.1.0.1:80", Router::new()).unwrap();
        let mut conn = net.dial("10.1.0.1:80").unwrap();
        let res = Response::from_bytes(&conn.exchange(b"garbage").unwrap()).unwrap();
        assert_eq!(res.status, 400);
    }

    #[test]
    fn double_bind_surfaces_as_http_error() {
        let net = net();
        serve_http(&net, "10.1.0.1:80", Router::new()).unwrap();
        assert!(matches!(
            serve_http(&net, "10.1.0.1:80", Router::new()),
            Err(HttpError::Net(NetError::AddressInUse(_)))
        ));
    }
}

//! HTTP request and response types with HTTP/1.1 textual encoding.
//!
//! Bodies are binary-safe: `Content-Length` delimits them exactly, so
//! attestation reports and encrypted key blobs travel unmangled.

use crate::HttpError;

/// Parsed header fields, in order of appearance.
pub type Headers = Vec<(String, String)>;

/// Request methods the workspace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Retrieve a resource.
    Get,
    /// Submit data.
    Post,
}

impl Method {
    /// The token on the request line.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }

    fn parse(s: &str) -> Result<Self, HttpError> {
        match s {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            other => Err(HttpError::Malformed(format!("unsupported method {other}"))),
        }
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Path, beginning with `/`.
    pub path: String,
    /// Header fields, in order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// A GET request for `path`.
    #[must_use]
    pub fn get(path: &str) -> Self {
        Request {
            method: Method::Get,
            path: path.to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A POST request with `body`.
    #[must_use]
    pub fn post(path: &str, body: Vec<u8>) -> Self {
        Request {
            method: Method::Post,
            path: path.to_owned(),
            headers: Vec::new(),
            body,
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// First header value with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Encodes as HTTP/1.1 text.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::Malformed`] when a header would corrupt the
    /// wire format: CR/LF in a name or value (header injection), or a
    /// caller-supplied `Content-Length` (the encoder owns framing).
    pub fn to_bytes(&self) -> Result<Vec<u8>, HttpError> {
        let mut out = format!("{} {} HTTP/1.1\r\n", self.method.as_str(), self.path).into_bytes();
        encode_headers(&self.headers, self.body.len(), &mut out)?;
        out.extend_from_slice(&self.body);
        Ok(out)
    }

    /// Parses HTTP/1.1 request text.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::Malformed`] with a reason on any syntax error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, HttpError> {
        let (head, body) = split_head(bytes)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let method = Method::parse(parts.next().unwrap_or_default())?;
        let path = parts
            .next()
            .filter(|p| p.starts_with('/'))
            .ok_or_else(|| HttpError::Malformed("missing path".into()))?
            .to_owned();
        if parts.next() != Some("HTTP/1.1") {
            return Err(HttpError::Malformed("missing version".into()));
        }
        let (headers, content_length) = parse_headers(lines)?;
        check_body(body, content_length)?;
        Ok(Request {
            method,
            path,
            headers,
            body: body.to_vec(),
        })
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header fields, in order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` with `body`.
    #[must_use]
    pub fn ok(body: Vec<u8>) -> Self {
        Response {
            status: 200,
            headers: Vec::new(),
            body,
        }
    }

    /// An empty response with `status`.
    #[must_use]
    pub fn status(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// First header value with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// `true` for 2xx statuses.
    #[must_use]
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Status",
        }
    }

    /// Encodes as HTTP/1.1 text.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::Malformed`] when a header would corrupt the
    /// wire format: CR/LF in a name or value (header injection), or a
    /// caller-supplied `Content-Length` (the encoder owns framing).
    pub fn to_bytes(&self) -> Result<Vec<u8>, HttpError> {
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason()).into_bytes();
        encode_headers(&self.headers, self.body.len(), &mut out)?;
        out.extend_from_slice(&self.body);
        Ok(out)
    }

    /// Parses HTTP/1.1 response text.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::Malformed`] with a reason on any syntax error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, HttpError> {
        let (head, body) = split_head(bytes)?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let mut parts = status_line.splitn(3, ' ');
        if parts.next() != Some("HTTP/1.1") {
            return Err(HttpError::Malformed("missing version".into()));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::Malformed("bad status".into()))?;
        let (headers, content_length) = parse_headers(lines)?;
        check_body(body, content_length)?;
        Ok(Response {
            status,
            headers,
            body: body.to_vec(),
        })
    }
}

/// Validates one header field against the wire format. Encoding is the
/// chokepoint — `headers` is a public field, so builder-side checks alone
/// could be bypassed.
fn validate_header(name: &str, value: &str) -> Result<(), HttpError> {
    if name.is_empty() || name.contains(['\r', '\n', ':', ' ']) {
        return Err(HttpError::Malformed(format!(
            "invalid header name {name:?}"
        )));
    }
    if value.contains(['\r', '\n']) {
        return Err(HttpError::Malformed(format!(
            "header {name} value contains CR/LF (injection)"
        )));
    }
    if name.eq_ignore_ascii_case("content-length") {
        return Err(HttpError::Malformed(
            "caller-supplied Content-Length rejected: the encoder computes framing".into(),
        ));
    }
    Ok(())
}

/// Emits validated headers plus the computed `Content-Length` framing.
fn encode_headers(headers: &Headers, body_len: usize, out: &mut Vec<u8>) -> Result<(), HttpError> {
    for (name, value) in headers {
        validate_header(name, value)?;
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("Content-Length: {body_len}\r\n\r\n").as_bytes());
    Ok(())
}

fn split_head(bytes: &[u8]) -> Result<(&str, &[u8]), HttpError> {
    let sep = bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| HttpError::Malformed("no header terminator".into()))?;
    let head = std::str::from_utf8(&bytes[..sep])
        .map_err(|_| HttpError::Malformed("non-utf8 headers".into()))?;
    Ok((head, &bytes[sep + 4..]))
}

fn parse_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<(Headers, Option<usize>), HttpError> {
    let mut headers = Vec::new();
    let mut content_length = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = value
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
            // Duplicate Content-Length headers with differing values are a
            // classic request-smuggling vector; agreeing duplicates are
            // collapsed, conflicting ones rejected.
            match content_length {
                Some(existing) if existing != parsed => {
                    return Err(HttpError::Malformed(
                        "conflicting duplicate content-length".into(),
                    ));
                }
                _ => content_length = Some(parsed),
            }
        } else {
            headers.push((name.to_owned(), value.to_owned()));
        }
    }
    Ok((headers, content_length))
}

fn check_body(body: &[u8], content_length: Option<usize>) -> Result<(), HttpError> {
    match content_length {
        Some(len) if len != body.len() => Err(HttpError::Malformed(format!(
            "content-length {len} but body has {} bytes",
            body.len()
        ))),
        None if !body.is_empty() => Err(HttpError::Malformed("body without content-length".into())),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::post("/api/report", b"binary\x00body".to_vec())
            .with_header("Host", "pad.example.org")
            .with_header("X-Custom", "1");
        let parsed = Request::from_bytes(&req.to_bytes().unwrap()).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.header("host"), Some("pad.example.org"));
    }

    #[test]
    fn response_roundtrip() {
        let res = Response::ok(b"payload".to_vec()).with_header("Content-Type", "text/html");
        assert_eq!(Response::from_bytes(&res.to_bytes().unwrap()).unwrap(), res);
    }

    #[test]
    fn wrong_content_length_rejected() {
        let mut bytes = Request::post("/", b"12345".to_vec()).to_bytes().unwrap();
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            Request::from_bytes(&bytes),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn header_injection_rejected_at_encode_time() {
        // Regression: a CR/LF in a header value used to smuggle an extra
        // header line onto the wire.
        let smuggle = Request::get("/").with_header("X", "a\r\nEvil: 1");
        assert!(matches!(smuggle.to_bytes(), Err(HttpError::Malformed(_))));
        let lf_only = Response::ok(vec![]).with_header("X", "a\nEvil: 1");
        assert!(matches!(lf_only.to_bytes(), Err(HttpError::Malformed(_))));
        let bad_name = Request::get("/").with_header("X\r\nEvil", "1");
        assert!(matches!(bad_name.to_bytes(), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn caller_supplied_content_length_rejected() {
        // The encoder computes framing; a caller-supplied Content-Length
        // used to be emitted alongside it as a shadowed duplicate.
        let req = Request::post("/", b"12345".to_vec()).with_header("Content-Length", "3");
        assert!(matches!(req.to_bytes(), Err(HttpError::Malformed(_))));
        let res = Response::ok(b"12345".to_vec()).with_header("content-length", "5");
        assert!(matches!(res.to_bytes(), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn conflicting_duplicate_content_length_rejected() {
        let bytes = b"GET / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nab";
        assert!(matches!(
            Request::from_bytes(bytes),
            Err(HttpError::Malformed(_))
        ));
        // Agreeing duplicates collapse instead of erroring.
        let ok = b"GET / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nab";
        assert_eq!(Request::from_bytes(ok).unwrap().body, b"ab");
    }

    #[test]
    fn bad_method_rejected() {
        assert!(Request::from_bytes(b"BREW /pot HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn missing_path_rejected() {
        assert!(Request::from_bytes(b"GET no-slash HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn status_helpers() {
        assert!(Response::ok(vec![]).is_success());
        assert!(!Response::status(404).is_success());
        assert_eq!(Response::status(429).reason(), "Too Many Requests");
    }

    proptest! {
        #[test]
        fn request_roundtrip_arbitrary_body(body: Vec<u8>) {
            let req = Request::post("/p", body);
            prop_assert_eq!(Request::from_bytes(&req.to_bytes().unwrap()).unwrap(), req);
        }

        #[test]
        fn response_roundtrip_arbitrary(status in 100u16..600, body: Vec<u8>) {
            let res = Response { status, headers: vec![], body };
            prop_assert_eq!(Response::from_bytes(&res.to_bytes().unwrap()).unwrap(), res);
        }

        #[test]
        fn clean_headers_roundtrip_without_smuggling(
            names in proptest::collection::vec("[a-z]{1,10}", 0..4),
            values in proptest::collection::vec("[a-z]{0,10}", 0..4),
        ) {
            let mut req = Request::get("/");
            for (name, value) in names.iter().zip(values.iter()) {
                // "content-length" is reserved for the encoder.
                if name.eq_ignore_ascii_case("content-length") {
                    continue;
                }
                req = req.with_header(name, value);
            }
            let expected = req.headers.len();
            let parsed = Request::from_bytes(&req.to_bytes().unwrap()).unwrap();
            // Exactly the headers that went in come out — nothing smuggled,
            // nothing dropped.
            prop_assert_eq!(parsed.headers.len(), expected);
            prop_assert_eq!(parsed, req);
        }

        #[test]
        fn adversarial_header_values_never_smuggle(
            prefix in "[a-z]{0,6}",
            evil_name in "[A-Z][a-z]{1,8}",
            evil_value in "[a-z]{1,6}",
            separator in 0usize..4,
        ) {
            // Compose an injection attempt by hand: the shim's String
            // strategy never yields CR/LF, so we build the payloads here.
            let sep = ["\r\n", "\n", "\r", "\r\n\r\n"][separator];
            let value = format!("{prefix}{sep}{evil_name}: {evil_value}");
            let req = Request::get("/").with_header("X-Attempt", &value);
            // Encoding must refuse; the smuggled header must never appear
            // on the wire.
            prop_assert!(req.to_bytes().is_err());
            let res = Response::ok(vec![]).with_header(&value, "v");
            prop_assert!(res.to_bytes().is_err());
        }

        #[test]
        fn parser_never_panics_on_arbitrary_bytes(bytes: Vec<u8>) {
            let _ = Request::from_bytes(&bytes);
            let _ = Response::from_bytes(&bytes);
        }
    }
}

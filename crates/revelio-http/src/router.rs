//! A tiny exact-path router.

use std::collections::HashMap;
use std::sync::Arc;

use crate::message::{Method, Request, Response};

/// A request handler.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// Routes requests by `(method, path)`; unmatched requests go to the
/// fallback handler (404 by default).
#[derive(Clone, Default)]
pub struct Router {
    routes: HashMap<(Method, String), Arc<Handler>>,
    fallback: Option<Arc<Handler>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("routes", &self.routes.len())
            .finish_non_exhaustive()
    }
}

impl Router {
    /// Creates an empty router.
    #[must_use]
    pub fn new() -> Self {
        Router::default()
    }

    /// Registers a GET handler.
    #[must_use]
    pub fn get(
        self,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.route(Method::Get, path, handler)
    }

    /// Registers a POST handler.
    #[must_use]
    pub fn post(
        self,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.route(Method::Post, path, handler)
    }

    /// Registers a handler for `method` + `path`.
    #[must_use]
    pub fn route(
        mut self,
        method: Method,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes
            .insert((method, path.to_owned()), Arc::new(handler));
        self
    }

    /// Sets the handler for unmatched requests (e.g. delegate to an inner
    /// application router).
    #[must_use]
    pub fn with_fallback(
        mut self,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.fallback = Some(Arc::new(handler));
        self
    }

    /// Dispatches a request.
    #[must_use]
    pub fn dispatch(&self, request: &Request) -> Response {
        match self.routes.get(&(request.method, request.path.clone())) {
            Some(handler) => handler(request),
            None => match &self.fallback {
                Some(f) => f(request),
                None => Response::status(404),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_matches_method_and_path() {
        let router = Router::new()
            .get("/", |_| Response::ok(b"index".to_vec()))
            .post("/submit", |req| Response::ok(req.body.clone()));
        assert_eq!(router.dispatch(&Request::get("/")).body, b"index");
        assert_eq!(
            router
                .dispatch(&Request::post("/submit", b"x".to_vec()))
                .body,
            b"x"
        );
    }

    #[test]
    fn unmatched_is_404() {
        let router = Router::new().get("/", |_| Response::ok(vec![]));
        assert_eq!(router.dispatch(&Request::get("/missing")).status, 404);
        // Same path, wrong method:
        assert_eq!(router.dispatch(&Request::post("/", vec![])).status, 404);
    }

    #[test]
    fn handlers_see_request_state() {
        let router = Router::new().post("/echo-header", |req| {
            Response::ok(req.header("X-In").unwrap_or("none").as_bytes().to_vec())
        });
        let req = Request::post("/echo-header", vec![]).with_header("X-In", "v");
        assert_eq!(router.dispatch(&req).body, b"v");
    }
}

//! A tiny exact-path router with optional trace-context extraction.

use std::collections::HashMap;
use std::sync::Arc;

use revelio_telemetry::{Telemetry, TraceContext};

use crate::message::{Method, Request, Response};

/// The header carrying a [`TraceContext`] across node boundaries
/// (W3C-`traceparent`-style; see [`TraceContext::parse_traceparent`]).
pub const TRACEPARENT_HEADER: &str = "traceparent";

/// A request handler.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// Routes requests by `(method, path)`; unmatched requests go to the
/// fallback handler (404 by default).
///
/// A router with tracing attached ([`Router::with_tracing`]) extracts the
/// `traceparent` header from every request and wraps the handler in an
/// `http.server` span parented to the remote caller, stitching cross-node
/// traces together. Requests carrying a *malformed* `traceparent` are
/// rejected with 400 before any handler runs — with or without tracing
/// attached — so a bad propagation header can never half-join a trace.
#[derive(Clone, Default)]
pub struct Router {
    routes: HashMap<(Method, String), Arc<Handler>>,
    fallback: Option<Arc<Handler>>,
    /// Telemetry registry + component label for server-side spans.
    tracing: Option<(Telemetry, String)>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("routes", &self.routes.len())
            .finish_non_exhaustive()
    }
}

impl Router {
    /// Creates an empty router.
    #[must_use]
    pub fn new() -> Self {
        Router::default()
    }

    /// Registers a GET handler.
    #[must_use]
    pub fn get(
        self,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.route(Method::Get, path, handler)
    }

    /// Registers a POST handler.
    #[must_use]
    pub fn post(
        self,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.route(Method::Post, path, handler)
    }

    /// Registers a handler for `method` + `path`.
    #[must_use]
    pub fn route(
        mut self,
        method: Method,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes
            .insert((method, path.to_owned()), Arc::new(handler));
        self
    }

    /// Sets the handler for unmatched requests (e.g. delegate to an inner
    /// application router).
    #[must_use]
    pub fn with_fallback(
        mut self,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.fallback = Some(Arc::new(handler));
        self
    }

    /// Attaches a telemetry registry: incoming `traceparent` contexts are
    /// re-opened as `http.server` spans labelled with `component`.
    #[must_use]
    pub fn with_tracing(mut self, telemetry: Telemetry, component: &str) -> Self {
        self.tracing = Some((telemetry, component.to_string()));
        self
    }

    /// Dispatches a request, handling trace-context extraction first.
    #[must_use]
    pub fn dispatch(&self, request: &Request) -> Response {
        let context = match request.header(TRACEPARENT_HEADER) {
            Some(value) => match TraceContext::parse_traceparent(value) {
                Some(context) => Some(context),
                // Rejected independently of whether tracing is attached:
                // propagation correctness is a protocol property, not a
                // telemetry option.
                None => {
                    return Response::status(400)
                        .with_header("X-Trace-Error", "malformed traceparent")
                }
            },
            None => None,
        };
        match (&self.tracing, context) {
            (Some((telemetry, component)), Some(context)) => {
                let span = telemetry.span_with_remote_parent(
                    "http.server",
                    &[("component", component), ("path", &request.path)],
                    context,
                );
                let response = self.dispatch_inner(request);
                span.attr("status", &response.status.to_string());
                span.finish_ms();
                response
            }
            _ => self.dispatch_inner(request),
        }
    }

    fn dispatch_inner(&self, request: &Request) -> Response {
        match self.routes.get(&(request.method, request.path.clone())) {
            Some(handler) => handler(request),
            None => match &self.fallback {
                Some(f) => f(request),
                None => Response::status(404),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_matches_method_and_path() {
        let router = Router::new()
            .get("/", |_| Response::ok(b"index".to_vec()))
            .post("/submit", |req| Response::ok(req.body.clone()));
        assert_eq!(router.dispatch(&Request::get("/")).body, b"index");
        assert_eq!(
            router
                .dispatch(&Request::post("/submit", b"x".to_vec()))
                .body,
            b"x"
        );
    }

    #[test]
    fn unmatched_is_404() {
        let router = Router::new().get("/", |_| Response::ok(vec![]));
        assert_eq!(router.dispatch(&Request::get("/missing")).status, 404);
        // Same path, wrong method:
        assert_eq!(router.dispatch(&Request::post("/", vec![])).status, 404);
    }

    #[test]
    fn handlers_see_request_state() {
        let router = Router::new().post("/echo-header", |req| {
            Response::ok(req.header("X-In").unwrap_or("none").as_bytes().to_vec())
        });
        let req = Request::post("/echo-header", vec![]).with_header("X-In", "v");
        assert_eq!(router.dispatch(&req).body, b"v");
    }

    #[test]
    fn malformed_traceparent_rejected_even_without_tracing() {
        let router = Router::new().get("/", |_| Response::ok(vec![]));
        let req = Request::get("/").with_header(TRACEPARENT_HEADER, "not-a-context");
        let res = router.dispatch(&req);
        assert_eq!(res.status, 400);
        assert_eq!(res.header("X-Trace-Error"), Some("malformed traceparent"));
    }

    #[test]
    fn valid_traceparent_opens_server_span_with_remote_parent() {
        use revelio_net::clock::SimClock;
        use revelio_telemetry::Telemetry;

        let telemetry = Telemetry::new(SimClock::new());
        let router = Router::new()
            .get("/", |_| Response::ok(vec![]))
            .with_tracing(telemetry.clone(), "test");
        let context = TraceContext {
            trace_id: 5,
            span_id: 17,
        };
        let req = Request::get("/").with_header(TRACEPARENT_HEADER, &context.to_traceparent());
        assert_eq!(router.dispatch(&req).status, 200);
        let span = telemetry.span_record(0).unwrap();
        assert_eq!(span.name, "http.server");
        assert_eq!(span.trace_id, 5);
        assert_eq!(span.parent, Some(17));
        assert_eq!(span.attrs["component"], "test");
        assert_eq!(span.attrs["path"], "/");
        assert_eq!(span.attrs["status"], "200");
        assert!(span.end_us.is_some(), "server span finished with response");
    }

    #[test]
    fn untraced_requests_record_no_span() {
        use revelio_net::clock::SimClock;
        use revelio_telemetry::Telemetry;

        let telemetry = Telemetry::new(SimClock::new());
        let router = Router::new()
            .get("/", |_| Response::ok(vec![]))
            .with_tracing(telemetry.clone(), "test");
        assert_eq!(router.dispatch(&Request::get("/")).status, 200);
        assert_eq!(telemetry.span_count(), 0);
    }
}

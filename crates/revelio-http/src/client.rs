//! The HTTPS client: DNS resolution, TLS sessions, and the per-connection
//! key introspection the web extension relies on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use revelio_crypto::ed25519::VerifyingKey;
use revelio_crypto::hmac::Hmac;
use revelio_crypto::sha2::Sha256;
use revelio_net::dns::DnsZone;
use revelio_net::net::SimNet;
use revelio_tls::{TlsClient, TlsClientConfig, TlsSession};

use crate::message::{Request, Response};
use crate::HttpError;

/// Splits `https://host/path?query` into `(host, path)`.
///
/// The host ends at the first `/`, `?`, or `#`: a query string with no
/// path (`https://h?x=1`) yields path `/?x=1`, and a fragment is
/// client-side state that is never sent on the wire, so it is stripped.
///
/// # Errors
///
/// Returns [`HttpError::BadUrl`] for anything else.
pub fn parse_https_url(url: &str) -> Result<(&str, String), HttpError> {
    let rest = url
        .strip_prefix("https://")
        .ok_or_else(|| HttpError::BadUrl(url.to_owned()))?;
    let rest = &rest[..rest.find('#').unwrap_or(rest.len())];
    let (host, tail) = match rest.find(['/', '?']) {
        Some(idx) => (&rest[..idx], &rest[idx..]),
        None => (rest, ""),
    };
    if host.is_empty() {
        return Err(HttpError::BadUrl(url.to_owned()));
    }
    let path = if tail.starts_with('?') {
        // A query with no path component is rooted at "/".
        format!("/{tail}")
    } else if tail.is_empty() {
        "/".to_owned()
    } else {
        tail.to_owned()
    };
    Ok((host, path))
}

/// An HTTPS client bound to a network, a DNS zone and a root store.
pub struct HttpsClient {
    net: SimNet,
    dns: DnsZone,
    tls: TlsClient,
    entropy_seed: [u8; 32],
    connection_counter: Arc<AtomicU64>,
    /// When set, the current trace context is injected into every request
    /// as a `traceparent` header ([`crate::router::TRACEPARENT_HEADER`]).
    telemetry: Option<revelio_telemetry::Telemetry>,
}

impl std::fmt::Debug for HttpsClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpsClient").finish_non_exhaustive()
    }
}

impl HttpsClient {
    /// Creates a client. `entropy_seed` drives per-connection ephemeral
    /// keys (deterministic simulation stand-in for the browser CSPRNG).
    #[must_use]
    pub fn new(
        net: SimNet,
        dns: DnsZone,
        tls_config: TlsClientConfig,
        entropy_seed: [u8; 32],
    ) -> Self {
        HttpsClient {
            net,
            dns,
            tls: TlsClient::new(tls_config),
            entropy_seed,
            connection_counter: Arc::new(AtomicU64::new(0)),
            telemetry: None,
        }
    }

    /// Enables trace-context propagation: sessions opened by this client
    /// inject the innermost open span's context into outgoing requests.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: revelio_telemetry::Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    fn next_ephemeral(&self) -> [u8; 32] {
        let n = self.connection_counter.fetch_add(1, Ordering::Relaxed);
        let mut mac = Hmac::<Sha256>::new(&self.entropy_seed);
        mac.update(b"client-ephemeral");
        mac.update(&n.to_le_bytes());
        mac.finalize().try_into().expect("32 bytes")
    }

    /// Opens an HTTPS session to `host` (resolving via DNS and performing
    /// the TLS handshake).
    ///
    /// # Errors
    ///
    /// Returns [`HttpError`] on resolution, transport, or TLS failure.
    pub fn open(&self, host: &str) -> Result<HttpsSession, HttpError> {
        let address = self.dns.resolve(host)?;
        let session = self
            .tls
            .connect(&self.net, &address, host, self.next_ephemeral())?;
        Ok(HttpsSession {
            session,
            host: host.to_owned(),
            telemetry: self.telemetry.clone(),
        })
    }

    /// One-shot GET of `url` over a fresh session.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError`] on any failure.
    pub fn get(&self, url: &str) -> Result<Response, HttpError> {
        let (host, path) = parse_https_url(url)?;
        let mut session = self.open(host)?;
        session.send(&Request::get(&path))
    }

    /// One-shot POST to `url` over a fresh session.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError`] on any failure.
    pub fn post(&self, url: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        let (host, path) = parse_https_url(url)?;
        let mut session = self.open(host)?;
        session.send(&Request::post(&path, body))
    }
}

/// An open HTTPS session (kept alive across requests, like a browser
/// connection pool entry).
pub struct HttpsSession {
    session: TlsSession,
    host: String,
    telemetry: Option<revelio_telemetry::Telemetry>,
}

impl std::fmt::Debug for HttpsSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpsSession")
            .field("host", &self.host)
            .finish_non_exhaustive()
    }
}

impl HttpsSession {
    /// Sends one request on this session.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError`] on transport or parse failure.
    pub fn send(&mut self, request: &Request) -> Result<Response, HttpError> {
        let mut request = request.clone().with_header("Host", &self.host);
        // Client half of context propagation: inject the innermost open
        // span as a `traceparent` header (an explicit header wins).
        if request.header(crate::router::TRACEPARENT_HEADER).is_none() {
            if let Some(context) = self
                .telemetry
                .as_ref()
                .and_then(revelio_telemetry::Telemetry::current_context)
            {
                request = request
                    .with_header(crate::router::TRACEPARENT_HEADER, &context.to_traceparent());
            }
        }
        // The path labels the exchange so per-route fault plans apply.
        let bytes = self
            .session
            .request_routed(&request.path, &request.to_bytes()?)?;
        Response::from_bytes(&bytes)
    }

    /// The host this session was opened for.
    #[must_use]
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The public key the TLS connection terminates at — what the Revelio
    /// extension checks against the attestation report on *every* request
    /// (§5.3.2).
    #[must_use]
    pub fn peer_public_key(&self) -> VerifyingKey {
        self.session.peer_public_key()
    }

    /// RA-TLS evidence delivered in the handshake, if the server sent any.
    #[must_use]
    pub fn peer_evidence(&self) -> Option<&[u8]> {
        self.session.peer_evidence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Router;
    use crate::server::serve_https;
    use proptest::prelude::*;
    use revelio_crypto::ed25519::SigningKey;
    use revelio_net::clock::SimClock;
    use revelio_net::net::NetConfig;
    use revelio_pki::acme::{AcmeCa, AcmePolicy};
    use revelio_pki::cert::CertificateSigningRequest;
    use revelio_tls::TlsServerConfig;

    struct World {
        net: SimNet,
        dns: DnsZone,
        clock: SimClock,
        ca: AcmeCa,
    }

    fn world() -> World {
        let clock = SimClock::new();
        let net = SimNet::new(clock.clone(), NetConfig::default());
        let dns = DnsZone::new();
        let ca = AcmeCa::new(
            "SimEncrypt",
            [3; 32],
            AcmePolicy::default(),
            clock.clone(),
            dns.clone(),
        );
        World {
            net,
            dns,
            clock,
            ca,
        }
    }

    fn serve(w: &World, domain: &str, address: &str, key: &SigningKey, router: Router) {
        let csr = CertificateSigningRequest::new(domain, key, "Org", "CH");
        let chain = w.ca.order_certificate(&csr).unwrap();
        serve_https(
            &w.net,
            address,
            TlsServerConfig::new(chain, key.clone(), [8; 32]),
            router,
        )
        .unwrap();
        w.dns.set_address(domain, address);
    }

    fn client(w: &World) -> HttpsClient {
        HttpsClient::new(
            w.net.clone(),
            w.dns.clone(),
            TlsClientConfig {
                trusted_roots: vec![w.ca.root_certificate()],
                clock: w.clock.clone(),
                telemetry: None,
            },
            [42; 32],
        )
    }

    #[test]
    fn https_get_roundtrip() {
        let w = world();
        let key = SigningKey::from_seed(&[1; 32]);
        serve(
            &w,
            "pad.example.org",
            "10.0.0.1:443",
            &key,
            Router::new().get("/", |_| Response::ok(b"welcome".to_vec())),
        );
        let res = client(&w).get("https://pad.example.org/").unwrap();
        assert!(res.is_success());
        assert_eq!(res.body, b"welcome");
    }

    #[test]
    fn session_reuse_and_key_introspection() {
        let w = world();
        let key = SigningKey::from_seed(&[1; 32]);
        serve(
            &w,
            "pad.example.org",
            "10.0.0.1:443",
            &key,
            Router::new().get("/a", |_| Response::ok(b"a".to_vec())),
        );
        let client = client(&w);
        let mut session = client.open("pad.example.org").unwrap();
        assert_eq!(session.send(&Request::get("/a")).unwrap().body, b"a");
        assert_eq!(session.send(&Request::get("/a")).unwrap().body, b"a");
        assert_eq!(session.peer_public_key(), key.verifying_key());
    }

    #[test]
    fn unresolvable_host_fails() {
        let w = world();
        assert!(matches!(
            client(&w).get("https://ghost.example.org/"),
            Err(HttpError::Net(_))
        ));
    }

    #[test]
    fn bad_urls_rejected() {
        assert!(parse_https_url("http://insecure.example").is_err());
        assert!(parse_https_url("https://").is_err());
        assert!(parse_https_url("https://?x=1").is_err());
        assert!(parse_https_url("https://#frag").is_err());
        assert_eq!(parse_https_url("https://h").unwrap(), ("h", "/".to_owned()));
        assert_eq!(
            parse_https_url("https://h/p/q").unwrap(),
            ("h", "/p/q".to_owned())
        );
    }

    #[test]
    fn query_string_is_not_part_of_the_host() {
        // Regression: the query used to be folded into the host, so
        // `https://pad.example.org?x=1` failed DNS resolution.
        assert_eq!(
            parse_https_url("https://pad.example.org?x=1").unwrap(),
            ("pad.example.org", "/?x=1".to_owned())
        );
        assert_eq!(
            parse_https_url("https://h/p?q=2&r=3").unwrap(),
            ("h", "/p?q=2&r=3".to_owned())
        );
        assert_eq!(
            parse_https_url("https://h/p#frag").unwrap(),
            ("h", "/p".to_owned())
        );
        assert_eq!(
            parse_https_url("https://h#frag").unwrap(),
            ("h", "/".to_owned())
        );
    }

    proptest! {
        #[test]
        fn parsed_hosts_never_contain_delimiters(url: String) {
            if let Ok((host, path)) = parse_https_url(&url) {
                prop_assert!(!host.is_empty());
                prop_assert!(!host.contains('/'));
                prop_assert!(!host.contains('?'));
                prop_assert!(!host.contains('#'));
                prop_assert!(path.starts_with('/'));
            }
        }

        #[test]
        fn structured_urls_split_exactly(
            host in "[a-z]{1,12}",
            seg in "[a-z]{1,6}",
            query in "[a-z]{1,8}",
            has_path: bool,
            has_query: bool,
            has_fragment: bool,
        ) {
            let path = if has_path { format!("/{seg}") } else { String::new() };
            let mut url = format!("https://{host}{path}");
            if has_query {
                url.push('?');
                url.push_str(&query);
            }
            if has_fragment {
                url.push_str("#frag");
            }
            let (h, p) = parse_https_url(&url).unwrap();
            prop_assert_eq!(h, host.as_str());
            let base = if has_path { path } else { "/".to_owned() };
            let expected = if has_query { format!("{base}?{query}") } else { base };
            prop_assert_eq!(p, expected);
        }
    }

    #[test]
    fn post_reaches_handler() {
        let w = world();
        let key = SigningKey::from_seed(&[1; 32]);
        serve(
            &w,
            "pad.example.org",
            "10.0.0.1:443",
            &key,
            Router::new().post("/echo", |req| Response::ok(req.body.clone())),
        );
        let res = client(&w)
            .post("https://pad.example.org/echo", b"payload".to_vec())
            .unwrap();
        assert_eq!(res.body, b"payload");
    }

    #[test]
    fn trace_context_propagates_client_to_server() {
        use revelio_telemetry::Telemetry;

        let w = world();
        let key = SigningKey::from_seed(&[1; 32]);
        let telemetry = Telemetry::new(w.clock.clone());
        serve(
            &w,
            "pad.example.org",
            "10.0.0.1:443",
            &key,
            Router::new()
                .get("/", |_| Response::ok(vec![]))
                .with_tracing(telemetry.clone(), "node"),
        );
        let client = client(&w).with_telemetry(telemetry.clone());
        let browse = telemetry.span("client.browse");
        let mut session = client.open("pad.example.org").unwrap();
        assert!(session.send(&Request::get("/")).unwrap().is_success());
        browse.finish_ms();

        // The server span is a child of the client span, same trace.
        let client_span = telemetry.span_record(0).unwrap();
        assert_eq!(client_span.name, "client.browse");
        let server_span = telemetry.span_record(1).unwrap();
        assert_eq!(server_span.name, "http.server");
        assert_eq!(server_span.parent, Some(client_span.id));
        assert_eq!(server_span.trace_id, client_span.trace_id);
    }

    #[test]
    fn no_open_span_means_no_traceparent_header() {
        use revelio_telemetry::Telemetry;

        let w = world();
        let key = SigningKey::from_seed(&[1; 32]);
        let telemetry = Telemetry::new(w.clock.clone());
        serve(
            &w,
            "pad.example.org",
            "10.0.0.1:443",
            &key,
            Router::new().get("/tp", |req| {
                Response::ok(
                    req.header(crate::router::TRACEPARENT_HEADER)
                        .unwrap_or("none")
                        .as_bytes()
                        .to_vec(),
                )
            }),
        );
        let client = client(&w).with_telemetry(telemetry);
        let res = client.get("https://pad.example.org/tp").unwrap();
        assert_eq!(res.body, b"none");
    }

    #[test]
    fn host_header_is_set() {
        let w = world();
        let key = SigningKey::from_seed(&[1; 32]);
        serve(
            &w,
            "pad.example.org",
            "10.0.0.1:443",
            &key,
            Router::new().get("/host", |req| {
                Response::ok(req.header("Host").unwrap_or("none").as_bytes().to_vec())
            }),
        );
        let res = client(&w).get("https://pad.example.org/host").unwrap();
        assert_eq!(res.body, b"pad.example.org");
    }
}

//! Minimal HTTP/1.1 over the simulated TLS stack.
//!
//! Revelio VMs serve their web application *and* their attestation
//! evidence over HTTPS: the paper assumes "the validated HTTP server
//! provides an attestation report under a well-known URL (e.g., as in the
//! case of robots.txt)" (§5.3.2), and the SP node drives certificate and
//! key distribution with plain HTTP POSTs inside the provider's network
//! (§5.3.1). This crate supplies both sides:
//!
//! * [`message`] — request/response types with a faithful textual
//!   HTTP/1.1 encoding;
//! * [`router`] — a tiny path router;
//! * [`server`] — TLS-terminated (public) and plaintext (provider-internal)
//!   listeners over [`revelio_net`];
//! * [`client`] — an HTTPS client with DNS resolution, session reuse, and
//!   the connection-key introspection the web extension needs.
//!
//! The conventional location for Revelio evidence is
//! [`WELL_KNOWN_ATTESTATION_PATH`].

pub mod client;
pub mod error;
pub mod message;
pub mod router;
pub mod server;

pub use error::HttpError;

/// The well-known URL path where a Revelio VM serves its attestation
/// evidence bundle.
pub const WELL_KNOWN_ATTESTATION_PATH: &str = "/.well-known/revelio-attestation";

//! Error type for the TLS simulation.

use std::error::Error;
use std::fmt;

use revelio_crypto::wire::WireError;
use revelio_crypto::CryptoError;
use revelio_net::NetError;
use revelio_pki::PkiError;

/// Errors surfaced by handshakes and record protection.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TlsError {
    /// The handshake failed; the message names the step.
    Handshake(String),
    /// Certificate validation failed.
    Certificate(PkiError),
    /// A record failed authentication (tampering or key mismatch).
    RecordAuthentication,
    /// Transport failure.
    Net(NetError),
    /// Malformed message.
    Wire(WireError),
    /// Cryptographic failure.
    Crypto(CryptoError),
}

impl fmt::Display for TlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlsError::Handshake(why) => write!(f, "handshake failed: {why}"),
            TlsError::Certificate(e) => write!(f, "certificate validation failed: {e}"),
            TlsError::RecordAuthentication => write!(f, "record authentication failed"),
            TlsError::Net(e) => write!(f, "transport error: {e}"),
            TlsError::Wire(e) => write!(f, "wire format error: {e}"),
            TlsError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl Error for TlsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TlsError::Certificate(e) => Some(e),
            TlsError::Net(e) => Some(e),
            TlsError::Wire(e) => Some(e),
            TlsError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PkiError> for TlsError {
    fn from(e: PkiError) -> Self {
        TlsError::Certificate(e)
    }
}

impl From<NetError> for TlsError {
    fn from(e: NetError) -> Self {
        TlsError::Net(e)
    }
}

impl From<WireError> for TlsError {
    fn from(e: WireError) -> Self {
        TlsError::Wire(e)
    }
}

impl From<CryptoError> for TlsError {
    fn from(e: CryptoError) -> Self {
        TlsError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_propagates_detail() {
        let e = TlsError::Handshake("bad server hello".into());
        assert!(e.to_string().contains("bad server hello"));
    }
}

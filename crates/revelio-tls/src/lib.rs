//! A TLS-1.3-style secure channel over the simulated network.
//!
//! Revelio's end-user story hinges on one TLS property the paper's web
//! extension queries from the browser: *which public key does my current
//! connection terminate at?* (§5.3.2). The extension compares that key to
//! the key hash inside the attestation report's `REPORT_DATA`; a match
//! proves the TLS endpoint lives inside the attested VM (requirement
//! **F3**). This crate therefore implements a real handshake with real
//! key agreement and certificate authentication — not a stub — so that
//! man-in-the-middle attacks behave exactly as they would against TLS:
//!
//! * an attacker without a valid certificate for the domain is rejected by
//!   chain/domain validation;
//! * an attacker who *does* obtain a valid certificate (they control DNS,
//!   §5.3.2) completes the handshake — and is caught only by Revelio's
//!   key pinning, which is the paper's point.
//!
//! Protocol sketch (one [`revelio_net::net::Connection`] exchange per
//! flight): `ClientHello{x25519, random, sni}` →
//! `ServerHello{x25519, random, chain, sig(transcript)}`; traffic keys via
//! HKDF over the shared secret; records are ChaCha20-Poly1305 with
//! direction-separated keys and sequence-number nonces.

pub mod client;
pub mod error;
pub mod handshake;
pub mod record;
pub mod server;

pub use client::{TlsClient, TlsClientConfig, TlsSession};
pub use error::TlsError;
pub use server::{AppHandler, TlsListener, TlsServerConfig};

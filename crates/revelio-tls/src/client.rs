//! The TLS client and established session.

use revelio_crypto::ed25519::VerifyingKey;
use revelio_crypto::x25519;
use revelio_net::clock::SimClock;
use revelio_net::net::{Connection, SimNet};
use revelio_pki::cert::{Certificate, CertificateChain};
use revelio_telemetry::Telemetry;

use crate::handshake::{transcript_hash, ClientHello, ServerHello};
use crate::record::{derive_traffic_keys, TrafficKeys};
use crate::TlsError;

/// Client-side trust configuration.
#[derive(Clone)]
pub struct TlsClientConfig {
    /// Trusted root certificates (the browser's root store).
    pub trusted_roots: Vec<Certificate>,
    /// Clock for validity-window checks.
    pub clock: SimClock,
    /// When set, each [`TlsClient::connect`] records a `tls.handshake`
    /// span and handshake counters/latency metrics.
    pub telemetry: Option<Telemetry>,
}

impl std::fmt::Debug for TlsClientConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlsClientConfig")
            .field("trusted_roots", &self.trusted_roots.len())
            .finish_non_exhaustive()
    }
}

/// A TLS client.
#[derive(Debug, Clone)]
pub struct TlsClient {
    config: TlsClientConfig,
}

impl TlsClient {
    /// Creates a client trusting `config.trusted_roots`.
    #[must_use]
    pub fn new(config: TlsClientConfig) -> Self {
        TlsClient { config }
    }

    /// Connects to `address`, expecting a certificate for `server_name`.
    ///
    /// `ephemeral_seed` supplies the client's handshake entropy
    /// (deterministic for reproducible simulations; a browser uses its
    /// CSPRNG).
    ///
    /// # Errors
    ///
    /// Returns [`TlsError`] on transport failure, malformed flights,
    /// certificate rejection (chain, validity, domain), or a bad
    /// transcript signature.
    pub fn connect(
        &self,
        net: &SimNet,
        address: &str,
        server_name: &str,
        ephemeral_seed: [u8; 32],
    ) -> Result<TlsSession, TlsError> {
        let span = self
            .config
            .telemetry
            .as_ref()
            // The dialed address identifies the hop in assembled traces
            // (the SNI alone is ambiguous across a multi-node fleet).
            .map(|t| {
                t.span_with(
                    "tls.handshake",
                    &[("sni", server_name), ("address", address)],
                )
            });
        let result = self.connect_inner(net, address, server_name, ephemeral_seed);
        if let Some(telemetry) = &self.config.telemetry {
            let span = span.expect("span exists when telemetry does");
            if result.is_err() {
                span.attr("outcome", "failure");
            }
            let ms = span.finish_ms();
            telemetry.observe("revelio_tls_handshake_ms", ms);
            let outcome = if result.is_ok() {
                "revelio_tls_handshakes_total"
            } else {
                "revelio_tls_handshake_failures_total"
            };
            telemetry.counter_add(outcome, 1);
        }
        result
    }

    fn connect_inner(
        &self,
        net: &SimNet,
        address: &str,
        server_name: &str,
        ephemeral_seed: [u8; 32],
    ) -> Result<TlsSession, TlsError> {
        let mut conn = net.dial(address)?;

        let eph_secret = ephemeral_seed;
        let mut random = [0u8; 32];
        let pk = x25519::public_key(&eph_secret);
        // Derive the client random from the seed (distinct from the key).
        random.copy_from_slice(&revelio_crypto::sha2::Sha256::digest(pk));

        let hello = ClientHello {
            ephemeral_public: pk,
            random,
            server_name: server_name.to_owned(),
        };
        let reply_bytes = conn.exchange(&hello.to_bytes())?;
        let reply = ServerHello::from_bytes(&reply_bytes)?;

        // Certificate validation: chain to a trusted root, validity,
        // domain coverage.
        let now_ms = self.config.clock.now_us() / 1000;
        reply.chain.validate(&self.config.trusted_roots, now_ms)?;
        reply.chain.leaf().check_domain(server_name)?;

        // Transcript signature: proves possession of the certified key and
        // binds the ephemerals and any RA-TLS evidence (no signature ⇒
        // MITM could swap them; unsigned evidence could be stripped).
        let transcript = transcript_hash(
            &hello,
            &reply.ephemeral_public,
            &reply.random,
            &reply.chain,
            reply.evidence.as_deref(),
        );
        reply
            .chain
            .leaf()
            .public_key
            .verify(&transcript, &reply.signature)
            .map_err(|_| TlsError::Handshake("bad transcript signature".into()))?;

        let shared = x25519::shared_secret(&eph_secret, &reply.ephemeral_public);
        let keys = derive_traffic_keys(&shared, &hello.random, &reply.random);
        Ok(TlsSession {
            conn,
            keys,
            peer_chain: reply.chain,
            peer_evidence: reply.evidence,
        })
    }
}

/// An established TLS session.
pub struct TlsSession {
    conn: Connection,
    keys: TrafficKeys,
    peer_chain: CertificateChain,
    peer_evidence: Option<Vec<u8>>,
}

impl std::fmt::Debug for TlsSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlsSession")
            .field("peer", &self.peer_chain.leaf().subject)
            .finish_non_exhaustive()
    }
}

impl TlsSession {
    /// Sends one protected request and returns the protected response's
    /// plaintext.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::Net`] on transport failure or
    /// [`TlsError::RecordAuthentication`] on tampering.
    pub fn request(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, TlsError> {
        self.request_routed("", plaintext)
    }

    /// Sends one protected request labelled with `route` (the HTTP path,
    /// for callers that have one) and returns the protected response's
    /// plaintext. The label only feeds the fabric's per-route fault
    /// injection; it is never transmitted.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::Net`] on transport failure or
    /// [`TlsError::RecordAuthentication`] on tampering.
    pub fn request_routed(&mut self, route: &str, plaintext: &[u8]) -> Result<Vec<u8>, TlsError> {
        let sealed = self.keys.client_to_server.seal(plaintext);
        let reply = self.conn.exchange_routed(route, &sealed)?;
        self.keys.server_to_client.open(&reply)
    }

    /// The server's certificate chain.
    #[must_use]
    pub fn peer_chain(&self) -> &CertificateChain {
        &self.peer_chain
    }

    /// The public key this connection cryptographically terminates at —
    /// the value the Revelio web extension compares against the
    /// attestation report's `REPORT_DATA` (§5.3.2).
    #[must_use]
    pub fn peer_public_key(&self) -> VerifyingKey {
        self.peer_chain.leaf().public_key
    }

    /// RA-TLS evidence the server delivered inside the handshake, if any
    /// (signature-protected by the transcript; content validation is the
    /// caller's job).
    #[must_use]
    pub fn peer_evidence(&self) -> Option<&[u8]> {
        self.peer_evidence.as_deref()
    }

    /// Closes the session.
    pub fn close(&mut self) {
        self.conn.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{TlsListener, TlsServerConfig};
    use revelio_crypto::ed25519::SigningKey;
    use revelio_net::dns::DnsZone;
    use revelio_net::net::{NetConfig, SimNet};
    use revelio_pki::acme::{AcmeCa, AcmePolicy};
    use revelio_pki::cert::CertificateSigningRequest;
    use std::sync::Arc;

    struct World {
        net: SimNet,
        clock: SimClock,
        ca: AcmeCa,
        server_key: SigningKey,
    }

    fn world() -> World {
        let clock = SimClock::new();
        let net = SimNet::new(clock.clone(), NetConfig::default());
        let dns = DnsZone::new();
        let ca = AcmeCa::new(
            "SimEncrypt",
            [3; 32],
            AcmePolicy::default(),
            clock.clone(),
            dns,
        );
        World {
            net,
            clock,
            ca,
            server_key: SigningKey::from_seed(&[10; 32]),
        }
    }

    fn serve(w: &World, domain: &str, address: &str, key: &SigningKey, body: &'static [u8]) {
        let csr = CertificateSigningRequest::new(domain, key, "Org", "CH");
        let chain = w.ca.order_certificate(&csr).unwrap();
        let listener = TlsListener::new(
            TlsServerConfig::new(chain, key.clone(), [9; 32]),
            Arc::new(move |_req: &[u8]| body.to_vec()),
        );
        w.net.bind(address, Arc::new(listener)).unwrap();
    }

    fn client(w: &World) -> TlsClient {
        TlsClient::new(TlsClientConfig {
            trusted_roots: vec![w.ca.root_certificate()],
            clock: w.clock.clone(),
            telemetry: None,
        })
    }

    #[test]
    fn handshake_and_request_roundtrip() {
        let w = world();
        serve(
            &w,
            "pad.example.org",
            "10.0.0.1:443",
            &w.server_key,
            b"hello end-user",
        );
        let mut session = client(&w)
            .connect(&w.net, "10.0.0.1:443", "pad.example.org", [1; 32])
            .unwrap();
        assert_eq!(session.request(b"GET /").unwrap(), b"hello end-user");
        assert_eq!(session.request(b"GET /again").unwrap(), b"hello end-user");
        assert_eq!(session.peer_public_key(), w.server_key.verifying_key());
    }

    #[test]
    fn untrusted_ca_rejected() {
        let w = world();
        serve(&w, "pad.example.org", "10.0.0.1:443", &w.server_key, b"x");
        // A client that trusts a *different* root store.
        let rogue_ca = AcmeCa::new(
            "RogueTrust",
            [77; 32],
            AcmePolicy::default(),
            w.clock.clone(),
            DnsZone::new(),
        );
        let client = TlsClient::new(TlsClientConfig {
            trusted_roots: vec![rogue_ca.root_certificate()],
            clock: w.clock.clone(),
            telemetry: None,
        });
        assert!(matches!(
            client.connect(&w.net, "10.0.0.1:443", "pad.example.org", [1; 32]),
            Err(TlsError::Certificate(_))
        ));
    }

    #[test]
    fn domain_mismatch_rejected() {
        let w = world();
        serve(&w, "other.example.org", "10.0.0.1:443", &w.server_key, b"x");
        assert!(matches!(
            client(&w).connect(&w.net, "10.0.0.1:443", "pad.example.org", [1; 32]),
            Err(TlsError::Certificate(
                revelio_pki::PkiError::DomainMismatch { .. }
            ))
        ));
    }

    #[test]
    fn expired_certificate_rejected() {
        let w = world();
        serve(&w, "pad.example.org", "10.0.0.1:443", &w.server_key, b"x");
        // Advance past the 90-day lifetime.
        w.clock.advance_ms(91.0 * 24.0 * 3600.0 * 1000.0);
        assert!(matches!(
            client(&w).connect(&w.net, "10.0.0.1:443", "pad.example.org", [1; 32]),
            Err(TlsError::Certificate(revelio_pki::PkiError::Expired { .. }))
        ));
    }

    #[test]
    fn server_without_matching_private_key_rejected() {
        // An attacker replays the honest chain but holds a different key:
        // the transcript signature fails.
        let w = world();
        let honest_key = w.server_key.clone();
        let csr = CertificateSigningRequest::new("pad.example.org", &honest_key, "O", "C");
        let chain = w.ca.order_certificate(&csr).unwrap();
        let attacker_key = SigningKey::from_seed(&[66; 32]);
        let listener = TlsListener::new(
            TlsServerConfig::new(chain, attacker_key, [9; 32]),
            Arc::new(|_req: &[u8]| b"evil".to_vec()),
        );
        w.net.bind("10.0.0.1:443", Arc::new(listener)).unwrap();
        assert!(matches!(
            client(&w).connect(&w.net, "10.0.0.1:443", "pad.example.org", [1; 32]),
            Err(TlsError::Handshake(_))
        ));
    }

    #[test]
    fn mitm_with_dns_issued_cert_succeeds_but_key_differs() {
        // §5.3.2's residual threat: the attacker controls DNS, obtains a
        // *valid* certificate for the same domain with their own key, and
        // redirects traffic. TLS accepts — only Revelio's pinning catches
        // the key change.
        let w = world();
        serve(
            &w,
            "pad.example.org",
            "10.0.0.1:443",
            &w.server_key,
            b"honest",
        );
        let attacker_key = SigningKey::from_seed(&[66; 32]);
        serve(
            &w,
            "pad.example.org",
            "10.6.6.6:443",
            &attacker_key,
            b"evil",
        );
        w.net.peer("10.0.0.1:443").redirect_to("10.6.6.6:443");

        let mut session = client(&w)
            .connect(&w.net, "10.0.0.1:443", "pad.example.org", [1; 32])
            .unwrap();
        assert_eq!(session.request(b"GET /").unwrap(), b"evil");
        // The extension-visible signal: the connection's key changed.
        assert_ne!(session.peer_public_key(), w.server_key.verifying_key());
        assert_eq!(session.peer_public_key(), attacker_key.verifying_key());
    }

    #[test]
    fn tampered_record_detected() {
        let w = world();
        serve(&w, "pad.example.org", "10.0.0.1:443", &w.server_key, b"x");
        // A middlebox that passes the handshake flight untouched but flips
        // a bit in every later (record) message.
        let seen = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let counter = Arc::clone(&seen);
        w.net.peer("10.0.0.1:443").tamper(Arc::new(move |m: &[u8]| {
            let n = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let mut v = m.to_vec();
            if n > 0 {
                v[0] ^= 1;
            }
            v
        }));
        let mut session = client(&w)
            .connect(&w.net, "10.0.0.1:443", "pad.example.org", [1; 32])
            .unwrap();
        // Tampered request record: server rejects; connection dies.
        assert!(session.request(b"GET /").is_err());
    }

    #[test]
    fn handshake_costs_one_round_trip_requests_one_each() {
        let w = world();
        serve(&w, "pad.example.org", "10.0.0.1:443", &w.server_key, b"x");
        let t0 = w.clock.now_ms();
        let mut session = client(&w)
            .connect(&w.net, "10.0.0.1:443", "pad.example.org", [1; 32])
            .unwrap();
        let after_handshake = w.clock.now_ms();
        session.request(b"GET /").unwrap();
        let after_request = w.clock.now_ms();
        let rtt = 5.2;
        assert!((after_handshake - t0 - rtt).abs() < 0.1);
        assert!((after_request - after_handshake - rtt).abs() < 0.1);
    }
}

//! Traffic-key derivation and record protection.

use revelio_crypto::aead::ChaCha20Poly1305;
use revelio_crypto::kdf::hkdf;
use revelio_crypto::sha2::Sha256;

use crate::TlsError;

/// One direction's record protection state.
pub struct RecordKey {
    aead: ChaCha20Poly1305,
    sequence: u64,
}

impl std::fmt::Debug for RecordKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordKey")
            .field("sequence", &self.sequence)
            .finish_non_exhaustive()
    }
}

/// Both directions' keys, as derived after the handshake.
#[derive(Debug)]
pub struct TrafficKeys {
    /// Client-to-server protection.
    pub client_to_server: RecordKey,
    /// Server-to-client protection.
    pub server_to_client: RecordKey,
}

/// Derives the traffic keys from the X25519 shared secret and both
/// randoms. Both sides call this with identical inputs.
#[must_use]
pub fn derive_traffic_keys(
    shared_secret: &[u8; 32],
    client_random: &[u8; 32],
    server_random: &[u8; 32],
) -> TrafficKeys {
    let mut salt = Vec::with_capacity(64);
    salt.extend_from_slice(client_random);
    salt.extend_from_slice(server_random);
    let c2s: [u8; 32] = hkdf::<Sha256>(&salt, shared_secret, b"tls13 c2s", 32)
        .try_into()
        .expect("32 bytes");
    let s2c: [u8; 32] = hkdf::<Sha256>(&salt, shared_secret, b"tls13 s2c", 32)
        .try_into()
        .expect("32 bytes");
    TrafficKeys {
        client_to_server: RecordKey {
            aead: ChaCha20Poly1305::new(&c2s),
            sequence: 0,
        },
        server_to_client: RecordKey {
            aead: ChaCha20Poly1305::new(&s2c),
            sequence: 0,
        },
    }
}

fn nonce(sequence: u64) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..8].copy_from_slice(&sequence.to_le_bytes());
    n
}

impl RecordKey {
    /// Protects one record; the sequence number advances and doubles as
    /// the nonce and AAD, so reordered or replayed records fail to open.
    #[must_use]
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.sequence;
        self.sequence += 1;
        self.aead.seal(&nonce(seq), &seq.to_le_bytes(), plaintext)
    }

    /// Opens the next record in sequence.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::RecordAuthentication`] for tampered, replayed,
    /// or out-of-order records.
    pub fn open(&mut self, ciphertext: &[u8]) -> Result<Vec<u8>, TlsError> {
        let seq = self.sequence;
        let plain = self
            .aead
            .open(&nonce(seq), &seq.to_le_bytes(), ciphertext)
            .map_err(|_| TlsError::RecordAuthentication)?;
        self.sequence += 1;
        Ok(plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TrafficKeys, TrafficKeys) {
        let shared = [7u8; 32];
        (
            derive_traffic_keys(&shared, &[1; 32], &[2; 32]),
            derive_traffic_keys(&shared, &[1; 32], &[2; 32]),
        )
    }

    #[test]
    fn both_sides_derive_identical_keys() {
        let (mut client, mut server) = pair();
        let record = client.client_to_server.seal(b"hello");
        assert_eq!(server.client_to_server.open(&record).unwrap(), b"hello");
        let reply = server.server_to_client.seal(b"world");
        assert_eq!(client.server_to_client.open(&reply).unwrap(), b"world");
    }

    #[test]
    fn directions_are_separated() {
        let (mut client, mut server) = pair();
        let record = client.client_to_server.seal(b"hello");
        // Reflecting a record back on the other direction's key fails.
        assert!(client.server_to_client.open(&record).is_err());
        assert!(server.server_to_client.open(&record).is_err());
    }

    #[test]
    fn replay_rejected() {
        let (mut client, mut server) = pair();
        let record = client.client_to_server.seal(b"hello");
        server.client_to_server.open(&record).unwrap();
        assert_eq!(
            server.client_to_server.open(&record),
            Err(TlsError::RecordAuthentication)
        );
    }

    #[test]
    fn reorder_rejected() {
        let (mut client, mut server) = pair();
        let r1 = client.client_to_server.seal(b"one");
        let r2 = client.client_to_server.seal(b"two");
        assert!(server.client_to_server.open(&r2).is_err()); // skipped r1
        server.client_to_server.open(&r1).unwrap();
    }

    #[test]
    fn tamper_rejected() {
        let (mut client, mut server) = pair();
        let mut record = client.client_to_server.seal(b"hello");
        record[0] ^= 1;
        assert!(server.client_to_server.open(&record).is_err());
    }

    #[test]
    fn different_randoms_different_keys() {
        let shared = [7u8; 32];
        let mut a = derive_traffic_keys(&shared, &[1; 32], &[2; 32]);
        let mut b = derive_traffic_keys(&shared, &[1; 32], &[3; 32]);
        let record = a.client_to_server.seal(b"x");
        assert!(b.client_to_server.open(&record).is_err());
    }
}

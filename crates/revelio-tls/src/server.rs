//! The TLS server: a [`revelio_net::net::Listener`] that performs the
//! handshake and forwards decrypted application data to an inner handler.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use revelio_crypto::ed25519::SigningKey;
use revelio_crypto::hmac::Hmac;
use revelio_crypto::sha2::Sha256;
use revelio_crypto::x25519;
use revelio_net::net::{ConnectionHandler, Listener};
use revelio_net::NetError;
use revelio_pki::cert::CertificateChain;

use crate::handshake::{transcript_hash, ClientHello, ServerHello};
use crate::record::{derive_traffic_keys, TrafficKeys};

/// The application layer above TLS (HTTP, in this workspace).
pub trait AppHandler: Send + Sync {
    /// Handles one decrypted request, returning the response plaintext.
    fn handle(&self, request: &[u8]) -> Vec<u8>;
}

impl<F> AppHandler for F
where
    F: Fn(&[u8]) -> Vec<u8> + Send + Sync,
{
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// Server-side TLS identity and entropy.
#[derive(Clone)]
pub struct TlsServerConfig {
    /// Certificate chain presented to clients (leaf first).
    pub chain: CertificateChain,
    /// Private key matching the leaf certificate — Revelio's shared TLS
    /// identity, distributed by the SP node to attested VMs (§3.4.6).
    pub key: SigningKey,
    /// Seed for per-connection ephemeral keys (hardware RNG stand-in).
    pub entropy_seed: [u8; 32],
    /// Optional RA-TLS attestation evidence delivered inside the
    /// handshake (opaque bytes; Revelio serializes its evidence bundle
    /// here).
    pub evidence: Option<Vec<u8>>,
}

impl TlsServerConfig {
    /// A plain (evidence-free) server configuration.
    #[must_use]
    pub fn new(chain: CertificateChain, key: SigningKey, entropy_seed: [u8; 32]) -> Self {
        TlsServerConfig {
            chain,
            key,
            entropy_seed,
            evidence: None,
        }
    }
}

impl std::fmt::Debug for TlsServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlsServerConfig")
            .field("subject", &self.chain.leaf().subject)
            .finish_non_exhaustive()
    }
}

/// A TLS-terminating listener wrapping an application handler.
pub struct TlsListener {
    config: TlsServerConfig,
    app: Arc<dyn AppHandler>,
    connection_counter: AtomicU64,
}

impl std::fmt::Debug for TlsListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlsListener")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl TlsListener {
    /// Creates a TLS listener for `app` with the given identity.
    #[must_use]
    pub fn new(config: TlsServerConfig, app: Arc<dyn AppHandler>) -> Self {
        TlsListener {
            config,
            app,
            connection_counter: AtomicU64::new(0),
        }
    }
}

impl Listener for TlsListener {
    fn accept(&self) -> Box<dyn ConnectionHandler> {
        let conn_id = self.connection_counter.fetch_add(1, Ordering::Relaxed);
        Box::new(TlsServerConnection {
            config: self.config.clone(),
            app: Arc::clone(&self.app),
            conn_id,
            state: State::AwaitingClientHello,
        })
    }
}

enum State {
    AwaitingClientHello,
    Established(TrafficKeys),
    Failed,
}

struct TlsServerConnection {
    config: TlsServerConfig,
    app: Arc<dyn AppHandler>,
    conn_id: u64,
    state: State,
}

impl TlsServerConnection {
    fn derive_ephemeral(&self) -> ([u8; 32], [u8; 32]) {
        // Per-connection deterministic "randomness" from the entropy seed.
        let mut mac = Hmac::<Sha256>::new(&self.config.entropy_seed);
        mac.update(b"server-ephemeral");
        mac.update(&self.conn_id.to_le_bytes());
        let secret: [u8; 32] = mac.finalize().try_into().expect("32 bytes");
        let mut mac = Hmac::<Sha256>::new(&self.config.entropy_seed);
        mac.update(b"server-random");
        mac.update(&self.conn_id.to_le_bytes());
        let random: [u8; 32] = mac.finalize().try_into().expect("32 bytes");
        (secret, random)
    }
}

impl ConnectionHandler for TlsServerConnection {
    fn on_message(&mut self, message: &[u8]) -> Result<Vec<u8>, NetError> {
        match std::mem::replace(&mut self.state, State::Failed) {
            State::AwaitingClientHello => {
                let hello = ClientHello::from_bytes(message)
                    .map_err(|e| NetError::Protocol(format!("bad client hello: {e}")))?;
                let (eph_secret, server_random) = self.derive_ephemeral();
                let eph_public = x25519::public_key(&eph_secret);
                let shared = x25519::shared_secret(&eph_secret, &hello.ephemeral_public);
                let transcript = transcript_hash(
                    &hello,
                    &eph_public,
                    &server_random,
                    &self.config.chain,
                    self.config.evidence.as_deref(),
                );
                let reply = ServerHello {
                    ephemeral_public: eph_public,
                    random: server_random,
                    chain: self.config.chain.clone(),
                    evidence: self.config.evidence.clone(),
                    signature: self.config.key.sign(&transcript),
                };
                let keys = derive_traffic_keys(&shared, &hello.random, &server_random);
                self.state = State::Established(keys);
                Ok(reply.to_bytes())
            }
            State::Established(mut keys) => {
                let request = keys
                    .client_to_server
                    .open(message)
                    .map_err(|e| NetError::Protocol(format!("record: {e}")))?;
                let response = self.app.handle(&request);
                let sealed = keys.server_to_client.seal(&response);
                self.state = State::Established(keys);
                Ok(sealed)
            }
            State::Failed => Err(NetError::ConnectionClosed),
        }
    }
}

//! Handshake messages and transcript hashing.

use revelio_crypto::ed25519::{Signature, SIGNATURE_LEN};
use revelio_crypto::sha2::Sha256;
use revelio_crypto::wire::{ByteReader, ByteWriter};
use revelio_pki::cert::CertificateChain;

use crate::TlsError;

/// The client's first flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// Client ephemeral X25519 public key.
    pub ephemeral_public: [u8; 32],
    /// Client random.
    pub random: [u8; 32],
    /// Server name indication — which certificate the client expects.
    pub server_name: String,
}

impl ClientHello {
    /// Encodes the flight.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(b"TLSCH1");
        w.put_bytes(&self.ephemeral_public);
        w.put_bytes(&self.random);
        w.put_str(&self.server_name);
        w.into_bytes()
    }

    /// Decodes the flight.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::Wire`] / [`TlsError::Handshake`] on malformed
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TlsError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_array::<6>()?;
        if &magic != b"TLSCH1" {
            return Err(TlsError::Handshake("not a client hello".into()));
        }
        let ephemeral_public = r.get_array::<32>()?;
        let random = r.get_array::<32>()?;
        let server_name = r.get_str()?;
        r.finish()?;
        Ok(ClientHello {
            ephemeral_public,
            random,
            server_name,
        })
    }
}

/// The server's reply flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// Server ephemeral X25519 public key.
    pub ephemeral_public: [u8; 32],
    /// Server random.
    pub random: [u8; 32],
    /// Certificate chain (leaf first).
    pub chain: CertificateChain,
    /// Optional RA-TLS attestation evidence (opaque to the TLS layer;
    /// Revelio puts a serialized evidence bundle here so clients can
    /// attest without a separate fetch — the integration the paper's §7
    /// suggests via RATLS).
    pub evidence: Option<Vec<u8>>,
    /// Signature by the leaf certificate's key over the transcript hash —
    /// proves the server controls the certified private key and binds the
    /// ephemeral exchange (and any evidence) to it.
    pub signature: Signature,
}

impl ServerHello {
    /// Encodes the flight.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(b"TLSSH2");
        w.put_bytes(&self.ephemeral_public);
        w.put_bytes(&self.random);
        w.put_var_bytes(&self.chain.to_bytes());
        match &self.evidence {
            None => {
                w.put_u8(0);
            }
            Some(e) => {
                w.put_u8(1);
                w.put_var_bytes(e);
            }
        }
        w.put_bytes(&self.signature.to_bytes());
        w.into_bytes()
    }

    /// Decodes the flight.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::Wire`] / [`TlsError::Handshake`] on malformed
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TlsError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_array::<6>()?;
        if &magic != b"TLSSH2" {
            return Err(TlsError::Handshake("not a server hello".into()));
        }
        let ephemeral_public = r.get_array::<32>()?;
        let random = r.get_array::<32>()?;
        let chain = CertificateChain::from_bytes(r.get_var_bytes()?)?;
        let evidence = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_var_bytes()?.to_vec()),
            t => return Err(TlsError::Handshake(format!("unknown evidence tag {t}"))),
        };
        let signature = Signature::from_bytes(r.get_array::<SIGNATURE_LEN>()?);
        r.finish()?;
        Ok(ServerHello {
            ephemeral_public,
            random,
            chain,
            evidence,
            signature,
        })
    }
}

/// The transcript hash the server signs: everything both sides saw before
/// key derivation, including any RA-TLS evidence (so evidence cannot be
/// stripped or swapped by a middlebox).
#[must_use]
pub fn transcript_hash(
    client_hello: &ClientHello,
    server_ephemeral: &[u8; 32],
    server_random: &[u8; 32],
    chain: &CertificateChain,
    evidence: Option<&[u8]>,
) -> [u8; 32] {
    let mut w = ByteWriter::new();
    w.put_bytes(b"tls-transcript/v2");
    w.put_var_bytes(&client_hello.to_bytes());
    w.put_bytes(server_ephemeral);
    w.put_bytes(server_random);
    w.put_var_bytes(&chain.to_bytes());
    match evidence {
        None => {
            w.put_u8(0);
        }
        Some(e) => {
            w.put_u8(1);
            w.put_var_bytes(e);
        }
    }
    Sha256::digest(w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_crypto::ed25519::SigningKey;
    use revelio_pki::ca::CertificateAuthority;
    use revelio_pki::cert::CertificateSigningRequest;

    fn chain() -> CertificateChain {
        let ca = CertificateAuthority::new_root("R", [1; 32]);
        let key = SigningKey::from_seed(&[2; 32]);
        let csr = CertificateSigningRequest::new("a.example", &key, "O", "C");
        CertificateChain {
            certificates: vec![ca.issue_for_csr(&csr, 0, 100).unwrap()],
        }
    }

    #[test]
    fn client_hello_roundtrip() {
        let ch = ClientHello {
            ephemeral_public: [1; 32],
            random: [2; 32],
            server_name: "a.example".into(),
        };
        assert_eq!(ClientHello::from_bytes(&ch.to_bytes()).unwrap(), ch);
    }

    #[test]
    fn server_hello_roundtrip() {
        let sh = ServerHello {
            ephemeral_public: [3; 32],
            random: [4; 32],
            chain: chain(),
            evidence: None,
            signature: SigningKey::from_seed(&[5; 32]).sign(b"t"),
        };
        assert_eq!(ServerHello::from_bytes(&sh.to_bytes()).unwrap(), sh);

        let with_evidence = ServerHello {
            evidence: Some(b"bundle".to_vec()),
            ..sh
        };
        assert_eq!(
            ServerHello::from_bytes(&with_evidence.to_bytes()).unwrap(),
            with_evidence
        );
    }

    #[test]
    fn wrong_magic_rejected() {
        assert!(ClientHello::from_bytes(b"XXXXXXrest").is_err());
        assert!(ServerHello::from_bytes(b"YYYYYYrest").is_err());
    }

    #[test]
    fn transcript_covers_every_input() {
        let ch = ClientHello {
            ephemeral_public: [1; 32],
            random: [2; 32],
            server_name: "a.example".into(),
        };
        let base = transcript_hash(&ch, &[3; 32], &[4; 32], &chain(), None);
        let mut ch2 = ch.clone();
        ch2.server_name = "b.example".into();
        assert_ne!(
            base,
            transcript_hash(&ch2, &[3; 32], &[4; 32], &chain(), None)
        );
        assert_ne!(
            base,
            transcript_hash(&ch, &[9; 32], &[4; 32], &chain(), None)
        );
        assert_ne!(
            base,
            transcript_hash(&ch, &[3; 32], &[9; 32], &chain(), None)
        );
        // Evidence is covered too: adding or changing it changes the hash.
        let with_e = transcript_hash(&ch, &[3; 32], &[4; 32], &chain(), Some(b"ev"));
        assert_ne!(base, with_e);
        assert_ne!(
            with_e,
            transcript_hash(&ch, &[3; 32], &[4; 32], &chain(), Some(b"EV"))
        );
    }
}

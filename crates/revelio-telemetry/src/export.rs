//! The three exporters: JSON-lines event log, Prometheus-style text
//! exposition, and the per-span-tree latency-breakdown table.
//!
//! All output is deterministic: spans are emitted in id (creation) order,
//! metrics in lexicographic name order, and floats through Rust's shortest
//! round-trip formatter, so a fixed seed yields byte-identical bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::span::SpanRecord;
use crate::Telemetry;

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 the way `{:?}` does (shortest round-trip), which is
/// deterministic across platforms.
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Escapes a Prometheus label value: inside the `label="…"` quoting,
/// backslash, double-quote, and newline must be escaped.
#[must_use]
pub fn prometheus_escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Builds a `name{key="value",…}` Prometheus sample name with escaped
/// label values. Labels are rendered in the order given, so a fixed call
/// site always produces the same sample name.
#[must_use]
pub fn labeled_metric(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{key}=\"{}\"", prometheus_escape_label(value));
    }
    out.push('}');
    out
}

/// The metric-family name of a sample: everything before the label block.
fn family_of(sample_name: &str) -> &str {
    sample_name.split('{').next().unwrap_or(sample_name)
}

impl Telemetry {
    /// Exports the full registry as a JSON-lines event log: one `span`
    /// line per recorded span (id order), then `counter`, `gauge`, and
    /// `histogram` lines in name order.
    #[must_use]
    pub fn export_json_lines(&self) -> String {
        let state = self.inner.state.lock();
        let mut out = String::new();
        for span in &state.spans {
            let _ = write!(
                out,
                "{{\"type\":\"span\",\"id\":{},\"trace\":{},\"parent\":{},\"name\":\"{}\",\"start_us\":{},\"end_us\":{}",
                span.id,
                span.trace_id,
                span.parent.map_or_else(|| "null".to_string(), |p| p.to_string()),
                json_escape(&span.name),
                span.start_us,
                span.end_us.map_or_else(|| "null".to_string(), |e| e.to_string()),
            );
            if !span.attrs.is_empty() {
                out.push_str(",\"attrs\":{");
                for (i, (k, v)) in span.attrs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
        for (name, value) in &state.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                json_escape(name)
            );
        }
        for (name, value) in &state.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                json_escape(name),
                fmt_f64(*value)
            );
        }
        for (name, hist) in &state.histograms {
            let _ = write!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[",
                json_escape(name),
                hist.count(),
                fmt_f64(hist.sum()),
            );
            let mut first = true;
            for (idx, count) in hist.counts().iter().enumerate() {
                if !first {
                    out.push(',');
                }
                first = false;
                let le = hist
                    .bounds()
                    .get(idx)
                    .map_or_else(|| "\"+Inf\"".to_string(), |b| fmt_f64(*b));
                let _ = write!(out, "{{\"le\":{le},\"count\":{count}}}");
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Exports counters, gauges, and histograms in Prometheus text
    /// exposition format: metric families in lexicographic name order
    /// (across all three kinds), one `# TYPE` line per family, samples
    /// within a family in name order. Label values embedded in sample
    /// names via [`labeled_metric`] arrive pre-escaped; the exporter
    /// escapes the `le` values it generates itself. The output is a pure
    /// function of registry contents — byte-identical across runs.
    #[must_use]
    pub fn export_prometheus(&self) -> String {
        struct Family {
            kind: &'static str,
            samples: Vec<String>,
        }
        let state = self.inner.state.lock();
        let mut families: BTreeMap<String, Family> = BTreeMap::new();
        let mut push = |name: &str, kind: &'static str, sample: String| {
            families
                .entry(family_of(name).to_string())
                .or_insert_with(|| Family {
                    kind,
                    samples: Vec::new(),
                })
                .samples
                .push(sample);
        };
        for (name, value) in &state.counters {
            push(name, "counter", format!("{name} {value}"));
        }
        for (name, value) in &state.gauges {
            push(name, "gauge", format!("{name} {}", fmt_f64(*value)));
        }
        for (name, hist) in &state.histograms {
            let mut cumulative = 0u64;
            for (idx, count) in hist.counts().iter().enumerate() {
                cumulative += count;
                let le = hist
                    .bounds()
                    .get(idx)
                    .map_or_else(|| "+Inf".to_string(), |b| fmt_f64(*b));
                push(
                    name,
                    "histogram",
                    format!(
                        "{name}_bucket{{le=\"{}\"}} {cumulative}",
                        prometheus_escape_label(&le)
                    ),
                );
            }
            push(
                name,
                "histogram",
                format!("{name}_sum {}", fmt_f64(hist.sum())),
            );
            push(name, "histogram", format!("{name}_count {}", hist.count()));
        }
        let mut out = String::new();
        for (family, Family { kind, samples }) in &families {
            let _ = writeln!(out, "# TYPE {family} {kind}");
            for sample in samples {
                let _ = writeln!(out, "{sample}");
            }
        }
        out
    }

    /// Renders the latency-breakdown table: spans aggregated by their path
    /// in the tree (`root > child > grandchild`), in first-occurrence
    /// order, with count / total / mean columns and indentation showing
    /// nesting depth.
    #[must_use]
    pub fn breakdown(&self) -> String {
        let state = self.inner.state.lock();
        breakdown_of(&state.spans)
    }
}

/// Aggregation key: the chain of span names from the root.
fn path_of(spans: &[SpanRecord], span: &SpanRecord) -> Vec<String> {
    let mut path = vec![span.name.clone()];
    let mut cursor = span.parent;
    while let Some(pid) = cursor {
        let parent = &spans[pid as usize];
        path.push(parent.name.clone());
        cursor = parent.parent;
    }
    path.reverse();
    path
}

fn breakdown_of(spans: &[SpanRecord]) -> String {
    struct Row {
        depth: usize,
        count: u64,
        total_ms: f64,
    }
    // Path → row, in first-occurrence order.
    let mut order: Vec<Vec<String>> = Vec::new();
    let mut rows: BTreeMap<Vec<String>, Row> = BTreeMap::new();
    for span in spans {
        let Some(duration) = span.duration_ms() else {
            continue;
        };
        let path = path_of(spans, span);
        if !rows.contains_key(&path) {
            order.push(path.clone());
            rows.insert(
                path.clone(),
                Row {
                    depth: path.len() - 1,
                    count: 0,
                    total_ms: 0.0,
                },
            );
        }
        let row = rows.get_mut(&path).expect("row just inserted");
        row.count += 1;
        row.total_ms += duration;
    }

    let mut label_width = "span".len();
    for path in &order {
        let row = &rows[path];
        let label_len = row.depth * 2 + path.last().map_or(0, String::len);
        label_width = label_width.max(label_len);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<label_width$}  {:>7}  {:>12}  {:>12}",
        "span", "count", "total ms", "mean ms"
    );
    let _ = writeln!(out, "{}", "-".repeat(label_width + 37));
    for path in &order {
        let row = &rows[path];
        let label = format!(
            "{}{}",
            "  ".repeat(row.depth),
            path.last().map(String::as_str).unwrap_or_default()
        );
        let _ = writeln!(
            out,
            "{label:<label_width$}  {:>7}  {:>12.3}  {:>12.3}",
            row.count,
            row.total_ms,
            row.total_ms / row.count as f64
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_net::clock::SimClock;

    fn fixture() -> (Telemetry, SimClock) {
        let clock = SimClock::new();
        (Telemetry::new(clock.clone()), clock)
    }

    fn scenario(t: &Telemetry, clock: &SimClock) {
        let root = t.span_with("request", &[("path", "/pad")]);
        let child = t.span("tls.handshake");
        clock.advance_ms(3.0);
        child.finish_ms();
        let child = t.span("app");
        clock.advance_ms(2.0);
        child.finish_ms();
        root.finish_ms();
        t.counter_add("revelio_test_requests_total", 1);
        t.gauge_set("revelio_test_depth", 2.0);
        t.register_histogram("revelio_test_latency_ms", &[1.0, 5.0, 10.0]);
        t.observe("revelio_test_latency_ms", 5.0);
        t.observe("revelio_test_latency_ms", 50.0);
    }

    #[test]
    fn json_lines_shape_and_determinism() {
        let (t1, c1) = fixture();
        scenario(&t1, &c1);
        let (t2, c2) = fixture();
        scenario(&t2, &c2);
        let json = t1.export_json_lines();
        assert_eq!(
            json,
            t2.export_json_lines(),
            "same scenario must export identical bytes"
        );

        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 6); // 3 spans + counter + gauge + histogram
        assert!(lines[0].starts_with(
            "{\"type\":\"span\",\"id\":0,\"trace\":1,\"parent\":null,\"name\":\"request\""
        ));
        assert!(lines[0].contains("\"attrs\":{\"path\":\"/pad\"}"));
        assert!(
            lines[1].contains("\"trace\":1"),
            "children inherit: {}",
            lines[1]
        );
        assert!(lines[1].contains("\"parent\":0"));
        assert!(lines[3].contains("\"type\":\"counter\""));
        assert!(lines[5].contains("\"le\":\"+Inf\",\"count\":1"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let (t, _) = fixture();
        let span = t.span_with("na\"me\n", &[("k\\", "v\t")]);
        span.finish_ms();
        let json = t.export_json_lines();
        assert!(json.contains("na\\\"me\\n"));
        assert!(json.contains("\"k\\\\\":\"v\\t\""));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let (t, clock) = fixture();
        scenario(&t, &clock);
        let text = t.export_prometheus();
        assert!(text.contains("# TYPE revelio_test_requests_total counter"));
        assert!(text.contains("revelio_test_requests_total 1"));
        assert!(text.contains("# TYPE revelio_test_depth gauge"));
        assert!(text.contains("revelio_test_depth 2.0"));
        assert!(text.contains("revelio_test_latency_ms_bucket{le=\"5.0\"} 1"));
        assert!(text.contains("revelio_test_latency_ms_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("revelio_test_latency_ms_sum 55.0"));
        assert!(text.contains("revelio_test_latency_ms_count 2"));
    }

    #[test]
    fn prometheus_families_sorted_and_labels_escaped() {
        let (t, _) = fixture();
        // Deliberately register out of lexicographic order and across
        // kinds: the export must interleave kinds into one sorted pass.
        t.counter_add("zz_total", 1);
        t.gauge_set("mm_depth", 1.5);
        t.register_histogram("aa_latency_ms", &[1.0]);
        t.observe("aa_latency_ms", 0.5);
        t.counter_add(
            &labeled_metric("mm_events_total", &[("node", "a\\b\"c\nd")]),
            2,
        );
        let text = t.export_prometheus();
        let expected = "# TYPE aa_latency_ms histogram\n\
                        aa_latency_ms_bucket{le=\"1.0\"} 1\n\
                        aa_latency_ms_bucket{le=\"+Inf\"} 1\n\
                        aa_latency_ms_sum 0.5\n\
                        aa_latency_ms_count 1\n\
                        # TYPE mm_depth gauge\n\
                        mm_depth 1.5\n\
                        # TYPE mm_events_total counter\n\
                        mm_events_total{node=\"a\\\\b\\\"c\\nd\"} 2\n\
                        # TYPE zz_total counter\n\
                        zz_total 1\n";
        assert_eq!(text, expected);
        // Byte-identical across repeated exports of the same registry.
        assert_eq!(text, t.export_prometheus());
    }

    #[test]
    fn breakdown_aggregates_by_tree_path() {
        let (t, clock) = fixture();
        for _ in 0..2 {
            scenario(&t, &clock);
        }
        let table = t.breakdown();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains("span") && lines[0].contains("mean ms"));
        assert!(lines[2].starts_with("request"));
        assert!(
            lines[3].starts_with("  tls.handshake"),
            "children indented: {table}"
        );
        assert!(lines[3].contains("2"), "two aggregated handshakes");
        assert!(lines[3].contains("3.000"), "mean of two 3 ms spans");
    }

    #[test]
    fn same_name_different_parent_rows_are_distinct() {
        let (t, clock) = fixture();
        let a = t.span("a");
        let child = t.span("shared");
        clock.advance_ms(1.0);
        child.finish_ms();
        a.finish_ms();
        let b = t.span("b");
        let child = t.span("shared");
        clock.advance_ms(5.0);
        child.finish_ms();
        b.finish_ms();
        let table = t.breakdown();
        assert_eq!(table.matches("  shared").count(), 2, "{table}");
    }
}

//! Deterministic assembly of finished spans into a cross-node trace tree.
//!
//! [`TraceAssembler`] collects every finished span of one trace from the
//! registry (in `SimWorld` all nodes share a registry, so a single browse
//! or provision stitches into one tree), rebuilds the tree sim-clock
//! ordered with ties broken by span id, computes the critical path and
//! per-hop self-time, and renders Chrome `trace_event` JSON plus a text
//! flame summary. Every output is a pure function of the recorded spans,
//! so a fixed seed yields byte-identical bytes regardless of thread count
//! or fabric mode.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::export::json_escape;
use crate::span::SpanRecord;
use crate::Telemetry;

/// One assembled trace: finished spans, child lists, roots, and the
/// critical path, all deterministically ordered.
#[derive(Debug, Clone)]
pub struct TraceAssembler {
    trace_id: u64,
    /// Finished spans of the trace, id order.
    spans: Vec<SpanRecord>,
    /// Span id → slot in `spans`.
    index: BTreeMap<u64, usize>,
    /// Parent span id → child ids, ordered by (start_us, id).
    children: BTreeMap<u64, Vec<u64>>,
    /// Spans without a finished parent in this trace, (start_us, id) order.
    roots: Vec<u64>,
}

impl Telemetry {
    /// Assembles the finished spans of `trace_id` into a tree.
    #[must_use]
    pub fn assemble_trace(&self, trace_id: u64) -> TraceAssembler {
        TraceAssembler::assemble(trace_id, self.trace_spans(trace_id))
    }
}

impl TraceAssembler {
    /// Builds the tree from finished spans (open spans must be excluded
    /// by the caller; [`Telemetry::trace_spans`] already does).
    #[must_use]
    pub fn assemble(trace_id: u64, spans: Vec<SpanRecord>) -> TraceAssembler {
        let index: BTreeMap<u64, usize> = spans
            .iter()
            .enumerate()
            .map(|(slot, s)| (s.id, slot))
            .collect();
        let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut roots = Vec::new();
        for span in &spans {
            match span.parent.filter(|pid| index.contains_key(pid)) {
                Some(pid) => children.entry(pid).or_default().push(span.id),
                // A span whose parent is missing (still open, or a remote
                // parent outside this registry) anchors a subtree.
                None => roots.push(span.id),
            }
        }
        let sort_key = |ids: &mut Vec<u64>, index: &BTreeMap<u64, usize>, spans: &[SpanRecord]| {
            ids.sort_by_key(|id| (spans[index[id]].start_us, *id));
        };
        for ids in children.values_mut() {
            sort_key(ids, &index, &spans);
        }
        sort_key(&mut roots, &index, &spans);
        TraceAssembler {
            trace_id,
            spans,
            index,
            children,
            roots,
        }
    }

    /// The trace id this tree was assembled for.
    #[must_use]
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// True when the trace holds no finished spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of finished spans in the trace.
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// The finished spans, id order.
    #[must_use]
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Root span ids, (start, id) order.
    #[must_use]
    pub fn roots(&self) -> &[u64] {
        &self.roots
    }

    /// Child span ids of `id`, (start, id) order.
    #[must_use]
    pub fn children_of(&self, id: u64) -> &[u64] {
        self.children.get(&id).map_or(&[], Vec::as_slice)
    }

    fn span(&self, id: u64) -> &SpanRecord {
        &self.spans[self.index[&id]]
    }

    /// Duration of span `id` in microseconds.
    #[must_use]
    pub fn duration_us(&self, id: u64) -> u64 {
        let span = self.span(id);
        span.end_us
            .unwrap_or(span.start_us)
            .saturating_sub(span.start_us)
    }

    /// Self-time of span `id`: its duration minus the summed durations of
    /// its direct children, clamped at zero (children may overlap or be
    /// modelled wider than the parent).
    #[must_use]
    pub fn self_time_us(&self, id: u64) -> u64 {
        let child_total: u64 = self
            .children_of(id)
            .iter()
            .map(|&c| self.duration_us(c))
            .sum();
        self.duration_us(id).saturating_sub(child_total)
    }

    /// The critical path: starting from the primary root (earliest start,
    /// id tie-break), repeatedly descend into the longest child (ties to
    /// the earlier-starting, lower-id child). Empty for an empty trace.
    #[must_use]
    pub fn critical_path(&self) -> Vec<u64> {
        let mut path = Vec::new();
        let Some(&root) = self.roots.first() else {
            return path;
        };
        let mut cursor = root;
        loop {
            path.push(cursor);
            let next = self
                .children_of(cursor)
                .iter()
                .copied()
                // max_by_key takes the *last* maximum; key on (duration,
                // Reverse(start, id)) so ties go to the earlier child.
                .max_by_key(|&c| {
                    (
                        self.duration_us(c),
                        std::cmp::Reverse((self.span(c).start_us, c)),
                    )
                });
            match next {
                Some(child) => cursor = child,
                None => return path,
            }
        }
    }

    /// The span names along the critical path, joined by `" > "`.
    #[must_use]
    pub fn critical_path_names(&self) -> String {
        self.critical_path()
            .iter()
            .map(|&id| self.span(id).name.as_str())
            .collect::<Vec<_>>()
            .join(" > ")
    }

    /// Exports the trace as Chrome `trace_event` JSON (complete events,
    /// span-id order), loadable in `chrome://tracing` / Perfetto.
    #[must_use]
    pub fn export_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"revelio\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":1,\"args\":{{\"span_id\":{},\"parent_id\":{}",
                json_escape(&span.name),
                span.start_us,
                self.duration_us(span.id),
                self.trace_id,
                span.id,
                span.parent.map_or_else(|| "null".to_string(), |p| p.to_string()),
            );
            for (k, v) in &span.attrs {
                let _ = write!(out, ",\"{}\":\"{}\"", json_escape(k), json_escape(v));
            }
            out.push_str("}}");
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Renders an indented text flame summary: one line per span in tree
    /// order, with duration and self-time in ms, critical-path hops
    /// marked `*`, followed by the critical-path hop sequence.
    #[must_use]
    pub fn flame_summary(&self) -> String {
        let critical: Vec<u64> = self.critical_path();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} · {} spans · critical path {:.3} ms",
            self.trace_id,
            self.spans.len(),
            critical
                .iter()
                .map(|&id| self.self_time_us(id))
                .sum::<u64>() as f64
                / 1000.0,
        );
        let mut stack: Vec<(u64, usize)> = self.roots.iter().rev().map(|&id| (id, 0)).collect();
        while let Some((id, depth)) = stack.pop() {
            let span = self.span(id);
            let marker = if critical.contains(&id) { '*' } else { ' ' };
            let _ = writeln!(
                out,
                "{marker} {:indent$}{:<32} {:>12.3} ms  self {:>12.3} ms",
                "",
                span.name,
                self.duration_us(id) as f64 / 1000.0,
                self.self_time_us(id) as f64 / 1000.0,
                indent = depth * 2,
            );
            for &child in self.children_of(id).iter().rev() {
                stack.push((child, depth + 1));
            }
        }
        let _ = writeln!(out, "critical path: {}", self.critical_path_names());
        out
    }

    /// The hop on the critical path with the largest self-time — the
    /// place a faulted or slow run actually spent its wall: `(name,
    /// self-time µs)`.
    #[must_use]
    pub fn dominant_hop(&self) -> Option<(String, u64)> {
        self.critical_path()
            .into_iter()
            // max_by_key takes the last max; prefer the earliest hop on
            // ties so the answer is deterministic and names the first
            // place the time went.
            .max_by_key(|&id| (self.self_time_us(id), std::cmp::Reverse(id)))
            .map(|id| (self.span(id).name.clone(), self.self_time_us(id)))
    }
}

/// Renders every trace in the registry (allocation order) as flame
/// summaries plus Chrome JSON — the canonical "whole run" export the
/// determinism suite byte-compares across thread counts and fabric modes.
#[must_use]
pub fn export_all_traces(telemetry: &Telemetry) -> String {
    let mut out = String::new();
    for trace_id in telemetry.trace_ids() {
        let tree = telemetry.assemble_trace(trace_id);
        if tree.is_empty() {
            continue;
        }
        out.push_str(&tree.flame_summary());
        out.push_str(&tree.export_chrome_trace());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_net::clock::SimClock;

    fn fixture() -> (Telemetry, SimClock) {
        let clock = SimClock::new();
        (Telemetry::new(clock.clone()), clock)
    }

    #[test]
    fn assembles_tree_with_critical_path_and_self_time() {
        let (t, clock) = fixture();
        let root = t.span("browse");
        let fast = t.span("dns");
        clock.advance_ms(1.0);
        fast.finish_ms();
        let slow = t.span("kds.fetch");
        clock.advance_ms(9.0);
        slow.finish_ms();
        clock.advance_ms(2.0);
        root.finish_ms();

        let tree = t.assemble_trace(1);
        assert_eq!(tree.span_count(), 3);
        assert_eq!(tree.roots(), &[0]);
        assert_eq!(tree.children_of(0), &[1, 2]);
        assert_eq!(tree.critical_path(), vec![0, 2]);
        assert_eq!(tree.critical_path_names(), "browse > kds.fetch");
        // root: 12ms total, children 1ms + 9ms → 2ms self.
        assert_eq!(tree.duration_us(0), 12_000);
        assert_eq!(tree.self_time_us(0), 2_000);
        assert_eq!(tree.dominant_hop(), Some(("kds.fetch".to_string(), 9_000)));
    }

    #[test]
    fn sibling_order_is_start_then_id() {
        let (t, clock) = fixture();
        let root = t.span("r");
        // Two modelled children recorded at the same instant: id breaks
        // the tie. A third, later child sorts after both.
        t.modelled_span("b", 1.0);
        t.modelled_span("a", 1.0);
        clock.advance_ms(1.0);
        t.modelled_span("c", 1.0);
        root.finish_ms();
        let tree = t.assemble_trace(1);
        assert_eq!(tree.children_of(0), &[1, 2, 3]);
    }

    #[test]
    fn open_spans_are_excluded_and_orphans_become_roots() {
        let (t, clock) = fixture();
        let open_root = t.span("open");
        let child = t.span("child");
        clock.advance_ms(1.0);
        child.finish_ms();
        let tree = t.assemble_trace(1);
        // The open root is excluded; its finished child anchors the tree.
        assert_eq!(tree.span_count(), 1);
        assert_eq!(tree.roots(), &[1]);
        drop(open_root);
    }

    #[test]
    fn chrome_export_and_flame_are_deterministic() {
        let run = || {
            let (t, clock) = fixture();
            let root = t.span_with("browse", &[("domain", "pad.example.org")]);
            let child = t.span("tls.handshake");
            clock.advance_ms(3.0);
            child.finish_ms();
            root.finish_ms();
            let tree = t.assemble_trace(1);
            (tree.export_chrome_trace(), tree.flame_summary())
        };
        let (json_a, flame_a) = run();
        let (json_b, flame_b) = run();
        assert_eq!(json_a, json_b);
        assert_eq!(flame_a, flame_b);
        assert!(json_a.starts_with("{\"traceEvents\":[{\"name\":\"browse\""));
        assert!(json_a.contains("\"ph\":\"X\""));
        assert!(json_a.contains("\"domain\":\"pad.example.org\""));
        assert!(flame_a.contains("critical path: browse > tls.handshake"));
    }

    #[test]
    fn remote_parent_stitches_into_one_trace() {
        let (t, clock) = fixture();
        let client = t.span("client.call");
        let context = t.current_context().unwrap();
        // Simulate the server side re-opening from the wire context.
        let server = t.span_with_remote_parent("server.handle", &[], context);
        clock.advance_ms(5.0);
        server.finish_ms();
        client.finish_ms();
        let tree = t.assemble_trace(1);
        assert_eq!(tree.span_count(), 2);
        assert_eq!(tree.children_of(0), &[1]);
        assert_eq!(tree.critical_path_names(), "client.call > server.handle");
    }
}

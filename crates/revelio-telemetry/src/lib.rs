//! Deterministic telemetry for the Revelio simulation.
//!
//! Every duration in this crate comes from the shared [`SimClock`] — wall
//! time never leaks in — so two runs with the same seed produce
//! byte-identical exports. That property is what lets the bench harness
//! publish machine-independent latency breakdowns and lets the tier-1
//! suite assert reproducibility of the whole attestation pipeline.
//!
//! The crate provides:
//!
//! * a span API ([`Telemetry::span`]) for named, nested, attributed spans
//!   whose durations are read off the sim clock;
//! * counters, gauges, and fixed-bucket histograms with p50/p95/p99
//!   queries ([`Telemetry::observe`], [`Histogram::percentile`]);
//! * three exporters: a JSON-lines event log
//!   ([`Telemetry::export_json_lines`]), Prometheus-style text exposition
//!   ([`Telemetry::export_prometheus`]), and a per-span-tree latency
//!   breakdown table ([`Telemetry::breakdown`]);
//! * [`DeviceProbe`], a hook the storage layer uses to charge simulated
//!   I/O time and record per-device metrics.

mod export;
pub mod flight;
mod metrics;
mod probe;
pub mod retry;
mod span;
pub mod trace;

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use revelio_net::clock::SimClock;

pub use export::{labeled_metric, prometheus_escape_label};
pub use flight::{
    FlightDirectory, FlightDump, FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY,
};
pub use metrics::Histogram;
pub use probe::DeviceProbe;
pub use retry::retry_with_telemetry;
pub use span::{SpanGuard, SpanRecord, TraceContext};
pub use trace::{export_all_traces, TraceAssembler};

// Re-exported so crates that don't otherwise depend on `revelio-net` (e.g.
// `revelio-storage`) can construct a clock-driven registry.
pub use revelio_net::clock::SimClock as TelemetryClock;

/// Interior state behind the shared handle.
#[derive(Debug, Default)]
pub(crate) struct State {
    pub(crate) spans: Vec<SpanRecord>,
    /// Stack of open span ids; the top is the parent of the next span.
    pub(crate) stack: Vec<u64>,
    /// Last allocated trace id; 0 is reserved (never a valid trace).
    pub(crate) last_trace_id: u64,
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, f64>,
    pub(crate) histograms: BTreeMap<String, Histogram>,
}

impl State {
    /// Trace id for a new span: inherit the parent's, or allocate the
    /// next one for a root. Allocation is sequential from 1, so trace ids
    /// are a pure function of root-span creation order.
    pub(crate) fn trace_of(&mut self, parent: Option<u64>) -> u64 {
        match parent {
            Some(pid) => self.spans[pid as usize].trace_id,
            None => {
                self.last_trace_id += 1;
                self.last_trace_id
            }
        }
    }
}

#[derive(Debug)]
pub(crate) struct Inner {
    pub(crate) clock: SimClock,
    pub(crate) state: Mutex<State>,
}

/// A cloneable handle to a telemetry registry bound to one [`SimClock`].
///
/// Clones share state: `SimWorld` creates one handle and threads clones to
/// every component it constructs, so all spans land in a single tree.
#[derive(Debug, Clone)]
pub struct Telemetry {
    pub(crate) inner: Arc<Inner>,
}

impl Telemetry {
    /// Creates an empty registry driven by `clock`.
    #[must_use]
    pub fn new(clock: SimClock) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                clock,
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// The clock durations are read from.
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// Adds `delta` to the named monotonic counter (created on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut state = self.inner.state.lock();
        match state.counters.get_mut(name) {
            Some(value) => *value = value.saturating_add(delta),
            None => {
                state.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets the named gauge to `value` (created on first use).
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.inner
            .state
            .lock()
            .gauges
            .insert(name.to_string(), value);
    }

    /// Registers a histogram with explicit bucket upper bounds (strictly
    /// increasing and finite, exclusive of the implicit `+Inf` overflow
    /// bucket). Re-registering an existing name keeps the original
    /// buckets.
    ///
    /// # Panics
    ///
    /// Panics when any bound is non-finite or the bounds are not strictly
    /// increasing — misordered bounds would silently misbucket every
    /// observation, so they are rejected loudly at registration time.
    pub fn register_histogram(&self, name: &str, bounds: &[f64]) {
        if let Some(bad) = bounds.iter().find(|b| !b.is_finite()) {
            panic!("histogram {name:?}: non-finite bucket bound {bad} (the +Inf overflow bucket is implicit; every explicit bound must be finite)");
        }
        if let Some(pair) = bounds.windows(2).find(|w| w[0] >= w[1]) {
            panic!(
                "histogram {name:?}: bucket bounds must be strictly increasing, got {} followed by {}",
                pair[0], pair[1]
            );
        }
        let mut state = self.inner.state.lock();
        if !state.histograms.contains_key(name) {
            state
                .histograms
                .insert(name.to_string(), Histogram::new(bounds));
        }
    }

    /// Records `value` into the named histogram, auto-registering it with
    /// the default latency buckets when absent.
    pub fn observe(&self, name: &str, value: f64) {
        let mut state = self.inner.state.lock();
        state
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(metrics::DEFAULT_LATENCY_BOUNDS_MS))
            .observe(value);
    }

    /// Reads a counter (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .state
            .lock()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Reads a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.state.lock().gauges.get(name).copied()
    }

    /// Snapshot of a histogram for percentile queries.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.state.lock().histograms.get(name).cloned()
    }

    /// Durations (ms) of every *finished* span with the given name, in
    /// recording order. Used to derive timing structs from the span tree.
    #[must_use]
    pub fn span_durations_ms(&self, name: &str) -> Vec<f64> {
        let state = self.inner.state.lock();
        state
            .spans
            .iter()
            .filter(|s| s.name == name)
            .filter_map(SpanRecord::duration_ms)
            .collect()
    }

    /// Total recorded span count (finished or open).
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.inner.state.lock().spans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let t = Telemetry::new(SimClock::new());
        t.counter_add("revelio_test_ops_total", 2);
        t.counter_add("revelio_test_ops_total", 3);
        t.gauge_set("revelio_test_depth", 4.5);
        assert_eq!(t.counter("revelio_test_ops_total"), 5);
        assert_eq!(t.gauge("revelio_test_depth"), Some(4.5));
        assert_eq!(t.counter("never_touched"), 0);
        assert_eq!(t.gauge("never_touched"), None);
    }

    #[test]
    fn counter_saturates() {
        let t = Telemetry::new(SimClock::new());
        t.counter_add("c", u64::MAX - 1);
        t.counter_add("c", 5);
        assert_eq!(t.counter("c"), u64::MAX);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::new(SimClock::new());
        let u = t.clone();
        t.counter_add("shared", 1);
        assert_eq!(u.counter("shared"), 1);
    }

    #[test]
    fn valid_histogram_bounds_accepted() {
        let t = Telemetry::new(SimClock::new());
        t.register_histogram("h", &[0.5, 1.0, 10.0]);
        t.observe("h", 0.7);
        assert_eq!(t.histogram("h").unwrap().count(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn misordered_histogram_bounds_rejected() {
        let t = Telemetry::new(SimClock::new());
        t.register_histogram("h", &[1.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_histogram_bounds_rejected() {
        let t = Telemetry::new(SimClock::new());
        t.register_histogram("h", &[1.0, f64::INFINITY]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_histogram_bounds_rejected() {
        let t = Telemetry::new(SimClock::new());
        t.register_histogram("h", &[f64::NAN]);
    }
}

//! Named, nested, attributed spans timed by the sim clock.

use std::collections::BTreeMap;

use crate::Telemetry;

/// One recorded span. Spans form a tree via `parent`; ids are assigned in
/// creation order, so the vector in the registry is a deterministic
/// preorder-ish log of the run. Every span belongs to exactly one trace:
/// roots allocate the next trace id from the registry, children (ambient
/// or remote) inherit their parent's.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub id: u64,
    /// Trace this span belongs to. Allocated sequentially starting at 1,
    /// so ids are a pure function of root-span creation order.
    pub trace_id: u64,
    pub parent: Option<u64>,
    pub name: String,
    pub start_us: u64,
    /// `None` while the span is open.
    pub end_us: Option<u64>,
    pub attrs: BTreeMap<String, String>,
}

/// A position in a trace, carried across call boundaries in a
/// `traceparent`-style header (`00-<32 hex trace>-<16 hex span>-01`).
///
/// The wire format follows W3C Trace Context with two deliberate
/// restrictions for the closed simulated world: trace ids are 64-bit
/// (the upper 16 hex digits must be zero) and an all-zero trace id is
/// malformed (the registry never allocates trace id 0). Span id 0 *is*
/// accepted — registry span ids start at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    pub trace_id: u64,
    pub span_id: u64,
}

impl TraceContext {
    /// Renders the context as a `traceparent` header value.
    #[must_use]
    pub fn to_traceparent(&self) -> String {
        format!("00-{:032x}-{:016x}-01", self.trace_id, self.span_id)
    }

    /// Strictly parses a `traceparent` header value; any deviation from
    /// the format (length, version, separators, hex case, flags, zero or
    /// oversized trace id) returns `None`.
    #[must_use]
    pub fn parse_traceparent(value: &str) -> Option<TraceContext> {
        let bytes = value.as_bytes();
        if bytes.len() != 55 {
            return None;
        }
        if &bytes[0..2] != b"00" || bytes[2] != b'-' || bytes[35] != b'-' || bytes[52] != b'-' {
            return None;
        }
        let flags = &bytes[53..55];
        if flags != b"00" && flags != b"01" {
            return None;
        }
        let lower_hex = |field: &[u8]| {
            field
                .iter()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(b))
        };
        let trace_hex = &bytes[3..35];
        let span_hex = &bytes[36..52];
        if !lower_hex(trace_hex) || !lower_hex(span_hex) {
            return None;
        }
        // 64-bit trace ids: the upper half of the 128-bit field must be zero.
        if trace_hex[..16].iter().any(|&b| b != b'0') {
            return None;
        }
        let trace_id = u64::from_str_radix(std::str::from_utf8(&trace_hex[16..]).ok()?, 16).ok()?;
        if trace_id == 0 {
            return None;
        }
        let span_id = u64::from_str_radix(std::str::from_utf8(span_hex).ok()?, 16).ok()?;
        Some(TraceContext { trace_id, span_id })
    }
}

impl SpanRecord {
    /// Duration in fractional milliseconds, `None` while open.
    #[must_use]
    pub fn duration_ms(&self) -> Option<f64> {
        self.end_us
            .map(|end| end.saturating_sub(self.start_us) as f64 / 1000.0)
    }
}

/// RAII handle for an open span. Dropping it finishes the span at the
/// current sim time; [`SpanGuard::finish_ms`] does the same and hands back
/// the measured duration so callers can derive timing structs from spans
/// instead of bookkeeping clock deltas by hand.
#[derive(Debug)]
pub struct SpanGuard {
    telemetry: Telemetry,
    id: u64,
    finished: bool,
}

impl Telemetry {
    /// Opens a span named `name`, child of the innermost open span.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with(name, &[])
    }

    /// Opens a span with initial attributes.
    pub fn span_with(&self, name: &str, attrs: &[(&str, &str)]) -> SpanGuard {
        let start_us = self.inner.clock.now_us();
        let mut state = self.inner.state.lock();
        let id = state.spans.len() as u64;
        let parent = state.stack.last().copied();
        let trace_id = state.trace_of(parent);
        state.spans.push(SpanRecord {
            id,
            trace_id,
            parent,
            name: name.to_string(),
            start_us,
            end_us: None,
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        });
        state.stack.push(id);
        SpanGuard {
            telemetry: self.clone(),
            id,
            finished: false,
        }
    }

    /// Opens a span whose parent is an *explicit* [`TraceContext`] rather
    /// than the innermost open span — the server half of context
    /// propagation: the router parses the `traceparent` header a client
    /// injected and parents its handler span to the remote caller's span,
    /// stitching the cross-node tree together.
    pub fn span_with_remote_parent(
        &self,
        name: &str,
        attrs: &[(&str, &str)],
        context: TraceContext,
    ) -> SpanGuard {
        let start_us = self.inner.clock.now_us();
        let mut state = self.inner.state.lock();
        let id = state.spans.len() as u64;
        state.spans.push(SpanRecord {
            id,
            trace_id: context.trace_id,
            parent: Some(context.span_id),
            name: name.to_string(),
            start_us,
            end_us: None,
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        });
        state.stack.push(id);
        SpanGuard {
            telemetry: self.clone(),
            id,
            finished: false,
        }
    }

    /// The [`TraceContext`] of the innermost open span, ready to inject
    /// into an outgoing request; `None` outside any span.
    #[must_use]
    pub fn current_context(&self) -> Option<TraceContext> {
        let state = self.inner.state.lock();
        let id = *state.stack.last()?;
        Some(TraceContext {
            trace_id: state.spans[id as usize].trace_id,
            span_id: id,
        })
    }

    /// Ids of every trace in the registry, in allocation order.
    #[must_use]
    pub fn trace_ids(&self) -> Vec<u64> {
        let state = self.inner.state.lock();
        let mut ids: Vec<u64> = state.spans.iter().map(|s| s.trace_id).collect();
        ids.dedup();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Snapshot of every finished span belonging to `trace_id`, id order.
    #[must_use]
    pub fn trace_spans(&self, trace_id: u64) -> Vec<SpanRecord> {
        let state = self.inner.state.lock();
        state
            .spans
            .iter()
            .filter(|s| s.trace_id == trace_id && s.end_us.is_some())
            .cloned()
            .collect()
    }

    /// Records an already-finished span of modelled duration `ms` without
    /// advancing the clock. Used for costs the simulation models
    /// analytically (e.g. boot-time hashing) rather than simulates.
    pub fn modelled_span(&self, name: &str, ms: f64) -> u64 {
        self.modelled_span_with(name, ms, &[])
    }

    /// [`Telemetry::modelled_span`] with attributes.
    pub fn modelled_span_with(&self, name: &str, ms: f64, attrs: &[(&str, &str)]) -> u64 {
        let start_us = self.inner.clock.now_us();
        let mut state = self.inner.state.lock();
        let id = state.spans.len() as u64;
        let parent = state.stack.last().copied();
        let trace_id = state.trace_of(parent);
        state.spans.push(SpanRecord {
            id,
            trace_id,
            parent,
            name: name.to_string(),
            start_us,
            end_us: Some(start_us.saturating_add((ms * 1000.0).max(0.0) as u64)),
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        });
        id
    }

    /// Snapshot of one span by id.
    #[must_use]
    pub fn span_record(&self, id: u64) -> Option<SpanRecord> {
        self.inner.state.lock().spans.get(id as usize).cloned()
    }

    fn finish_span(&self, id: u64, end_us: u64) -> f64 {
        let mut state = self.inner.state.lock();
        // Out-of-order drops are tolerated: remove the id wherever it sits.
        if let Some(pos) = state.stack.iter().rposition(|&open| open == id) {
            state.stack.remove(pos);
        }
        let span = &mut state.spans[id as usize];
        span.end_us = Some(end_us);
        end_us.saturating_sub(span.start_us) as f64 / 1000.0
    }
}

impl SpanGuard {
    /// The span's id in the registry.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Sets an attribute on the open span.
    pub fn attr(&self, key: &str, value: &str) {
        let mut state = self.telemetry.inner.state.lock();
        let span = &mut state.spans[self.id as usize];
        span.attrs.insert(key.to_string(), value.to_string());
    }

    /// Finishes the span at the current sim time and returns its duration
    /// in milliseconds.
    pub fn finish_ms(mut self) -> f64 {
        self.finished = true;
        let end = self.telemetry.inner.clock.now_us();
        self.telemetry.finish_span(self.id, end)
    }

    /// Finishes the span with a *modelled* duration: the end time is
    /// `start + ms` but the shared clock is not advanced.
    pub fn finish_modelled_ms(mut self, ms: f64) -> f64 {
        self.finished = true;
        let start = self
            .telemetry
            .span_record(self.id)
            .map(|s| s.start_us)
            .unwrap_or_default();
        let end = start.saturating_add((ms * 1000.0).max(0.0) as u64);
        self.telemetry.finish_span(self.id, end)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.finished {
            let end = self.telemetry.inner.clock.now_us();
            self.telemetry.finish_span(self.id, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_net::clock::SimClock;

    fn fixture() -> (Telemetry, SimClock) {
        let clock = SimClock::new();
        (Telemetry::new(clock.clone()), clock)
    }

    #[test]
    fn span_measures_clock_advance() {
        let (t, clock) = fixture();
        let span = t.span("work");
        clock.advance_ms(12.5);
        assert_eq!(span.finish_ms(), 12.5);
        assert_eq!(t.span_durations_ms("work"), vec![12.5]);
    }

    #[test]
    fn spans_nest_under_innermost_open() {
        let (t, clock) = fixture();
        let outer = t.span("outer");
        clock.advance_ms(1.0);
        let inner = t.span("inner");
        clock.advance_ms(2.0);
        inner.finish_ms();
        outer.finish_ms();

        let inner_rec = t.span_record(1).unwrap();
        assert_eq!(inner_rec.name, "inner");
        assert_eq!(inner_rec.parent, Some(0));
        assert_eq!(inner_rec.start_us, 1000);
        let outer_rec = t.span_record(0).unwrap();
        assert_eq!(outer_rec.parent, None);
        assert_eq!(outer_rec.duration_ms(), Some(3.0));
    }

    #[test]
    fn attributes_recorded() {
        let (t, _) = fixture();
        let span = t.span_with("req", &[("path", "/x")]);
        span.attr("status", "200");
        span.finish_ms();
        let rec = t.span_record(0).unwrap();
        assert_eq!(rec.attrs["path"], "/x");
        assert_eq!(rec.attrs["status"], "200");
    }

    #[test]
    fn drop_finishes_open_span() {
        let (t, clock) = fixture();
        {
            let _span = t.span("scoped");
            clock.advance_ms(4.0);
        }
        assert_eq!(t.span_durations_ms("scoped"), vec![4.0]);
    }

    #[test]
    fn modelled_finish_does_not_advance_clock() {
        let (t, clock) = fixture();
        let span = t.span("boot");
        assert_eq!(span.finish_modelled_ms(250.0), 250.0);
        assert_eq!(clock.now_us(), 0);
        assert_eq!(t.span_durations_ms("boot"), vec![250.0]);
    }

    #[test]
    fn modelled_span_records_child() {
        let (t, clock) = fixture();
        let parent = t.span("parent");
        t.modelled_span("child", 7.0);
        parent.finish_ms();
        let child = t.span_record(1).unwrap();
        assert_eq!(child.parent, Some(0));
        assert_eq!(child.duration_ms(), Some(7.0));
        assert_eq!(clock.now_us(), 0);
    }

    #[test]
    fn trace_ids_allocate_for_roots_and_inherit_for_children() {
        let (t, _) = fixture();
        let a = t.span("a"); // trace 1
        let a_child = t.span("a.child");
        a_child.finish_ms();
        a.finish_ms();
        let b = t.span("b"); // trace 2
        b.finish_ms();
        assert_eq!(t.span_record(0).unwrap().trace_id, 1);
        assert_eq!(t.span_record(1).unwrap().trace_id, 1);
        assert_eq!(t.span_record(2).unwrap().trace_id, 2);
        assert_eq!(t.trace_ids(), vec![1, 2]);
        assert_eq!(t.trace_spans(1).len(), 2);
    }

    #[test]
    fn current_context_tracks_innermost_span() {
        let (t, _) = fixture();
        assert_eq!(t.current_context(), None);
        let outer = t.span("outer");
        let context = t.current_context().unwrap();
        assert_eq!(
            context,
            TraceContext {
                trace_id: 1,
                span_id: 0
            }
        );
        let inner = t.span("inner");
        assert_eq!(t.current_context().unwrap().span_id, 1);
        inner.finish_ms();
        assert_eq!(t.current_context().unwrap().span_id, 0);
        outer.finish_ms();
        assert_eq!(t.current_context(), None);
    }

    #[test]
    fn remote_parent_adopts_context_identity() {
        let (t, clock) = fixture();
        let context = TraceContext {
            trace_id: 7,
            span_id: 42,
        };
        let server = t.span_with_remote_parent("server", &[("path", "/")], context);
        clock.advance_ms(1.0);
        // Children opened while the remote-parented span is on the stack
        // inherit its trace.
        let child = t.span("child");
        child.finish_ms();
        server.finish_ms();
        let rec = t.span_record(0).unwrap();
        assert_eq!(rec.trace_id, 7);
        assert_eq!(rec.parent, Some(42));
        assert_eq!(t.span_record(1).unwrap().trace_id, 7);
    }

    #[test]
    fn traceparent_round_trips() {
        let context = TraceContext {
            trace_id: 0xDEAD_BEEF,
            span_id: 3,
        };
        let header = context.to_traceparent();
        assert_eq!(
            header,
            "00-000000000000000000000000deadbeef-0000000000000003-01"
        );
        assert_eq!(TraceContext::parse_traceparent(&header), Some(context));
    }

    #[test]
    fn malformed_traceparent_rejected() {
        for bad in [
            "",
            "00-0000000000000000000000000000002a-0000000000000001", // short
            "01-0000000000000000000000000000002a-0000000000000001-01", // version
            "00-0000000000000000000000000000002A-0000000000000001-01", // upper hex
            "00-0000000000000000000000000000002a-0000000000000001-02", // flags
            "00-00000000000000000000000000000000-0000000000000001-01", // zero trace
            "00-0000000000000001000000000000002a-0000000000000001-01", // >64-bit trace
            "00-g000000000000000000000000000002a-0000000000000001-01", // non-hex
            "00_0000000000000000000000000000002a-0000000000000001-01", // separator
        ] {
            assert_eq!(TraceContext::parse_traceparent(bad), None, "{bad:?}");
        }
        // Zero span id is valid here: registry span ids start at 0.
        assert_eq!(
            TraceContext::parse_traceparent(
                "00-0000000000000000000000000000002a-0000000000000000-00"
            ),
            Some(TraceContext {
                trace_id: 42,
                span_id: 0
            })
        );
    }

    #[test]
    fn out_of_order_drop_tolerated() {
        let (t, clock) = fixture();
        let a = t.span("a");
        let b = t.span("b");
        clock.advance_ms(1.0);
        a.finish_ms(); // finished before its child b
        clock.advance_ms(1.0);
        b.finish_ms();
        assert_eq!(t.span_durations_ms("a"), vec![1.0]);
        assert_eq!(t.span_durations_ms("b"), vec![2.0]);
        // The stack is fully unwound; the next span is a root.
        let c = t.span("c");
        c.finish_ms();
        assert_eq!(t.span_record(2).unwrap().parent, None);
    }
}

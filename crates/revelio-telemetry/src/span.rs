//! Named, nested, attributed spans timed by the sim clock.

use std::collections::BTreeMap;

use crate::Telemetry;

/// One recorded span. Spans form a tree via `parent`; ids are assigned in
/// creation order, so the vector in the registry is a deterministic
/// preorder-ish log of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: String,
    pub start_us: u64,
    /// `None` while the span is open.
    pub end_us: Option<u64>,
    pub attrs: BTreeMap<String, String>,
}

impl SpanRecord {
    /// Duration in fractional milliseconds, `None` while open.
    #[must_use]
    pub fn duration_ms(&self) -> Option<f64> {
        self.end_us
            .map(|end| end.saturating_sub(self.start_us) as f64 / 1000.0)
    }
}

/// RAII handle for an open span. Dropping it finishes the span at the
/// current sim time; [`SpanGuard::finish_ms`] does the same and hands back
/// the measured duration so callers can derive timing structs from spans
/// instead of bookkeeping clock deltas by hand.
#[derive(Debug)]
pub struct SpanGuard {
    telemetry: Telemetry,
    id: u64,
    finished: bool,
}

impl Telemetry {
    /// Opens a span named `name`, child of the innermost open span.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with(name, &[])
    }

    /// Opens a span with initial attributes.
    pub fn span_with(&self, name: &str, attrs: &[(&str, &str)]) -> SpanGuard {
        let start_us = self.inner.clock.now_us();
        let mut state = self.inner.state.lock();
        let id = state.spans.len() as u64;
        let parent = state.stack.last().copied();
        state.spans.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_us,
            end_us: None,
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        });
        state.stack.push(id);
        SpanGuard {
            telemetry: self.clone(),
            id,
            finished: false,
        }
    }

    /// Records an already-finished span of modelled duration `ms` without
    /// advancing the clock. Used for costs the simulation models
    /// analytically (e.g. boot-time hashing) rather than simulates.
    pub fn modelled_span(&self, name: &str, ms: f64) -> u64 {
        self.modelled_span_with(name, ms, &[])
    }

    /// [`Telemetry::modelled_span`] with attributes.
    pub fn modelled_span_with(&self, name: &str, ms: f64, attrs: &[(&str, &str)]) -> u64 {
        let start_us = self.inner.clock.now_us();
        let mut state = self.inner.state.lock();
        let id = state.spans.len() as u64;
        let parent = state.stack.last().copied();
        state.spans.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_us,
            end_us: Some(start_us.saturating_add((ms * 1000.0).max(0.0) as u64)),
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        });
        id
    }

    /// Snapshot of one span by id.
    #[must_use]
    pub fn span_record(&self, id: u64) -> Option<SpanRecord> {
        self.inner.state.lock().spans.get(id as usize).cloned()
    }

    fn finish_span(&self, id: u64, end_us: u64) -> f64 {
        let mut state = self.inner.state.lock();
        // Out-of-order drops are tolerated: remove the id wherever it sits.
        if let Some(pos) = state.stack.iter().rposition(|&open| open == id) {
            state.stack.remove(pos);
        }
        let span = &mut state.spans[id as usize];
        span.end_us = Some(end_us);
        end_us.saturating_sub(span.start_us) as f64 / 1000.0
    }
}

impl SpanGuard {
    /// The span's id in the registry.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Sets an attribute on the open span.
    pub fn attr(&self, key: &str, value: &str) {
        let mut state = self.telemetry.inner.state.lock();
        let span = &mut state.spans[self.id as usize];
        span.attrs.insert(key.to_string(), value.to_string());
    }

    /// Finishes the span at the current sim time and returns its duration
    /// in milliseconds.
    pub fn finish_ms(mut self) -> f64 {
        self.finished = true;
        let end = self.telemetry.inner.clock.now_us();
        self.telemetry.finish_span(self.id, end)
    }

    /// Finishes the span with a *modelled* duration: the end time is
    /// `start + ms` but the shared clock is not advanced.
    pub fn finish_modelled_ms(mut self, ms: f64) -> f64 {
        self.finished = true;
        let start = self
            .telemetry
            .span_record(self.id)
            .map(|s| s.start_us)
            .unwrap_or_default();
        let end = start.saturating_add((ms * 1000.0).max(0.0) as u64);
        self.telemetry.finish_span(self.id, end)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.finished {
            let end = self.telemetry.inner.clock.now_us();
            self.telemetry.finish_span(self.id, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_net::clock::SimClock;

    fn fixture() -> (Telemetry, SimClock) {
        let clock = SimClock::new();
        (Telemetry::new(clock.clone()), clock)
    }

    #[test]
    fn span_measures_clock_advance() {
        let (t, clock) = fixture();
        let span = t.span("work");
        clock.advance_ms(12.5);
        assert_eq!(span.finish_ms(), 12.5);
        assert_eq!(t.span_durations_ms("work"), vec![12.5]);
    }

    #[test]
    fn spans_nest_under_innermost_open() {
        let (t, clock) = fixture();
        let outer = t.span("outer");
        clock.advance_ms(1.0);
        let inner = t.span("inner");
        clock.advance_ms(2.0);
        inner.finish_ms();
        outer.finish_ms();

        let inner_rec = t.span_record(1).unwrap();
        assert_eq!(inner_rec.name, "inner");
        assert_eq!(inner_rec.parent, Some(0));
        assert_eq!(inner_rec.start_us, 1000);
        let outer_rec = t.span_record(0).unwrap();
        assert_eq!(outer_rec.parent, None);
        assert_eq!(outer_rec.duration_ms(), Some(3.0));
    }

    #[test]
    fn attributes_recorded() {
        let (t, _) = fixture();
        let span = t.span_with("req", &[("path", "/x")]);
        span.attr("status", "200");
        span.finish_ms();
        let rec = t.span_record(0).unwrap();
        assert_eq!(rec.attrs["path"], "/x");
        assert_eq!(rec.attrs["status"], "200");
    }

    #[test]
    fn drop_finishes_open_span() {
        let (t, clock) = fixture();
        {
            let _span = t.span("scoped");
            clock.advance_ms(4.0);
        }
        assert_eq!(t.span_durations_ms("scoped"), vec![4.0]);
    }

    #[test]
    fn modelled_finish_does_not_advance_clock() {
        let (t, clock) = fixture();
        let span = t.span("boot");
        assert_eq!(span.finish_modelled_ms(250.0), 250.0);
        assert_eq!(clock.now_us(), 0);
        assert_eq!(t.span_durations_ms("boot"), vec![250.0]);
    }

    #[test]
    fn modelled_span_records_child() {
        let (t, clock) = fixture();
        let parent = t.span("parent");
        t.modelled_span("child", 7.0);
        parent.finish_ms();
        let child = t.span_record(1).unwrap();
        assert_eq!(child.parent, Some(0));
        assert_eq!(child.duration_ms(), Some(7.0));
        assert_eq!(clock.now_us(), 0);
    }

    #[test]
    fn out_of_order_drop_tolerated() {
        let (t, clock) = fixture();
        let a = t.span("a");
        let b = t.span("b");
        clock.advance_ms(1.0);
        a.finish_ms(); // finished before its child b
        clock.advance_ms(1.0);
        b.finish_ms();
        assert_eq!(t.span_durations_ms("a"), vec![1.0]);
        assert_eq!(t.span_durations_ms("b"), vec![2.0]);
        // The stack is fully unwound; the next span is a root.
        let c = t.span("c");
        c.finish_ms();
        assert_eq!(t.span_record(2).unwrap().parent, None);
    }
}

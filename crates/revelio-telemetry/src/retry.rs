//! Telemetry-aware retry: a [`RetryPolicy`] run that mirrors its attempt
//! accounting into named counters.
//!
//! The pure backoff machinery lives in `revelio_net::retry` (the network
//! crate cannot depend on this one); components that hold a [`Telemetry`]
//! handle call [`retry_with_telemetry`] instead so every retried call
//! feeds the fleet-wide `revelio_retry_attempts_total` plus the
//! per-component `revelio_<component>_retry_attempts_total` and
//! `revelio_<component>_retry_gave_up_total` counters.
//!
//! A first-attempt success records nothing — fault-free runs keep their
//! telemetry exports byte-identical to pre-retry builds.

use revelio_net::retry::RetryPolicy;

use crate::Telemetry;

/// Fleet-wide counter of retry attempts (excludes first attempts).
pub const RETRY_ATTEMPTS_TOTAL: &str = "revelio_retry_attempts_total";

/// Runs `op` under `policy`, spending backoff on the telemetry clock and
/// recording retry counters for `component` (a short identifier such as
/// `"kds"`, `"sp"`, `"acme"`).
///
/// Counters written (only when at least one retry happened):
/// `revelio_retry_attempts_total`,
/// `revelio_<component>_retry_attempts_total`, and — when the final
/// result is still a transient failure —
/// `revelio_<component>_retry_gave_up_total`.
///
/// # Errors
///
/// Returns the final error when `op` fails durably or the policy's
/// attempts are exhausted.
pub fn retry_with_telemetry<T, E>(
    policy: &RetryPolicy,
    telemetry: &Telemetry,
    component: &str,
    is_transient: impl Fn(&E) -> bool,
    op: impl FnMut(u32) -> Result<T, E>,
) -> Result<T, E> {
    let (result, attempts) = policy.run(telemetry.clock(), &is_transient, op);
    let retries = u64::from(attempts.saturating_sub(1));
    if retries > 0 {
        telemetry.counter_add(RETRY_ATTEMPTS_TOTAL, retries);
        telemetry.counter_add(
            &format!("revelio_{component}_retry_attempts_total"),
            retries,
        );
    }
    if let Err(e) = &result {
        if is_transient(e) {
            telemetry.counter_add(&format!("revelio_{component}_retry_gave_up_total"), 1);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_net::clock::SimClock;

    #[derive(Debug, PartialEq)]
    enum E {
        Transient,
        Durable,
    }

    fn transient(e: &E) -> bool {
        matches!(e, E::Transient)
    }

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 1_000,
            max_backoff_us: 4_000,
            jitter_seed: 0,
        }
    }

    #[test]
    fn first_attempt_success_records_nothing() {
        let t = Telemetry::new(SimClock::new());
        let r = retry_with_telemetry(&policy(), &t, "kds", transient, |_| Ok::<_, E>(1));
        assert_eq!(r, Ok(1));
        assert_eq!(t.counter(RETRY_ATTEMPTS_TOTAL), 0);
        assert_eq!(t.counter("revelio_kds_retry_attempts_total"), 0);
        assert_eq!(t.counter("revelio_kds_retry_gave_up_total"), 0);
    }

    #[test]
    fn retries_are_counted_globally_and_per_component() {
        let t = Telemetry::new(SimClock::new());
        let r = retry_with_telemetry(&policy(), &t, "kds", transient, |attempt| {
            if attempt < 3 {
                Err(E::Transient)
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(r, Ok(3));
        assert_eq!(t.counter(RETRY_ATTEMPTS_TOTAL), 2);
        assert_eq!(t.counter("revelio_kds_retry_attempts_total"), 2);
        assert_eq!(t.counter("revelio_kds_retry_gave_up_total"), 0);
        assert!(t.clock().now_us() > 0, "backoff spent simulated time");
    }

    #[test]
    fn exhaustion_records_gave_up() {
        let t = Telemetry::new(SimClock::new());
        let r = retry_with_telemetry(&policy(), &t, "sp", transient, |_| {
            Err::<u32, _>(E::Transient)
        });
        assert_eq!(r, Err(E::Transient));
        assert_eq!(t.counter(RETRY_ATTEMPTS_TOTAL), 2);
        assert_eq!(t.counter("revelio_sp_retry_attempts_total"), 2);
        assert_eq!(t.counter("revelio_sp_retry_gave_up_total"), 1);
    }

    #[test]
    fn durable_failure_is_not_a_gave_up() {
        let t = Telemetry::new(SimClock::new());
        let r = retry_with_telemetry(&policy(), &t, "sp", transient, |_| {
            Err::<u32, _>(E::Durable)
        });
        assert_eq!(r, Err(E::Durable));
        assert_eq!(t.counter(RETRY_ATTEMPTS_TOTAL), 0);
        assert_eq!(t.counter("revelio_sp_retry_gave_up_total"), 0);
        assert_eq!(t.clock().now_us(), 0);
    }
}

//! Per-node flight recorder: a fixed-capacity ring buffer of recent
//! span/fault/retry/verdict events for chaos forensics.
//!
//! When the buffer is full the oldest event is dropped and a drop counter
//! incremented, so a recorder never grows unbounded and a dump always
//! says how much history it lost. Timestamps come off the shared
//! [`SimClock`], keeping dumps deterministic for a fixed seed.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use revelio_net::clock::SimClock;

use crate::export::json_escape;

/// Default ring capacity: enough to hold the full attestation exchange a
/// node sees before a quarantine, small enough to stay bounded.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 64;

/// One recorded event: when (sim µs), what kind (`span` / `fault` /
/// `retry` / `verdict` / `request`), and a short free-form detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    pub at_us: u64,
    pub kind: String,
    pub detail: String,
}

#[derive(Debug)]
struct FlightState {
    events: VecDeque<FlightEvent>,
    dropped: u64,
}

/// A cloneable handle to one node's ring buffer.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    clock: SimClock,
    capacity: usize,
    state: Arc<Mutex<FlightState>>,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(clock: SimClock, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            clock,
            capacity,
            state: Arc::new(Mutex::new(FlightState {
                events: VecDeque::with_capacity(capacity),
                dropped: 0,
            })),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&self, kind: &str, detail: &str) {
        let at_us = self.clock.now_us();
        let mut state = self.state.lock();
        if state.events.len() == self.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(FlightEvent {
            at_us,
            kind: kind.to_string(),
            detail: detail.to_string(),
        });
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().events.len()
    }

    /// True when no events have been recorded (or all were evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    /// The ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the ring, oldest first, plus the drop counter.
    #[must_use]
    pub fn dump(&self) -> FlightDump {
        let state = self.state.lock();
        FlightDump {
            capacity: self.capacity,
            dropped: state.dropped,
            events: state.events.iter().cloned().collect(),
        }
    }
}

/// An immutable snapshot of a recorder — what gets attached to a
/// `ProvisionReport` quarantine entry or an `AttestationFailed` verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    pub capacity: usize,
    /// Events evicted before this snapshot was taken.
    pub dropped: u64,
    /// Surviving events, oldest first.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// Compact single-line-per-event JSON, deterministic byte-for-byte.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"capacity\":{},\"dropped\":{},\"events\":[",
            self.capacity, self.dropped
        );
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at_us\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
                event.at_us,
                json_escape(&event.kind),
                json_escape(&event.detail)
            );
        }
        out.push_str("]}");
        out
    }

    /// Human-readable timeline, one event per line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder · {} events · {} dropped (capacity {})",
            self.events.len(),
            self.dropped,
            self.capacity
        );
        for event in &self.events {
            let _ = writeln!(
                out,
                "  {:>12} us  {:<8} {}",
                event.at_us, event.kind, event.detail
            );
        }
        out
    }
}

/// World-level directory of per-node recorders, keyed by address.
///
/// A node is reachable on both its bootstrap and public address; `alias`
/// maps both to the same ring so its forensic timeline is one sequence.
#[derive(Debug, Clone)]
pub struct FlightDirectory {
    clock: SimClock,
    capacity: usize,
    map: Arc<Mutex<BTreeMap<String, FlightRecorder>>>,
}

impl FlightDirectory {
    /// Creates an empty directory whose recorders hold `capacity` events.
    #[must_use]
    pub fn new(clock: SimClock, capacity: usize) -> Self {
        FlightDirectory {
            clock,
            capacity,
            map: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Returns the recorder for `key`, creating it on first use.
    #[must_use]
    pub fn register(&self, key: &str) -> FlightRecorder {
        let mut map = self.map.lock();
        map.entry(key.to_string())
            .or_insert_with(|| FlightRecorder::new(self.clock.clone(), self.capacity))
            .clone()
    }

    /// Points `alias` at the same ring as `existing` (registering
    /// `existing` first if needed).
    pub fn alias(&self, existing: &str, alias: &str) {
        let recorder = self.register(existing);
        self.map.lock().insert(alias.to_string(), recorder);
    }

    /// The recorder for `key`, if registered.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<FlightRecorder> {
        self.map.lock().get(key).cloned()
    }

    /// Records an event into `key`'s ring when one is registered;
    /// silently ignores unknown keys (e.g. faults injected on addresses
    /// that are not fleet nodes).
    pub fn record(&self, key: &str, kind: &str, detail: &str) {
        if let Some(recorder) = self.get(key) {
            recorder.record(kind, detail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts() {
        let clock = SimClock::new();
        let recorder = FlightRecorder::new(clock.clone(), 3);
        for i in 0..5 {
            clock.advance_ms(1.0);
            recorder.record("fault", &format!("event-{i}"));
        }
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.dropped(), 2);
        let dump = recorder.dump();
        assert_eq!(dump.events.len(), 3);
        assert_eq!(dump.events[0].detail, "event-2");
        assert_eq!(dump.events[2].detail, "event-4");
        assert_eq!(dump.events[2].at_us, 5_000);
        assert!(dump.render().contains("3 events · 2 dropped (capacity 3)"));
    }

    #[test]
    fn dump_json_is_deterministic_and_escaped() {
        let clock = SimClock::new();
        let recorder = FlightRecorder::new(clock, 4);
        recorder.record("verdict", "path \"/x\"\nline2");
        let dump = recorder.dump();
        assert_eq!(dump.to_json(), dump.to_json());
        assert_eq!(
            dump.to_json(),
            "{\"capacity\":4,\"dropped\":0,\"events\":[{\"at_us\":0,\"kind\":\"verdict\",\"detail\":\"path \\\"/x\\\"\\nline2\"}]}"
        );
    }

    #[test]
    fn directory_aliases_share_one_ring() {
        let clock = SimClock::new();
        let directory = FlightDirectory::new(clock, 8);
        let bootstrap = directory.register("node:8443");
        directory.alias("node:8443", "node:443");
        directory.record("node:443", "fault", "drop");
        assert_eq!(bootstrap.len(), 1);
        assert_eq!(directory.get("node:8443").unwrap().dump(), bootstrap.dump());
        // Unknown keys are ignored, not created.
        directory.record("stranger:443", "fault", "drop");
        assert!(directory.get("stranger:443").is_none());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let recorder = FlightRecorder::new(SimClock::new(), 0);
        recorder.record("span", "a");
        recorder.record("span", "b");
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.dropped(), 1);
        assert_eq!(recorder.dump().events[0].detail, "b");
    }
}

//! Fixed-bucket histograms with percentile queries.

/// Default bucket upper bounds (milliseconds) for auto-registered latency
/// histograms: roughly logarithmic from 10 µs to 100 s.
pub(crate) const DEFAULT_LATENCY_BOUNDS_MS: &[f64] = &[
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10_000.0, 100_000.0,
];

/// A fixed-bucket histogram. `counts` has one slot per bound plus a final
/// overflow (`+Inf`) slot; a value lands in the first bucket whose bound is
/// `>=` the value (Prometheus `le` semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given upper bounds (an implicit
    /// `+Inf` overflow bucket is appended).
    ///
    /// # Panics
    ///
    /// Panics when bounds are non-finite or not strictly increasing:
    /// [`Histogram::observe`] picks the first bound `>=` the value, so
    /// misordered or NaN bounds would silently misbucket forever.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bucket bounds must be finite (the +Inf overflow bucket is implicit), got {bounds:?}"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bucket bounds must be strictly increasing, got {bounds:?}"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum / n as f64)
    }

    /// Smallest / largest observation, `None` when empty.
    #[must_use]
    pub fn min_max(&self) -> Option<(f64, f64)> {
        (self.count() > 0).then_some((self.min, self.max))
    }

    /// Bucket upper bounds (without the implicit `+Inf`).
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts including the final overflow slot.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// containing it — the usual fixed-bucket estimate. Observations in
    /// the overflow bucket report the largest value seen. Empty
    /// histograms return `None`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Rank of the target observation, 1-based, ceil semantics.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.percentile(0.50)
    }

    /// 95th percentile estimate.
    #[must_use]
    pub fn p95(&self) -> Option<f64> {
        self.percentile(0.95)
    }

    /// 99th percentile estimate.
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(1.0); // lands in the 1.0 bucket (le semantics)
        h.observe(1.000_001); // lands in the 2.0 bucket
        h.observe(4.0); // last real bucket
        h.observe(4.1); // overflow
        h.observe(3.0); // 4.0 bucket
        assert_eq!(h.counts(), &[1, 1, 2, 1]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let mut h = Histogram::new(&[1.0, 2.0, 5.0, 10.0]);
        for _ in 0..50 {
            h.observe(0.5); // bucket le=1.0
        }
        for _ in 0..45 {
            h.observe(1.5); // bucket le=2.0
        }
        for _ in 0..5 {
            h.observe(4.0); // bucket le=5.0
        }
        assert_eq!(h.p50(), Some(1.0));
        assert_eq!(h.p95(), Some(2.0));
        assert_eq!(h.p99(), Some(5.0));
        assert_eq!(h.percentile(1.0), Some(5.0));
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(250.0);
        h.observe(90.0);
        assert_eq!(h.p99(), Some(250.0));
        assert_eq!(h.p50(), Some(250.0));
        assert_eq!(h.min_max(), Some((90.0, 250.0)));
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min_max(), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(1.0), None);
    }

    #[test]
    fn out_of_range_quantile_rejected() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(0.5);
        assert_eq!(h.percentile(-0.1), None);
        assert_eq!(h.percentile(1.1), None);
        assert_eq!(h.percentile(0.0), Some(1.0));
    }

    #[test]
    fn single_observation_all_percentiles_agree() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.5);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(2.0), "q={q}");
        }
    }

    #[test]
    fn mean_and_sum_track_observations() {
        let mut h = Histogram::new(&[10.0]);
        h.observe(2.0);
        h.observe(4.0);
        assert_eq!(h.sum(), 6.0);
        assert_eq!(h.mean(), Some(3.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn count_matches_observations(values in proptest::collection::vec(0u64..2000, 0..50)) {
            let mut h = Histogram::new(&[1.0, 10.0, 100.0, 1000.0]);
            for v in &values {
                h.observe(*v as f64);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            if !values.is_empty() {
                let p50 = h.p50().unwrap();
                let p99 = h.p99().unwrap();
                prop_assert!(p50 <= p99);
                let max = *values.iter().max().unwrap() as f64;
                prop_assert!(p99 <= 1000.0_f64.max(max));
            }
        }
    }
}

//! Per-device I/O probe for the storage layer.
//!
//! A [`DeviceProbe`] attached to a block device charges the sim clock for
//! each transfer (a simple bytes × ns/byte cost model) and records
//! per-device counters plus an op-latency histogram. This is how the
//! fig. 5/6 benches obtain machine-independent timings: the "measured"
//! time is modelled I/O cost, not wall clock.

use crate::Telemetry;

/// Cost model + metric labels for one simulated block device.
#[derive(Debug, Clone)]
pub struct DeviceProbe {
    telemetry: Telemetry,
    label: String,
    read_ns_per_byte: f64,
    write_ns_per_byte: f64,
}

impl DeviceProbe {
    /// Creates a probe. `label` becomes part of the metric names:
    /// `revelio_storage_<label>_read_bytes_total` and friends.
    #[must_use]
    pub fn new(
        telemetry: Telemetry,
        label: &str,
        read_ns_per_byte: f64,
        write_ns_per_byte: f64,
    ) -> Self {
        DeviceProbe {
            telemetry,
            label: label.to_string(),
            read_ns_per_byte,
            write_ns_per_byte,
        }
    }

    /// The telemetry registry this probe reports into.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Charges a read of `bytes` bytes and records its metrics. Returns
    /// the modelled duration in milliseconds.
    pub fn on_read(&self, bytes: u64) -> f64 {
        self.charge("read", bytes, self.read_ns_per_byte)
    }

    /// Charges a write of `bytes` bytes and records its metrics. Returns
    /// the modelled duration in milliseconds.
    pub fn on_write(&self, bytes: u64) -> f64 {
        self.charge("write", bytes, self.write_ns_per_byte)
    }

    fn charge(&self, op: &str, bytes: u64, ns_per_byte: f64) -> f64 {
        let us = bytes as f64 * ns_per_byte / 1000.0;
        self.telemetry.clock().advance_us(us as u64);
        let label = &self.label;
        self.telemetry
            .counter_add(&format!("revelio_storage_{label}_{op}_bytes_total"), bytes);
        self.telemetry
            .counter_add(&format!("revelio_storage_{label}_{op}s_total"), 1);
        let ms = us / 1000.0;
        self.telemetry
            .observe(&format!("revelio_storage_{label}_op_ms"), ms);
        ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_net::clock::SimClock;

    #[test]
    fn probe_charges_clock_and_counts() {
        let clock = SimClock::new();
        let t = Telemetry::new(clock.clone());
        // 1000 ns/byte read: 4096 bytes → 4096 µs.
        let probe = DeviceProbe::new(t.clone(), "crypt", 1000.0, 2000.0);
        probe.on_read(4096);
        assert_eq!(clock.now_us(), 4096);
        probe.on_write(512);
        assert_eq!(clock.now_us(), 4096 + 1024);
        assert_eq!(t.counter("revelio_storage_crypt_read_bytes_total"), 4096);
        assert_eq!(t.counter("revelio_storage_crypt_reads_total"), 1);
        assert_eq!(t.counter("revelio_storage_crypt_write_bytes_total"), 512);
        assert_eq!(t.counter("revelio_storage_crypt_writes_total"), 1);
        let hist = t.histogram("revelio_storage_crypt_op_ms").unwrap();
        assert_eq!(hist.count(), 2);
    }
}

//! Hermetic (bazel-style) build steps: outputs as a pure function of
//! declared inputs (paper §5.1.1, leveraging "bazel and its hermeticity").
//!
//! A [`BuildStep`] declares its inputs (sources, tool identity, environment
//! variables it reads) and a pure transform. Running it twice — or on
//! another machine — yields bit-identical output, and the step's *action
//! digest* (hash of all declared inputs) doubles as a cache key. The
//! [`NonHermeticContext`] variant leaks ambient state (wall-clock time,
//! hostname) into the output, modelling the broken builds the paper's
//! pipeline eliminates; tests assert the two behave differently.

use std::collections::BTreeMap;

use revelio_crypto::sha2::Sha256;

/// The ambient machine state a *non*-hermetic build can observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonHermeticContext {
    /// Wall-clock seconds at build time.
    pub wall_clock: u64,
    /// Hostname of the build machine.
    pub hostname: String,
    /// Absolute workspace path (leaks into debug info in real builds).
    pub build_path: String,
}

/// A declared, hermetic build step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildStep {
    /// Step name, e.g. `"compile-service"`.
    pub name: String,
    /// Declared source inputs: name → content.
    pub sources: BTreeMap<String, Vec<u8>>,
    /// The toolchain identity (compiler version string, flags).
    pub toolchain: String,
    /// Environment variables the step is allowed to see.
    pub env: BTreeMap<String, String>,
}

impl BuildStep {
    /// Creates a step with no sources or environment.
    #[must_use]
    pub fn new(name: &str, toolchain: &str) -> Self {
        BuildStep {
            name: name.to_owned(),
            sources: BTreeMap::new(),
            toolchain: toolchain.to_owned(),
            env: BTreeMap::new(),
        }
    }

    /// Declares a source input.
    pub fn source(&mut self, name: &str, content: &[u8]) -> &mut Self {
        self.sources.insert(name.to_owned(), content.to_vec());
        self
    }

    /// Declares an environment variable.
    pub fn env_var(&mut self, key: &str, value: &str) -> &mut Self {
        self.env.insert(key.to_owned(), value.to_owned());
        self
    }

    /// The action digest: a content hash of *every* declared input. Two
    /// steps with equal digests produce equal outputs — the foundation of
    /// remote caching and of reproducibility audits.
    #[must_use]
    pub fn action_digest(&self) -> [u8; 32] {
        let mut w = revelio_crypto::wire::ByteWriter::new();
        w.put_str(&self.name);
        w.put_str(&self.toolchain);
        w.put_u32(self.sources.len() as u32);
        for (name, content) in &self.sources {
            w.put_str(name);
            w.put_var_bytes(content);
        }
        w.put_u32(self.env.len() as u32);
        for (k, v) in &self.env {
            w.put_str(k);
            w.put_str(v);
        }
        Sha256::digest(w.into_bytes())
    }

    /// Runs the step hermetically: the output is derived from the action
    /// digest and sources only.
    ///
    /// (The simulated "compiler" concatenates a header derived from the
    /// action digest with the transformed sources — a stand-in with the
    /// right purity properties.)
    #[must_use]
    pub fn run_hermetic(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"ELF\x7f");
        out.extend_from_slice(&self.action_digest());
        for (name, content) in &self.sources {
            out.extend_from_slice(&Sha256::digest(name.as_bytes()));
            out.extend_from_slice(&Sha256::digest(content));
        }
        out
    }

    /// Runs the step with ambient leakage: the output additionally embeds
    /// the wall clock, hostname and build path — a classic non-reproducible
    /// compiler invocation (think `__DATE__`, debug paths).
    #[must_use]
    pub fn run_non_hermetic(&self, ambient: &NonHermeticContext) -> Vec<u8> {
        let mut out = self.run_hermetic();
        out.extend_from_slice(&ambient.wall_clock.to_le_bytes());
        out.extend_from_slice(ambient.hostname.as_bytes());
        out.extend_from_slice(ambient.build_path.as_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> BuildStep {
        let mut s = BuildStep::new("compile-proxy", "rustc 1.70.0 --release");
        s.source("main.rs", b"fn main() {}");
        s.source("lib.rs", b"pub fn serve() {}");
        s.env_var("LANG", "C.UTF-8");
        s
    }

    #[test]
    fn hermetic_runs_are_bit_identical() {
        assert_eq!(step().run_hermetic(), step().run_hermetic());
    }

    #[test]
    fn non_hermetic_runs_drift() {
        let a = step().run_non_hermetic(&NonHermeticContext {
            wall_clock: 1_690_000_000,
            hostname: "ci-runner-1".into(),
            build_path: "/home/ci/ws".into(),
        });
        let b = step().run_non_hermetic(&NonHermeticContext {
            wall_clock: 1_690_000_007,
            hostname: "ci-runner-2".into(),
            build_path: "/home/ci/ws".into(),
        });
        assert_ne!(a, b);
    }

    #[test]
    fn action_digest_covers_sources() {
        let a = step().action_digest();
        let mut s = step();
        s.source("main.rs", b"fn main() { backdoor(); }");
        assert_ne!(a, s.action_digest());
    }

    #[test]
    fn action_digest_covers_toolchain_and_env() {
        let base = step().action_digest();
        let other_toolchain = {
            let mut s = step();
            s.toolchain = "rustc 1.71.0 --release".into();
            s.action_digest()
        };
        let other_env = {
            let mut s = step();
            s.env_var("LANG", "en_US.UTF-8");
            s.action_digest()
        };
        assert_ne!(base, other_toolchain);
        assert_ne!(base, other_env);
    }

    #[test]
    fn source_order_is_irrelevant() {
        let mut a = BuildStep::new("s", "t");
        a.source("x", b"1").source("y", b"2");
        let mut b = BuildStep::new("s", "t");
        b.source("y", b"2").source("x", b"1");
        assert_eq!(a.action_digest(), b.action_digest());
    }

    #[test]
    fn equal_digest_implies_equal_output() {
        let a = step();
        let b = step();
        assert_eq!(a.action_digest(), b.action_digest());
        assert_eq!(a.run_hermetic(), b.run_hermetic());
    }
}

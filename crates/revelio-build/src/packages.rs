//! Package installation: the floating-version problem and pinned base
//! images (paper §5.1.1).
//!
//! "Application packages can be another source of [non-determinism] since
//! the package versions can change on every invocation of `apt-get` […] To
//! tackle this problem instead of installing the packages from scratch
//! during every build, we pull a published image instead." This module
//! models both paths so the difference is testable: installing `latest`
//! from a drifting [`PackageRegistry`] changes the tree hash when the
//! registry updates; installing a pinned [`BaseImage`] never does.

use std::collections::BTreeMap;

use revelio_crypto::sha2::Sha256;

use crate::fstree::FsTree;
use crate::BuildError;

/// One published version of a package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageVersion {
    /// Version string, e.g. `"1.18.0-0ubuntu1.4"`.
    pub version: String,
    /// Files the package installs: `(path, content, mode)`.
    pub files: Vec<(String, Vec<u8>, u16)>,
}

/// A mutable package archive, like the Ubuntu mirror `apt-get` hits.
///
/// Versions are kept in publication order; "latest" is whatever was pushed
/// most recently — which is exactly why unpinned installs are not
/// reproducible.
#[derive(Debug, Clone, Default)]
pub struct PackageRegistry {
    packages: BTreeMap<String, Vec<PackageVersion>>,
}

impl PackageRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        PackageRegistry::default()
    }

    /// Publishes a new version of `name` (becomes the new latest).
    pub fn publish(&mut self, name: &str, version: PackageVersion) {
        self.packages
            .entry(name.to_owned())
            .or_default()
            .push(version);
    }

    /// Installs the latest version of `name` into `tree` — the
    /// non-reproducible path.
    ///
    /// # Errors
    ///
    /// [`BuildError::PackageNotFound`] when the package does not exist.
    pub fn install_latest(&self, name: &str, tree: &mut FsTree) -> Result<String, BuildError> {
        let versions = self
            .packages
            .get(name)
            .filter(|v| !v.is_empty())
            .ok_or_else(|| BuildError::PackageNotFound {
                name: name.to_owned(),
                version: None,
            })?;
        let latest = versions.last().expect("nonempty");
        Self::install(latest, tree)?;
        Ok(latest.version.clone())
    }

    /// Installs an exact version — reproducible, but still depends on the
    /// registry being reachable and honest.
    ///
    /// # Errors
    ///
    /// [`BuildError::PackageNotFound`] when the name/version is absent.
    pub fn install_pinned(
        &self,
        name: &str,
        version: &str,
        tree: &mut FsTree,
    ) -> Result<(), BuildError> {
        let pkg = self
            .packages
            .get(name)
            .and_then(|vs| vs.iter().find(|v| v.version == version))
            .ok_or_else(|| BuildError::PackageNotFound {
                name: name.to_owned(),
                version: Some(version.to_owned()),
            })?;
        Self::install(pkg, tree)
    }

    fn install(pkg: &PackageVersion, tree: &mut FsTree) -> Result<(), BuildError> {
        for (path, content, mode) in &pkg.files {
            tree.add_file(path, content.clone(), *mode)?;
        }
        Ok(())
    }
}

/// A published, immutable base image: a snapshot of installed packages with
/// a content digest — the paper's "pull a published image instead",
/// produced in a protected CI environment and pushed to a registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaseImage {
    /// Image name, e.g. `"ubuntu-20.04-revelio-base"`.
    pub name: String,
    /// Resolved package list `(name, version)` recorded at snapshot time.
    pub manifest: Vec<(String, String)>,
    /// The frozen filesystem layer.
    tree: FsTree,
    /// Content digest clients pin (like a Docker image digest).
    digest: [u8; 32],
}

impl BaseImage {
    /// Snapshots `packages` (resolved to their current latest versions in
    /// `registry`) into an immutable layer.
    ///
    /// # Errors
    ///
    /// [`BuildError::PackageNotFound`] when any package is absent.
    pub fn snapshot(
        name: &str,
        registry: &PackageRegistry,
        packages: &[&str],
    ) -> Result<Self, BuildError> {
        let mut tree = FsTree::new();
        let mut manifest = Vec::with_capacity(packages.len());
        for pkg in packages {
            let version = registry.install_latest(pkg, &mut tree)?;
            manifest.push(((*pkg).to_owned(), version));
        }
        let digest = Self::compute_digest(name, &tree);
        Ok(BaseImage {
            name: name.to_owned(),
            manifest,
            tree,
            digest,
        })
    }

    fn compute_digest(name: &str, tree: &FsTree) -> [u8; 32] {
        let mut bytes = name.as_bytes().to_vec();
        bytes.push(0);
        bytes.extend_from_slice(&tree.content_hash());
        Sha256::digest(&bytes)
    }

    /// The pinnable content digest.
    #[must_use]
    pub fn digest(&self) -> [u8; 32] {
        self.digest
    }

    /// Overlays the base layer onto `tree` after re-checking the digest the
    /// builder pinned (an altered registry image is detected here —
    /// integrity protection for the published image, §5.1.1).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::PackageNotFound`] naming the base image when
    /// the pinned digest does not match the image contents.
    pub fn apply_pinned(
        &self,
        pinned_digest: &[u8; 32],
        tree: &mut FsTree,
    ) -> Result<(), BuildError> {
        if !revelio_crypto::ct::eq(&self.digest, pinned_digest) {
            return Err(BuildError::PackageNotFound {
                name: format!("base image {} (digest mismatch)", self.name),
                version: None,
            });
        }
        tree.overlay(&self.tree);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> PackageRegistry {
        let mut r = PackageRegistry::new();
        r.publish(
            "nginx",
            PackageVersion {
                version: "1.18.0".into(),
                files: vec![("/usr/sbin/nginx".into(), b"nginx-1.18".to_vec(), 0o755)],
            },
        );
        r.publish(
            "openssl",
            PackageVersion {
                version: "1.1.1f".into(),
                files: vec![("/usr/bin/openssl".into(), b"ssl-1.1.1f".to_vec(), 0o755)],
            },
        );
        r
    }

    #[test]
    fn latest_install_drifts_when_registry_updates() {
        let mut reg = registry();
        let mut before = FsTree::new();
        reg.install_latest("nginx", &mut before).unwrap();

        // The mirror publishes a security update between the two builds.
        reg.publish(
            "nginx",
            PackageVersion {
                version: "1.18.1".into(),
                files: vec![("/usr/sbin/nginx".into(), b"nginx-1.18.1".to_vec(), 0o755)],
            },
        );
        let mut after = FsTree::new();
        reg.install_latest("nginx", &mut after).unwrap();
        assert_ne!(before.content_hash(), after.content_hash());
    }

    #[test]
    fn pinned_install_is_stable_across_updates() {
        let mut reg = registry();
        let mut before = FsTree::new();
        reg.install_pinned("nginx", "1.18.0", &mut before).unwrap();
        reg.publish(
            "nginx",
            PackageVersion {
                version: "1.18.1".into(),
                files: vec![],
            },
        );
        let mut after = FsTree::new();
        reg.install_pinned("nginx", "1.18.0", &mut after).unwrap();
        assert_eq!(before.content_hash(), after.content_hash());
    }

    #[test]
    fn missing_package_is_reported() {
        let reg = registry();
        let mut t = FsTree::new();
        assert!(matches!(
            reg.install_latest("ghost", &mut t),
            Err(BuildError::PackageNotFound { .. })
        ));
        assert!(reg.install_pinned("nginx", "9.9", &mut t).is_err());
    }

    #[test]
    fn base_image_freezes_versions() {
        let mut reg = registry();
        let base = BaseImage::snapshot("ubuntu-base", &reg, &["nginx", "openssl"]).unwrap();
        let digest = base.digest();
        // Registry moves on; the snapshot does not.
        reg.publish(
            "nginx",
            PackageVersion {
                version: "2.0".into(),
                files: vec![],
            },
        );
        let mut a = FsTree::new();
        base.apply_pinned(&digest, &mut a).unwrap();
        let mut b = FsTree::new();
        base.apply_pinned(&digest, &mut b).unwrap();
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(base.manifest[0], ("nginx".to_owned(), "1.18.0".to_owned()));
    }

    #[test]
    fn tampered_base_image_detected_by_digest() {
        let reg = registry();
        let base = BaseImage::snapshot("ubuntu-base", &reg, &["nginx"]).unwrap();
        let honest_digest = base.digest();

        // A registry attacker swaps the image contents behind the name.
        let mut evil_reg = registry();
        evil_reg.publish(
            "nginx",
            PackageVersion {
                version: "1.18.0-backdoored".into(),
                files: vec![("/usr/sbin/nginx".into(), b"backdoor".to_vec(), 0o755)],
            },
        );
        let evil = BaseImage::snapshot("ubuntu-base", &evil_reg, &["nginx"]).unwrap();
        let mut t = FsTree::new();
        assert!(evil.apply_pinned(&honest_digest, &mut t).is_err());
    }

    #[test]
    fn digest_depends_on_name_and_content() {
        let reg = registry();
        let a = BaseImage::snapshot("a", &reg, &["nginx"]).unwrap();
        let b = BaseImage::snapshot("b", &reg, &["nginx"]).unwrap();
        assert_ne!(a.digest(), b.digest());
    }
}

//! Error type for the build pipeline.

use std::error::Error;
use std::fmt;

use revelio_crypto::wire::WireError;
use revelio_storage::StorageError;

/// Errors surfaced while building images.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A path was malformed (must be absolute, no `..`, no trailing `/`).
    InvalidPath(String),
    /// A path already exists with a conflicting entry type.
    PathConflict(String),
    /// A referenced package or version does not exist in the registry.
    PackageNotFound {
        /// Requested package name.
        name: String,
        /// Requested version, if pinned.
        version: Option<String>,
    },
    /// The assembled content exceeded the disk geometry in the spec.
    ImageTooLarge {
        /// Bytes required.
        needed: u64,
        /// Bytes available.
        available: u64,
    },
    /// Underlying storage failure while assembling the disk.
    Storage(StorageError),
    /// Malformed serialized build artifact.
    Wire(WireError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidPath(p) => write!(f, "invalid path {p:?}"),
            BuildError::PathConflict(p) => write!(f, "conflicting entry at {p:?}"),
            BuildError::PackageNotFound { name, version } => match version {
                Some(v) => write!(f, "package {name} version {v} not in registry"),
                None => write!(f, "package {name} not in registry"),
            },
            BuildError::ImageTooLarge { needed, available } => {
                write!(f, "image needs {needed} bytes but disk offers {available}")
            }
            BuildError::Storage(e) => write!(f, "storage error: {e}"),
            BuildError::Wire(e) => write!(f, "wire format error: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Storage(e) => Some(e),
            BuildError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for BuildError {
    fn from(e: StorageError) -> Self {
        BuildError::Storage(e)
    }
}

impl From<WireError> for BuildError {
    fn from(e: WireError) -> Self {
        BuildError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        assert!(BuildError::InvalidPath("a/../b".into())
            .to_string()
            .contains("a/../b"));
        let e = BuildError::PackageNotFound {
            name: "nginx".into(),
            version: Some("1.2".into()),
        };
        assert!(e.to_string().contains("nginx"));
        assert!(e.to_string().contains("1.2"));
    }
}

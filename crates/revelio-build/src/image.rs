//! Final disk assembly: from a filesystem tree to a bootable, attestable
//! VM image (paper Fig. 3).
//!
//! The builder scrubs the rootfs, lays out the disk (partition table,
//! rootfs, verity metadata, data partition), generates the dm-verity hash
//! tree, and emits the kernel/initrd/cmdline triple whose hashes the
//! measured-direct-boot firmware will verify. Building the same
//! [`ImageSpec`] twice yields bit-identical artifacts and therefore the
//! same launch measurement — requirement **F5**.

use std::sync::Arc;

use revelio_storage::block::{write_at, BlockDevice, MemBlockDevice};
use revelio_storage::partition::{PartitionKind, PartitionTable, PartitionView};
use revelio_storage::verity::{VerityParams, VerityTree};

use crate::artifacts::{InitConfig, KernelCmdline, KernelSpec};
use crate::fstree::FsTree;
use crate::scrub::{scrub, ScrubPolicy};
use crate::BuildError;

/// Declarative description of a VM image build.
#[derive(Debug, Clone)]
pub struct ImageSpec {
    /// Image name (goes into logs and registry entries, not the bits).
    pub name: String,
    /// The root filesystem contents (pre-scrub).
    pub rootfs: FsTree,
    /// Scrub policy applied before archiving.
    pub scrub_policy: ScrubPolicy,
    /// Kernel to ship.
    pub kernel: KernelSpec,
    /// Init behaviour (services, crypt volume, network policy).
    pub init: InitConfig,
    /// Disk block size in bytes.
    pub block_size: usize,
    /// Size of the mutable data partition, in blocks.
    pub data_blocks: u64,
    /// dm-verity salt.
    pub verity_salt: [u8; 32],
}

impl ImageSpec {
    /// A spec with the workspace defaults (4 KiB blocks, 64-block data
    /// partition, default scrub policy and init config).
    #[must_use]
    pub fn new(name: &str, rootfs: FsTree) -> Self {
        ImageSpec {
            name: name.to_owned(),
            rootfs,
            scrub_policy: ScrubPolicy::default(),
            kernel: KernelSpec::default(),
            init: InitConfig::default(),
            block_size: 4096,
            data_blocks: 64,
            verity_salt: [0x1e; 32],
        }
    }
}

/// A built image: everything the hypervisor needs to launch the VM, plus
/// the root hash auditors reproduce.
pub struct VmImage {
    /// Image name (from the spec).
    pub name: String,
    /// Kernel blob (hashed into the firmware hash table).
    pub kernel: Vec<u8>,
    /// Initrd blob (hashed into the firmware hash table).
    pub initrd: Vec<u8>,
    /// Rendered kernel command line, carrying the verity root hash.
    pub cmdline: String,
    /// The assembled disk.
    pub disk: Arc<MemBlockDevice>,
    /// dm-verity root hash over the rootfs partition.
    pub root_hash: [u8; 32],
    /// Blocks occupied by the rootfs partition.
    pub rootfs_blocks: u64,
}

impl std::fmt::Debug for VmImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VmImage")
            .field("name", &self.name)
            .field("root_hash", &revelio_crypto::hex::encode(self.root_hash))
            .field("rootfs_blocks", &self.rootfs_blocks)
            .finish_non_exhaustive()
    }
}

impl VmImage {
    /// Convenience: the partition views of the assembled disk.
    ///
    /// # Errors
    ///
    /// Propagates storage errors (a well-formed image always opens).
    pub fn partitions(&self) -> Result<Vec<PartitionView>, BuildError> {
        Ok(PartitionTable::open(
            Arc::clone(&self.disk) as Arc<dyn BlockDevice>
        )?)
    }
}

/// Reads the rootfs tree back from a (typically verity-mounted) rootfs
/// partition device — used by the boot sequence to materialize `/`.
///
/// # Errors
///
/// Returns [`BuildError::Wire`] / [`BuildError::Storage`] when the device
/// does not hold a valid rootfs payload (or verity rejects the reads).
pub fn read_rootfs(device: &dyn BlockDevice) -> Result<FsTree, BuildError> {
    let len_bytes = revelio_storage::block::read_at(device, 0, 8)?;
    let len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes"));
    if len == 0 || len + 8 > device.len_bytes() {
        return Err(BuildError::Storage(
            revelio_storage::StorageError::BadSuperblock(format!(
                "rootfs payload length {len} does not fit device"
            )),
        ));
    }
    let archive = revelio_storage::block::read_at(device, 8, len as usize)?;
    FsTree::from_archive(&archive)
}

/// Runs the full build pipeline for `spec`.
///
/// # Errors
///
/// Returns [`BuildError`] when the rootfs archive or verity tree cannot be
/// laid out (degenerate geometries) or any path was invalid.
pub fn build_image(spec: &ImageSpec) -> Result<VmImage, BuildError> {
    // 1. Scrub a copy of the rootfs and archive it canonically. The
    //    partition stores `len || archive` so readers can strip padding.
    let mut rootfs = spec.rootfs.clone();
    scrub(&mut rootfs, &spec.scrub_policy);
    let archive = rootfs.to_archive();
    let mut rootfs_payload = (archive.len() as u64).to_le_bytes().to_vec();
    rootfs_payload.extend_from_slice(&archive);

    let bs = spec.block_size;
    let rootfs_blocks = (rootfs_payload.len() as u64).div_ceil(bs as u64).max(1);

    // 2. Compute the verity tree over the (padded) rootfs partition image.
    let staged_rootfs = MemBlockDevice::new(bs, rootfs_blocks);
    write_at(&staged_rootfs, 0, &rootfs_payload)?;
    let params = VerityParams {
        hash_block_size: bs,
        salt: spec.verity_salt,
    };
    let tree = VerityTree::build(&staged_rootfs, params)?;
    let meta_blocks = (tree.to_bytes().len() as u64 + 8)
        .div_ceil(bs as u64)
        .max(1);

    // 3. Lay out the disk.
    let total_blocks = 1 + rootfs_blocks + meta_blocks + spec.data_blocks.max(2);
    let disk = Arc::new(MemBlockDevice::new(bs, total_blocks));
    let mut table = PartitionTable::new();
    table.add("rootfs", PartitionKind::RootFs, rootfs_blocks)?;
    table.add("verity", PartitionKind::VerityMeta, meta_blocks)?;
    table.add("data", PartitionKind::Data, spec.data_blocks.max(2))?;
    let views = table.apply(Arc::clone(&disk) as Arc<dyn BlockDevice>)?;

    // 4. Write rootfs payload and verity metadata.
    write_at(views[0].device.as_ref(), 0, &rootfs_payload)?;
    tree.write_to_device(views[1].device.as_ref())?;

    // 5. Render boot artifacts; the cmdline pins the root hash.
    let cmdline = KernelCmdline {
        verity_root_hash: Some(tree.root_hash()),
        extra: Vec::new(),
    }
    .render();

    Ok(VmImage {
        name: spec.name.clone(),
        kernel: spec.kernel.to_blob(),
        initrd: spec.init.to_initrd(),
        cmdline,
        disk,
        root_hash: tree.root_hash(),
        rootfs_blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_storage::verity::VerityDevice;

    fn sample_rootfs() -> FsTree {
        let mut t = FsTree::new();
        t.add_file("/usr/sbin/nginx", vec![7u8; 10_000], 0o755)
            .unwrap();
        t.add_file("/etc/nginx/nginx.conf", b"server {}".to_vec(), 0o644)
            .unwrap();
        t.add_file_with_mtime("/etc/build-stamp", b"stamp".to_vec(), 0o644, 1_690_000_000)
            .unwrap();
        t
    }

    #[test]
    fn builds_are_bit_identical() {
        let spec = ImageSpec::new("cp", sample_rootfs());
        let a = build_image(&spec).unwrap();
        let b = build_image(&spec).unwrap();
        assert_eq!(a.root_hash, b.root_hash);
        assert_eq!(a.kernel, b.kernel);
        assert_eq!(a.initrd, b.initrd);
        assert_eq!(a.cmdline, b.cmdline);
    }

    #[test]
    fn different_rootfs_different_root_hash() {
        let a = build_image(&ImageSpec::new("a", sample_rootfs())).unwrap();
        let mut other = sample_rootfs();
        other
            .add_file("/usr/sbin/backdoor", b"evil".to_vec(), 0o755)
            .unwrap();
        let b = build_image(&ImageSpec::new("b", other)).unwrap();
        assert_ne!(a.root_hash, b.root_hash);
    }

    #[test]
    fn scrubbing_makes_timestamped_builds_converge() {
        let mut t1 = sample_rootfs();
        t1.add_file_with_mtime("/app", b"bin".to_vec(), 0o755, 111)
            .unwrap();
        let mut t2 = sample_rootfs();
        t2.add_file_with_mtime("/app", b"bin".to_vec(), 0o755, 222)
            .unwrap();
        let a = build_image(&ImageSpec::new("x", t1)).unwrap();
        let b = build_image(&ImageSpec::new("x", t2)).unwrap();
        assert_eq!(a.root_hash, b.root_hash);
    }

    #[test]
    fn cmdline_carries_root_hash() {
        let image = build_image(&ImageSpec::new("cp", sample_rootfs())).unwrap();
        let parsed = KernelCmdline::parse(&image.cmdline).unwrap();
        assert_eq!(parsed.verity_root_hash, Some(image.root_hash));
    }

    #[test]
    fn rootfs_partition_verifies_and_decodes() {
        let image = build_image(&ImageSpec::new("cp", sample_rootfs())).unwrap();
        let views = image.partitions().unwrap();
        assert_eq!(views[0].partition.kind, PartitionKind::RootFs);

        // Read the stored verity metadata and mount the rootfs through it —
        // exactly what the boot sequence does.
        let tree = VerityTree::read_from_device(views[1].device.as_ref()).unwrap();
        assert_eq!(tree.root_hash(), image.root_hash);
        let verity =
            VerityDevice::open(Arc::clone(&views[0].device), tree, &image.root_hash).unwrap();
        let mounted = read_rootfs(&verity).unwrap();
        // The mounted tree equals the scrubbed input tree.
        assert!(mounted.get("/usr/sbin/nginx").is_some());
        assert!(mounted.get("/etc/build-stamp").is_some()); // survives, mtime squashed
        let mut expected = sample_rootfs();
        scrub(&mut expected, &ScrubPolicy::default());
        assert_eq!(mounted, expected);
    }

    #[test]
    fn data_partition_present_and_writable() {
        let image = build_image(&ImageSpec::new("cp", sample_rootfs())).unwrap();
        let views = image.partitions().unwrap();
        let data = &views[2];
        assert_eq!(data.partition.kind, PartitionKind::Data);
        data.device.write_block(0, &vec![9u8; 4096]).unwrap();
    }

    #[test]
    fn tampering_with_disk_after_build_breaks_verity() {
        let image = build_image(&ImageSpec::new("cp", sample_rootfs())).unwrap();
        let views = image.partitions().unwrap();
        let rootfs_first_block = views[0].partition.first_block;
        image.disk.corrupt_bit(rootfs_first_block * 4096 + 123, 1);

        let tree = VerityTree::read_from_device(views[1].device.as_ref()).unwrap();
        let verity =
            VerityDevice::open(Arc::clone(&views[0].device), tree, &image.root_hash).unwrap();
        let mut buf = vec![0u8; 4096];
        assert!(matches!(
            verity.read_block(0, &mut buf),
            Err(revelio_storage::StorageError::IntegrityViolation { block: 0 })
        ));
    }
}

//! A deterministic in-memory filesystem tree with a canonical archive
//! encoding.
//!
//! The tree is the unit everything else operates on: packages install files
//! into it, the scrubber deletes non-deterministic paths from it, and the
//! image assembler serializes it into the rootfs partition. Entries live in
//! a `BTreeMap`, so iteration (and therefore serialization) order is a
//! function of content alone — the "file ordering" non-determinism source
//! the paper's build scripts have to remediate is structurally absent here,
//! while *timestamps and machine IDs* are still representable so the
//! scrubber has real work to do.

use std::collections::BTreeMap;

use revelio_crypto::sha2::Sha256;
use revelio_crypto::wire::{ByteReader, ByteWriter};

use crate::BuildError;

/// One filesystem entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsEntry {
    /// A regular file.
    File {
        /// File contents.
        content: Vec<u8>,
        /// Unix permission bits.
        mode: u16,
        /// Modification time (seconds); a non-zero value is a
        /// reproducibility hazard the scrubber squashes.
        mtime: u64,
    },
    /// A directory (explicit, so empty directories are representable).
    Dir {
        /// Unix permission bits.
        mode: u16,
    },
    /// A symbolic link.
    Symlink {
        /// Link target path.
        target: String,
    },
}

/// A whole filesystem tree, keyed by absolute path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsTree {
    entries: BTreeMap<String, FsEntry>,
}

fn validate_path(path: &str) -> Result<(), BuildError> {
    let ok = path.starts_with('/')
        && !path.contains("//")
        && (path == "/" || !path.ends_with('/'))
        && !path.split('/').any(|seg| seg == "." || seg == "..");
    if ok {
        Ok(())
    } else {
        Err(BuildError::InvalidPath(path.to_owned()))
    }
}

impl FsTree {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        FsTree::default()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the tree has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in canonical (path-sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FsEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Looks up an entry.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<&FsEntry> {
        self.entries.get(path)
    }

    /// Adds a regular file with `mtime = 0` (build-reproducible by default;
    /// use [`FsTree::add_file_with_mtime`] to model a timestamping tool).
    ///
    /// # Errors
    ///
    /// [`BuildError::InvalidPath`] for malformed paths,
    /// [`BuildError::PathConflict`] when a directory already sits there.
    pub fn add_file(
        &mut self,
        path: &str,
        content: Vec<u8>,
        mode: u16,
    ) -> Result<&mut Self, BuildError> {
        self.add_file_with_mtime(path, content, mode, 0)
    }

    /// Adds a regular file with an explicit modification time.
    ///
    /// # Errors
    ///
    /// As for [`FsTree::add_file`].
    pub fn add_file_with_mtime(
        &mut self,
        path: &str,
        content: Vec<u8>,
        mode: u16,
        mtime: u64,
    ) -> Result<&mut Self, BuildError> {
        validate_path(path)?;
        if matches!(self.entries.get(path), Some(FsEntry::Dir { .. })) {
            return Err(BuildError::PathConflict(path.to_owned()));
        }
        self.ensure_parents(path);
        self.entries.insert(
            path.to_owned(),
            FsEntry::File {
                content,
                mode,
                mtime,
            },
        );
        Ok(self)
    }

    /// Adds (or re-modes) a directory.
    ///
    /// # Errors
    ///
    /// [`BuildError::InvalidPath`] / [`BuildError::PathConflict`].
    pub fn add_dir(&mut self, path: &str, mode: u16) -> Result<&mut Self, BuildError> {
        validate_path(path)?;
        if matches!(
            self.entries.get(path),
            Some(FsEntry::File { .. } | FsEntry::Symlink { .. })
        ) {
            return Err(BuildError::PathConflict(path.to_owned()));
        }
        self.ensure_parents(path);
        self.entries.insert(path.to_owned(), FsEntry::Dir { mode });
        Ok(self)
    }

    /// Adds a symlink.
    ///
    /// # Errors
    ///
    /// [`BuildError::InvalidPath`] / [`BuildError::PathConflict`].
    pub fn add_symlink(&mut self, path: &str, target: &str) -> Result<&mut Self, BuildError> {
        validate_path(path)?;
        if matches!(self.entries.get(path), Some(FsEntry::Dir { .. })) {
            return Err(BuildError::PathConflict(path.to_owned()));
        }
        self.ensure_parents(path);
        self.entries.insert(
            path.to_owned(),
            FsEntry::Symlink {
                target: target.to_owned(),
            },
        );
        Ok(self)
    }

    fn ensure_parents(&mut self, path: &str) {
        let mut prefix = String::new();
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        for seg in &segments[..segments.len().saturating_sub(1)] {
            prefix.push('/');
            prefix.push_str(seg);
            self.entries
                .entry(prefix.clone())
                .or_insert(FsEntry::Dir { mode: 0o755 });
        }
    }

    /// Removes one entry (and, for a directory, everything below it).
    /// Returns the number of removed entries.
    pub fn remove_subtree(&mut self, path: &str) -> usize {
        let prefix = format!("{path}/");
        let doomed: Vec<String> = self
            .entries
            .keys()
            .filter(|k| *k == path || k.starts_with(&prefix))
            .cloned()
            .collect();
        for k in &doomed {
            self.entries.remove(k);
        }
        doomed.len()
    }

    /// Removes every entry whose path matches `predicate`. Returns the
    /// number removed.
    pub fn remove_matching(&mut self, mut predicate: impl FnMut(&str) -> bool) -> usize {
        let doomed: Vec<String> = self
            .entries
            .keys()
            .filter(|k| predicate(k))
            .cloned()
            .collect();
        for k in &doomed {
            self.entries.remove(k);
        }
        doomed.len()
    }

    /// Applies `f` to every file entry (the scrubber's timestamp squash).
    pub fn for_each_file_mut(&mut self, mut f: impl FnMut(&str, &mut Vec<u8>, &mut u16, &mut u64)) {
        for (path, entry) in &mut self.entries {
            if let FsEntry::File {
                content,
                mode,
                mtime,
            } = entry
            {
                f(path, content, mode, mtime);
            }
        }
    }

    /// Merges `other` into `self`, overwriting on conflicts (layered
    /// base-image semantics: later layers win).
    pub fn overlay(&mut self, other: &FsTree) {
        for (path, entry) in &other.entries {
            self.entries.insert(path.clone(), entry.clone());
        }
    }

    /// Canonical archive encoding: sorted paths, tagged entries.
    #[must_use]
    pub fn to_archive(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(b"RVFS");
        w.put_u32(self.entries.len() as u32);
        for (path, entry) in &self.entries {
            w.put_str(path);
            match entry {
                FsEntry::File {
                    content,
                    mode,
                    mtime,
                } => {
                    w.put_u8(0);
                    w.put_u16(*mode);
                    w.put_u64(*mtime);
                    w.put_var_bytes(content);
                }
                FsEntry::Dir { mode } => {
                    w.put_u8(1);
                    w.put_u16(*mode);
                }
                FsEntry::Symlink { target } => {
                    w.put_u8(2);
                    w.put_str(target);
                }
            }
        }
        w.into_bytes()
    }

    /// Decodes an archive produced by [`FsTree::to_archive`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Wire`] on malformed input.
    pub fn from_archive(bytes: &[u8]) -> Result<Self, BuildError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_array::<4>()?;
        if &magic != b"RVFS" {
            return Err(BuildError::Wire(
                revelio_crypto::wire::WireError::UnknownTag(magic[0]),
            ));
        }
        let n = r.get_u32()?;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let path = r.get_str()?;
            let entry = match r.get_u8()? {
                0 => {
                    let mode = r.get_u16()?;
                    let mtime = r.get_u64()?;
                    let content = r.get_var_bytes()?.to_vec();
                    FsEntry::File {
                        content,
                        mode,
                        mtime,
                    }
                }
                1 => FsEntry::Dir { mode: r.get_u16()? },
                2 => FsEntry::Symlink {
                    target: r.get_str()?,
                },
                t => {
                    return Err(BuildError::Wire(
                        revelio_crypto::wire::WireError::UnknownTag(t),
                    ))
                }
            };
            entries.insert(path, entry);
        }
        r.finish()?;
        Ok(FsTree { entries })
    }

    /// SHA-256 over the canonical archive — the tree's identity.
    #[must_use]
    pub fn content_hash(&self) -> [u8; 32] {
        Sha256::digest(self.to_archive())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insertion_order_does_not_matter() {
        let mut a = FsTree::new();
        a.add_file("/b", b"2".to_vec(), 0o644).unwrap();
        a.add_file("/a", b"1".to_vec(), 0o644).unwrap();
        let mut b = FsTree::new();
        b.add_file("/a", b"1".to_vec(), 0o644).unwrap();
        b.add_file("/b", b"2".to_vec(), 0o644).unwrap();
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn mtime_changes_hash() {
        // This is the nondeterminism the scrubber exists to kill.
        let mut a = FsTree::new();
        a.add_file_with_mtime("/f", b"x".to_vec(), 0o644, 1_690_000_000)
            .unwrap();
        let mut b = FsTree::new();
        b.add_file_with_mtime("/f", b"x".to_vec(), 0o644, 1_690_000_001)
            .unwrap();
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn parents_are_created_implicitly() {
        let mut t = FsTree::new();
        t.add_file("/usr/local/bin/tool", b"x".to_vec(), 0o755)
            .unwrap();
        assert!(matches!(t.get("/usr"), Some(FsEntry::Dir { .. })));
        assert!(matches!(t.get("/usr/local/bin"), Some(FsEntry::Dir { .. })));
    }

    #[test]
    fn invalid_paths_rejected() {
        let mut t = FsTree::new();
        for bad in ["relative", "/a/../b", "/a//b", "/trailing/", "/."] {
            assert!(
                matches!(
                    t.add_file(bad, Vec::new(), 0o644),
                    Err(BuildError::InvalidPath(_))
                ),
                "{bad} should be invalid"
            );
        }
    }

    #[test]
    fn file_over_dir_conflicts() {
        let mut t = FsTree::new();
        t.add_dir("/etc", 0o755).unwrap();
        assert!(matches!(
            t.add_file("/etc", Vec::new(), 0o644),
            Err(BuildError::PathConflict(_))
        ));
    }

    #[test]
    fn remove_subtree_removes_children() {
        let mut t = FsTree::new();
        t.add_file("/var/lib/apt/lists/archive1", b"a".to_vec(), 0o644)
            .unwrap();
        t.add_file("/var/lib/apt/lists/archive2", b"b".to_vec(), 0o644)
            .unwrap();
        t.add_file("/var/lib/keep", b"k".to_vec(), 0o644).unwrap();
        let removed = t.remove_subtree("/var/lib/apt");
        assert_eq!(removed, 4); // apt, lists, 2 files
        assert!(t.get("/var/lib/keep").is_some());
    }

    #[test]
    fn overlay_later_layer_wins() {
        let mut base = FsTree::new();
        base.add_file("/etc/conf", b"base".to_vec(), 0o644).unwrap();
        let mut layer = FsTree::new();
        layer.add_file("/etc/conf", b"app".to_vec(), 0o644).unwrap();
        base.overlay(&layer);
        assert!(matches!(
            base.get("/etc/conf"),
            Some(FsEntry::File { content, .. }) if content == b"app"
        ));
    }

    #[test]
    fn archive_roundtrip() {
        let mut t = FsTree::new();
        t.add_file("/bin/sh", b"shell".to_vec(), 0o755).unwrap();
        t.add_symlink("/bin/bash", "/bin/sh").unwrap();
        t.add_dir("/empty", 0o700).unwrap();
        let decoded = FsTree::from_archive(&t.to_archive()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn corrupted_archive_rejected() {
        let mut t = FsTree::new();
        t.add_file("/f", b"x".to_vec(), 0o644).unwrap();
        let mut bytes = t.to_archive();
        bytes[0] = b'X';
        assert!(FsTree::from_archive(&bytes).is_err());
        let t2 = FsTree::from_archive(&bytes[..0]);
        assert!(t2.is_err());
    }

    proptest! {
        #[test]
        fn archive_roundtrip_arbitrary(files in proptest::collection::btree_map("[a-z]{1,8}", any::<Vec<u8>>(), 0..10)) {
            let mut t = FsTree::new();
            for (name, content) in &files {
                t.add_file(&format!("/data/{name}"), content.clone(), 0o644).unwrap();
            }
            prop_assert_eq!(FsTree::from_archive(&t.to_archive()).unwrap(), t);
        }

        #[test]
        fn content_hash_is_stable(files in proptest::collection::btree_map("[a-z]{1,8}", any::<Vec<u8>>(), 0..10)) {
            let build = || {
                let mut t = FsTree::new();
                for (name, content) in &files {
                    t.add_file(&format!("/data/{name}"), content.clone(), 0o644).unwrap();
                }
                t.content_hash()
            };
            prop_assert_eq!(build(), build());
        }
    }
}

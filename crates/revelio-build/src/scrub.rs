//! Non-determinism scrubbing (paper §5.1.1).
//!
//! The paper's build scripts "remediate sources of non-determinism (e.g.,
//! timestamps, build paths, file ordering and permissions) by clearing all
//! files that may lead to in-deterministic build (e.g.
//! `/var/lib/apt/lists/*`, `/var/lib/dbus/machine-id` etc.), squashing all
//! timestamps and specifying a uuid for each partition". File ordering is
//! structurally deterministic in [`crate::fstree::FsTree`]; partitions get
//! content-derived UUIDs in `revelio-storage`; this module implements the
//! rest.

use crate::fstree::FsTree;

/// What the scrubber removes and normalizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubPolicy {
    /// Squash every file mtime to this value (0 = epoch).
    pub squash_mtime_to: u64,
    /// Subtrees deleted wholesale.
    pub remove_subtrees: Vec<String>,
    /// Exact files deleted.
    pub remove_files: Vec<String>,
    /// Path suffixes deleted wherever they appear (caches, logs).
    pub remove_suffixes: Vec<String>,
}

impl Default for ScrubPolicy {
    /// The paper's list, §5.1.1.
    fn default() -> Self {
        ScrubPolicy {
            squash_mtime_to: 0,
            remove_subtrees: vec![
                "/var/lib/apt/lists".to_owned(),
                "/var/log".to_owned(),
                "/var/cache".to_owned(),
                "/tmp".to_owned(),
            ],
            remove_files: vec![
                "/var/lib/dbus/machine-id".to_owned(),
                "/etc/machine-id".to_owned(),
                "/etc/hostname".to_owned(),
                "/root/.bash_history".to_owned(),
            ],
            remove_suffixes: vec![".pyc".to_owned(), "~".to_owned()],
        }
    }
}

/// A report of what scrubbing changed — surfaced in build logs so auditors
/// can see the normalization that happened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Entries deleted.
    pub removed_entries: usize,
    /// Files whose mtime was rewritten.
    pub squashed_timestamps: usize,
}

/// Applies `policy` to `tree` in place.
pub fn scrub(tree: &mut FsTree, policy: &ScrubPolicy) -> ScrubReport {
    let mut report = ScrubReport::default();
    for subtree in &policy.remove_subtrees {
        report.removed_entries += tree.remove_subtree(subtree);
    }
    for file in &policy.remove_files {
        report.removed_entries += tree.remove_subtree(file);
    }
    for suffix in &policy.remove_suffixes {
        report.removed_entries += tree.remove_matching(|p| p.ends_with(suffix.as_str()));
    }
    tree.for_each_file_mut(|_, _, _, mtime| {
        if *mtime != policy.squash_mtime_to {
            *mtime = policy.squash_mtime_to;
            report.squashed_timestamps += 1;
        }
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dirty_tree(machine_id: &[u8], mtime: u64) -> FsTree {
        let mut t = FsTree::new();
        t.add_file_with_mtime("/usr/bin/app", b"app".to_vec(), 0o755, mtime)
            .unwrap();
        t.add_file("/etc/machine-id", machine_id.to_vec(), 0o444)
            .unwrap();
        t.add_file(
            "/var/lib/apt/lists/archive.ubuntu.com_dists",
            b"index".to_vec(),
            0o644,
        )
        .unwrap();
        t.add_file("/var/log/dpkg.log", b"log".to_vec(), 0o644)
            .unwrap();
        t.add_file("/usr/lib/python/__pycache__/m.pyc", b"pyc".to_vec(), 0o644)
            .unwrap();
        t
    }

    #[test]
    fn two_dirty_builds_converge_after_scrub() {
        // Different machine IDs, apt indices and timestamps — the exact
        // drift the paper's pipeline fights.
        let mut a = dirty_tree(b"host-a", 1_690_000_123);
        let mut b = dirty_tree(b"host-b", 1_690_999_999);
        assert_ne!(a.content_hash(), b.content_hash());
        scrub(&mut a, &ScrubPolicy::default());
        scrub(&mut b, &ScrubPolicy::default());
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn scrub_is_idempotent() {
        let mut t = dirty_tree(b"id", 42);
        scrub(&mut t, &ScrubPolicy::default());
        let first = t.content_hash();
        let second_report = scrub(&mut t, &ScrubPolicy::default());
        assert_eq!(t.content_hash(), first);
        assert_eq!(second_report.removed_entries, 0);
        assert_eq!(second_report.squashed_timestamps, 0);
    }

    #[test]
    fn report_counts_changes() {
        let mut t = dirty_tree(b"id", 42);
        let report = scrub(&mut t, &ScrubPolicy::default());
        assert!(report.removed_entries > 0);
        assert_eq!(report.squashed_timestamps, 1); // only /usr/bin/app survives with mtime 42
    }

    #[test]
    fn application_payload_survives() {
        let mut t = dirty_tree(b"id", 42);
        scrub(&mut t, &ScrubPolicy::default());
        assert!(t.get("/usr/bin/app").is_some());
        assert!(t.get("/etc/machine-id").is_none());
        assert!(t.get("/var/log/dpkg.log").is_none());
        assert!(t.get("/usr/lib/python/__pycache__/m.pyc").is_none());
    }

    #[test]
    fn custom_policy_can_keep_logs() {
        let mut t = dirty_tree(b"id", 42);
        let policy = ScrubPolicy {
            remove_subtrees: vec![],
            ..ScrubPolicy::default()
        };
        scrub(&mut t, &policy);
        assert!(t.get("/var/log/dpkg.log").is_some());
    }
}

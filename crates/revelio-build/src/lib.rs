//! The Revelio VM image pipeline: reproducible builds as the basis for
//! practical remote attestation (paper §3.4.1, §5.1).
//!
//! End-users can only verify a launch measurement if they can *reproduce*
//! it: the same sources and build scripts must yield bit-identical kernel,
//! initrd and root filesystem, hence an identical SHA-384 launch digest.
//! This crate models the full pipeline the paper describes:
//!
//! * [`fstree`] — a deterministic in-memory filesystem tree whose archive
//!   encoding is canonical (sorted paths, explicit modes and mtimes).
//! * [`scrub`] — removal of the non-determinism sources the paper names:
//!   squashed timestamps, `/var/lib/apt/lists/*`, machine IDs, log files.
//! * [`packages`] — a package registry where "install latest" drifts over
//!   time (the `apt-get` problem) versus pinned base-image layers that make
//!   dependency sets reproducible.
//! * [`hermetic`] — a bazel-style content-addressed build step: outputs are
//!   a pure function of declared inputs; an intentionally non-hermetic
//!   variant demonstrates measurement drift for the tests and ablations.
//! * [`artifacts`] — kernel blobs, initrd construction (init configuration
//!   interpreted by `revelio-boot`), and kernel command lines carrying the
//!   dm-verity root hash.
//! * [`image`] — final disk assembly: partition table, rootfs, verity hash
//!   tree, empty sealed data partition; emits a [`image::VmImage`] the boot
//!   crate consumes.
//!
//! # Example: two builds of the same sources are bit-identical
//!
//! ```
//! use revelio_build::fstree::FsTree;
//! use revelio_build::image::{ImageSpec, build_image};
//!
//! let mut rootfs = FsTree::new();
//! rootfs.add_file("/usr/bin/service", b"service binary".to_vec(), 0o755)?;
//! let spec = ImageSpec::new("demo", rootfs);
//! let a = build_image(&spec)?;
//! let b = build_image(&spec)?;
//! assert_eq!(a.root_hash, b.root_hash);
//! assert_eq!(a.initrd, b.initrd);
//! # Ok::<(), revelio_build::BuildError>(())
//! ```

pub mod artifacts;
pub mod error;
pub mod fstree;
pub mod hermetic;
pub mod image;
pub mod packages;
pub mod scrub;

pub use error::BuildError;

//! Boot artifacts: kernel blobs, the initrd (init configuration), and the
//! kernel command line that carries the dm-verity root hash.
//!
//! Under measured direct boot these three blobs are hashed by the
//! hypervisor, checked by the firmware, and thereby folded into the launch
//! measurement (§2.1.2, §5.1.2). Their encodings must therefore be
//! deterministic; all three round-trip through
//! [`revelio_crypto::wire`].

use revelio_crypto::wire::{ByteReader, ByteWriter};
use revelio_crypto::{hex, CryptoError};

use crate::BuildError;

/// Inbound-network policy baked into the image (§5.1.3: "blocking
/// unauthorized inward connections").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkPolicy {
    /// TCP ports that accept inbound connections (the HTTPS port only, for
    /// a Revelio VM).
    pub allowed_inbound_ports: Vec<u16>,
    /// Whether an SSH daemon is present and reachable — `true` is exactly
    /// the management-API hole Revelio closes.
    pub ssh_enabled: bool,
}

impl Default for NetworkPolicy {
    /// Revelio's policy: HTTPS only, no SSH.
    fn default() -> Self {
        NetworkPolicy {
            allowed_inbound_ports: vec![443],
            ssh_enabled: false,
        }
    }
}

/// First-boot encrypted-volume setup (§5.2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CryptVolumeConfig {
    /// Name of the data partition to encrypt.
    pub partition_name: String,
    /// PBKDF2 iterations for the key slot (paper: 1000).
    pub kdf_iterations: u32,
}

impl Default for CryptVolumeConfig {
    fn default() -> Self {
        CryptVolumeConfig {
            partition_name: "data".to_owned(),
            kdf_iterations: 1000,
        }
    }
}

/// Everything the in-initrd init process does at boot, in order:
/// verity-mount the rootfs, set up the sealed data volume, apply the
/// network policy, create the VM identity, start services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitConfig {
    /// Mount the rootfs through dm-verity (root hash from the cmdline).
    pub verity_rootfs: bool,
    /// Optional sealed data volume to create/open on (first) boot.
    pub crypt_volume: Option<CryptVolumeConfig>,
    /// Network policy to enforce before any service starts.
    pub network: NetworkPolicy,
    /// Create the unique VM identity key pair and attestation reports at
    /// first boot (§5.2.2).
    pub create_identity: bool,
    /// System services started after bring-up. The count dominates total
    /// boot time (Table 1: the Boundary Node starts far more services than
    /// the CryptPad server).
    pub services: Vec<String>,
}

impl Default for InitConfig {
    fn default() -> Self {
        InitConfig {
            verity_rootfs: true,
            crypt_volume: Some(CryptVolumeConfig::default()),
            network: NetworkPolicy::default(),
            create_identity: true,
            services: Vec::new(),
        }
    }
}

impl InitConfig {
    /// Serializes into initrd bytes.
    #[must_use]
    pub fn to_initrd(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(b"RVIRD1");
        w.put_u8(u8::from(self.verity_rootfs));
        match &self.crypt_volume {
            None => {
                w.put_u8(0);
            }
            Some(c) => {
                w.put_u8(1);
                w.put_str(&c.partition_name);
                w.put_u32(c.kdf_iterations);
            }
        }
        w.put_u32(self.network.allowed_inbound_ports.len() as u32);
        for port in &self.network.allowed_inbound_ports {
            w.put_u16(*port);
        }
        w.put_u8(u8::from(self.network.ssh_enabled));
        w.put_u8(u8::from(self.create_identity));
        w.put_u32(self.services.len() as u32);
        for s in &self.services {
            w.put_str(s);
        }
        w.into_bytes()
    }

    /// Parses initrd bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Wire`] on malformed input.
    pub fn from_initrd(bytes: &[u8]) -> Result<Self, BuildError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_array::<6>()?;
        if &magic != b"RVIRD1" {
            return Err(BuildError::Wire(
                revelio_crypto::wire::WireError::UnknownTag(magic[0]),
            ));
        }
        let verity_rootfs = r.get_u8()? != 0;
        let crypt_volume = match r.get_u8()? {
            0 => None,
            1 => Some(CryptVolumeConfig {
                partition_name: r.get_str()?,
                kdf_iterations: r.get_u32()?,
            }),
            t => {
                return Err(BuildError::Wire(
                    revelio_crypto::wire::WireError::UnknownTag(t),
                ))
            }
        };
        let n_ports = r.get_count(2)?; // u16 per port
        let mut allowed_inbound_ports = Vec::with_capacity(n_ports);
        for _ in 0..n_ports {
            allowed_inbound_ports.push(r.get_u16()?);
        }
        let ssh_enabled = r.get_u8()? != 0;
        let create_identity = r.get_u8()? != 0;
        let n_services = r.get_count(4)?; // string prefix
        let mut services = Vec::with_capacity(n_services);
        for _ in 0..n_services {
            services.push(r.get_str()?);
        }
        r.finish()?;
        Ok(InitConfig {
            verity_rootfs,
            crypt_volume,
            network: NetworkPolicy {
                allowed_inbound_ports,
                ssh_enabled,
            },
            create_identity,
            services,
        })
    }
}

/// A kernel build: version plus configuration flags, rendered to a
/// deterministic blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSpec {
    /// Kernel version string, e.g. `"5.17.0-rc6-snp"`.
    pub version: String,
    /// Enabled config options (sorted set semantics: callers should keep
    /// them sorted; the encoder sorts defensively).
    pub config_flags: Vec<String>,
}

impl Default for KernelSpec {
    /// The guest kernel of the paper's evaluation (§6.2).
    fn default() -> Self {
        KernelSpec {
            version: "5.17.0-rc6-snp".to_owned(),
            config_flags: vec![
                "CONFIG_AMD_MEM_ENCRYPT".to_owned(),
                "CONFIG_DM_CRYPT".to_owned(),
                "CONFIG_DM_VERITY".to_owned(),
            ],
        }
    }
}

impl KernelSpec {
    /// Renders the kernel blob.
    #[must_use]
    pub fn to_blob(&self) -> Vec<u8> {
        let mut flags = self.config_flags.clone();
        flags.sort();
        flags.dedup();
        let mut w = ByteWriter::new();
        w.put_bytes(b"RVKRN1");
        w.put_str(&self.version);
        w.put_u32(flags.len() as u32);
        for f in &flags {
            w.put_str(f);
        }
        w.into_bytes()
    }

    /// Parses a kernel blob.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Wire`] on malformed input.
    pub fn from_blob(bytes: &[u8]) -> Result<Self, BuildError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_array::<6>()?;
        if &magic != b"RVKRN1" {
            return Err(BuildError::Wire(
                revelio_crypto::wire::WireError::UnknownTag(magic[0]),
            ));
        }
        let version = r.get_str()?;
        let n = r.get_count(4)?; // string prefix
        let mut config_flags = Vec::with_capacity(n);
        for _ in 0..n {
            config_flags.push(r.get_str()?);
        }
        r.finish()?;
        Ok(KernelSpec {
            version,
            config_flags,
        })
    }
}

/// The kernel command line, including the dm-verity root hash that extends
/// the measured envelope down to the root filesystem (§3.4.3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KernelCmdline {
    /// dm-verity root hash of the rootfs (hex in the rendered line).
    pub verity_root_hash: Option<[u8; 32]>,
    /// Additional `key=value` arguments, in order.
    pub extra: Vec<(String, String)>,
}

impl KernelCmdline {
    /// Renders to the canonical textual form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut parts = vec!["root=/dev/mapper/vroot".to_owned(), "ro".to_owned()];
        if let Some(h) = &self.verity_root_hash {
            parts.push(format!("verity_root_hash={}", hex::encode(h)));
        }
        for (k, v) in &self.extra {
            parts.push(format!("{k}={v}"));
        }
        parts.join(" ")
    }

    /// Parses a rendered command line.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidHex`] /
    /// [`CryptoError::InvalidLength`] if the root hash argument is
    /// malformed.
    pub fn parse(line: &str) -> Result<Self, CryptoError> {
        let mut cmdline = KernelCmdline::default();
        for token in line.split_whitespace() {
            match token.split_once('=') {
                Some(("verity_root_hash", v)) => {
                    cmdline.verity_root_hash = Some(hex::decode_array::<32>(v)?);
                }
                Some(("root", _)) | None => {}
                Some((k, v)) if k != "ro" => {
                    cmdline.extra.push((k.to_owned(), v.to_owned()));
                }
                _ => {}
            }
        }
        Ok(cmdline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_config_roundtrip() {
        let cfg = InitConfig {
            services: vec!["nginx".into(), "ic-proxy".into()],
            ..InitConfig::default()
        };
        assert_eq!(InitConfig::from_initrd(&cfg.to_initrd()).unwrap(), cfg);
    }

    #[test]
    fn init_config_without_crypt_roundtrip() {
        let cfg = InitConfig {
            crypt_volume: None,
            ..InitConfig::default()
        };
        assert_eq!(InitConfig::from_initrd(&cfg.to_initrd()).unwrap(), cfg);
    }

    #[test]
    fn initrd_encoding_is_deterministic() {
        assert_eq!(
            InitConfig::default().to_initrd(),
            InitConfig::default().to_initrd()
        );
    }

    #[test]
    fn kernel_blob_roundtrip_and_flag_order_insensitive() {
        let a = KernelSpec {
            version: "5.17".into(),
            config_flags: vec!["B".into(), "A".into()],
        };
        let b = KernelSpec {
            version: "5.17".into(),
            config_flags: vec!["A".into(), "B".into()],
        };
        assert_eq!(a.to_blob(), b.to_blob());
        let parsed = KernelSpec::from_blob(&a.to_blob()).unwrap();
        assert_eq!(parsed.config_flags, vec!["A".to_owned(), "B".to_owned()]);
    }

    #[test]
    fn cmdline_roundtrip_with_root_hash() {
        let c = KernelCmdline {
            verity_root_hash: Some([0xab; 32]),
            extra: vec![("quiet".into(), "1".into())],
        };
        let rendered = c.render();
        assert!(rendered.contains("verity_root_hash=abab"));
        assert_eq!(KernelCmdline::parse(&rendered).unwrap(), c);
    }

    #[test]
    fn cmdline_bad_hash_rejected() {
        assert!(KernelCmdline::parse("verity_root_hash=zzzz").is_err());
        assert!(KernelCmdline::parse("verity_root_hash=abcd").is_err()); // too short
    }

    #[test]
    fn default_network_policy_is_https_only_no_ssh() {
        let p = NetworkPolicy::default();
        assert_eq!(p.allowed_inbound_ports, vec![443]);
        assert!(!p.ssh_enabled);
    }

    #[test]
    fn truncated_artifacts_rejected() {
        let blob = KernelSpec::default().to_blob();
        assert!(KernelSpec::from_blob(&blob[..4]).is_err());
        let initrd = InitConfig::default().to_initrd();
        assert!(InitConfig::from_initrd(&initrd[..initrd.len() - 1]).is_err());
    }
}

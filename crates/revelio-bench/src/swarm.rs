//! The swarm benchmark: verifier throughput at browser-population scale.
//!
//! ROADMAP's "Verifier at line rate" scenario: a shared-cert fleet
//! serves a population of monitored sessions that all re-run the staged
//! verification on every request. The cacheable stage
//! (`WebExtension::verify_evidence`) hits the generation-stamped verdict
//! cache, so the steady state performs **zero signature verifications**
//! and no KDS traffic — only the per-connection TLS-binding stage runs
//! per session. This module measures exactly that claim:
//!
//! * **cold verify** — fresh extensions (empty verdict *and* VCEK
//!   caches) timing the full pipeline: KDS round trip plus four
//!   signature equations (batched);
//! * **hot sessions** — one shared extension driven by N OS threads,
//!   each session re-verifying its evidence (a verdict-cache hit) and
//!   performing one monitored GET;
//! * **counter proof** — the telemetry deltas across the hot phase:
//!   `revelio_extension_signature_verifications_total` must not move,
//!   while `revelio_extension_tls_binding_checks_total` must advance
//!   once per session.
//!
//! The hot phase also emits a transcript digest: the per-session
//! records (index, slot, cache bit, HTTP status, body length — no
//! timings) hashed in global session order. The digest is byte-identical
//! across thread counts and all three fabric modes; the determinism
//! suite pins that.

use std::time::Instant;

use revelio::node::demo_app;
use revelio::world::{SimWorld, WorldTuning};
use revelio_crypto::sha2::Sha256;
use revelio_net::net::NetConfig;
use revelio_telemetry::Telemetry;

/// The domain the swarm fleet serves.
pub const SWARM_DOMAIN: &str = "swarm.example.org";

/// The world seed of the swarm run (pinned: the transcript digest is
/// part of the determinism suite).
pub const SWARM_SEED: u64 = 0x5_3A12;

/// How many fresh-extension cold verifications establish the baseline
/// (fewer when the run itself is small — the baseline must not dominate
/// a smoke-scale run).
const COLD_SAMPLES: usize = 32;

/// Swarm dimensions: `(sessions, threads, nodes)`, defaulting to the
/// paper-scale run (1M monitored sessions, 16 OS threads, 4-node
/// shared-cert fleet) and overridable via `REVELIO_SWARM_SESSIONS`,
/// `REVELIO_SWARM_THREADS`, and `REVELIO_SWARM_NODES` for CI smoke
/// scale.
#[must_use]
pub fn swarm_dimensions_from_env() -> (usize, usize, usize) {
    let dim = |name: &str, default: usize| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(default)
    };
    (
        dim("REVELIO_SWARM_SESSIONS", 1_000_000),
        dim("REVELIO_SWARM_THREADS", 16),
        dim("REVELIO_SWARM_NODES", 4),
    )
}

/// One hot-phase session's transcript record. Deliberately excludes
/// every timing: the transcript asserts *what happened*, which is
/// deterministic, never *how fast*, which is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SessionRecord {
    /// Global session index (0..sessions).
    idx: u64,
    /// The session slot served (idx % nodes).
    slot: u64,
    /// Whether the cacheable stage was served from the verdict cache.
    cached: bool,
    /// HTTP status of the monitored GET.
    status: u16,
    /// Response body length, bytes.
    body_len: u64,
}

impl SessionRecord {
    fn write_to(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.idx.to_le_bytes());
        out.extend_from_slice(&self.slot.to_le_bytes());
        out.push(u8::from(self.cached));
        out.extend_from_slice(&self.status.to_le_bytes());
        out.extend_from_slice(&self.body_len.to_le_bytes());
    }
}

/// The verdict-cache counters the swarm proves its claims with.
#[derive(Debug, Clone, Copy, Default)]
struct VerifyCounters {
    hits: u64,
    misses: u64,
    invalidations: u64,
    signature_checks: u64,
    tls_binding_checks: u64,
}

impl VerifyCounters {
    fn read(telemetry: &Telemetry) -> Self {
        VerifyCounters {
            hits: telemetry.counter("revelio_extension_verify_cache_hits_total"),
            misses: telemetry.counter("revelio_extension_verify_cache_misses_total"),
            invalidations: telemetry.counter("revelio_extension_verify_cache_invalidations_total"),
            signature_checks: telemetry.counter("revelio_extension_signature_verifications_total"),
            tls_binding_checks: telemetry.counter("revelio_extension_tls_binding_checks_total"),
        }
    }

    fn delta(self, baseline: Self) -> Self {
        VerifyCounters {
            hits: self.hits - baseline.hits,
            misses: self.misses - baseline.misses,
            invalidations: self.invalidations - baseline.invalidations,
            signature_checks: self.signature_checks - baseline.signature_checks,
            tls_binding_checks: self.tls_binding_checks - baseline.tls_binding_checks,
        }
    }
}

/// Results of one swarm run.
#[derive(Debug, Clone)]
pub struct SwarmReport {
    /// Monitored sessions driven through the shared extension.
    pub sessions: u64,
    /// OS threads driving them.
    pub threads: usize,
    /// Fleet size (shared-cert nodes).
    pub nodes: usize,
    /// Fresh-extension full-pipeline verifications sampled for the
    /// baseline.
    pub cold_samples: usize,
    /// Cold staged-verify wall latency, p50 / p99, µs (KDS round trip +
    /// batched signature checks + golden lookup + TLS binding).
    pub cold_verify_p50_us: f64,
    /// See `cold_verify_p50_us`.
    pub cold_verify_p99_us: f64,
    /// Hot-phase per-session wall latency (cache-hit staged verify + one
    /// monitored GET), p50 / p99, µs.
    pub session_p50_us: f64,
    /// See `session_p50_us`.
    pub session_p99_us: f64,
    /// Hot-phase sessions per wall-clock second.
    pub verify_throughput_per_sec: f64,
    /// Hot-phase wall time, seconds.
    pub hot_elapsed_secs: f64,
    /// Verdict-cache hits during the hot phase.
    pub cache_hits: u64,
    /// Verdict-cache misses during the hot phase (steady state: 0).
    pub cache_misses: u64,
    /// Hot-phase hit rate: hits / (hits + misses).
    pub cache_hit_rate: f64,
    /// Generation bumps during the hot phase (steady state: 0).
    pub cache_invalidations: u64,
    /// Signature equations checked during the hot phase — the line-rate
    /// claim is that this is **exactly zero**.
    pub signature_checks: u64,
    /// Per-connection TLS-binding checks during the hot phase — must be
    /// one per session even though every verdict came from the cache.
    pub tls_binding_checks: u64,
    /// SHA-256 over the per-session records in global session order
    /// (hex). Byte-identical across thread counts and fabric modes.
    pub transcript_sha256: String,
}

impl SwarmReport {
    /// Serializes the report for `BENCH_swarm.json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"sessions\":{},\"threads\":{},\"nodes\":{},",
                "\"cold_samples\":{},",
                "\"cold_verify_p50_us\":{:.2},\"cold_verify_p99_us\":{:.2},",
                "\"session_p50_us\":{:.2},\"session_p99_us\":{:.2},",
                "\"verify_throughput_per_sec\":{:.0},",
                "\"hot_elapsed_secs\":{:.3},",
                "\"cache_hits\":{},\"cache_misses\":{},",
                "\"cache_hit_rate\":{:.6},\"cache_invalidations\":{},",
                "\"signature_checks\":{},\"tls_binding_checks\":{},",
                "\"transcript_sha256\":\"{}\"}}"
            ),
            self.sessions,
            self.threads,
            self.nodes,
            self.cold_samples,
            self.cold_verify_p50_us,
            self.cold_verify_p99_us,
            self.session_p50_us,
            self.session_p99_us,
            self.verify_throughput_per_sec,
            self.hot_elapsed_secs,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate,
            self.cache_invalidations,
            self.signature_checks,
            self.tls_binding_checks,
            self.transcript_sha256,
        )
    }

    /// The swarm gates, empty when all hold:
    ///
    /// * a cache-hit session (staged verify **plus** a monitored GET) is
    ///   faster at p50 than a cold verify alone;
    /// * the hot phase performed zero signature verifications;
    /// * the hot-phase hit rate is ≥ 99%;
    /// * the TLS-binding check ran once per session regardless.
    #[must_use]
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        if self.session_p50_us >= self.cold_verify_p50_us {
            failures.push(format!(
                "cache-hit session p50 ({:.2} µs) does not beat cold-verify p50 ({:.2} µs)",
                self.session_p50_us, self.cold_verify_p50_us
            ));
        }
        if self.signature_checks != 0 {
            failures.push(format!(
                "hot phase performed {} signature verifications (expected 0)",
                self.signature_checks
            ));
        }
        if self.cache_hit_rate < 0.99 {
            failures.push(format!(
                "hot-phase cache hit rate {:.4} below 0.99 ({} misses)",
                self.cache_hit_rate, self.cache_misses
            ));
        }
        if self.tls_binding_checks != self.sessions {
            failures.push(format!(
                "TLS-binding checks ({}) != sessions ({}) — the per-connection stage must run every time",
                self.tls_binding_checks, self.sessions
            ));
        }
        failures
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Runs the swarm on the ambient fabric configuration
/// (`REVELIO_FABRIC_MODE`, like every other benchmark).
///
/// # Panics
///
/// Panics if fleet deployment or any session fails — the swarm runs on
/// a clean fabric, so a failure is a harness bug, not a measurement.
#[must_use]
pub fn run_swarm(sessions: usize, threads: usize, nodes: usize) -> SwarmReport {
    let tuning = WorldTuning::default();
    let net_config = NetConfig {
        default_one_way_us: tuning.link_one_way_us,
        ..NetConfig::default()
    }
    .with_env_mode();
    run_swarm_with_net(sessions, threads, nodes, net_config)
}

/// Runs the swarm on an explicit fabric configuration — the determinism
/// suite pins each of the three read paths in turn.
///
/// # Panics
///
/// As for [`run_swarm`].
#[must_use]
pub fn run_swarm_with_net(
    sessions: usize,
    threads: usize,
    nodes: usize,
    net_config: NetConfig,
) -> SwarmReport {
    let threads = threads.max(1);
    let mut world = SimWorld::with_tuning_and_net(SWARM_SEED, WorldTuning::default(), net_config);
    let fleet = world
        .deploy_fleet(SWARM_DOMAIN, nodes, demo_app())
        .expect("swarm fleet deploys on a clean fabric");
    let extension = world.extension();
    extension.register_site(SWARM_DOMAIN, vec![fleet.golden_measurement]);

    // A probe session supplies the evidence bundle the cold baseline
    // re-verifies (and pre-warms nothing beyond its own verdict entry).
    let probe = extension
        .open_monitored(SWARM_DOMAIN)
        .expect("probe session attests");

    // Cold baseline: each sample is a fresh extension — empty verdict
    // cache, empty VCEK cache — timing one full staged verification:
    // KDS round trip, batched chain + report signature check, golden
    // lookup, TLS binding.
    let cold_samples = COLD_SAMPLES.min((sessions / 64).max(1));
    let mut cold_us: Vec<f64> = (0..cold_samples)
        .map(|_| {
            let cold = world.extension();
            cold.register_site(SWARM_DOMAIN, vec![fleet.golden_measurement]);
            let t0 = Instant::now();
            cold.verify(SWARM_DOMAIN, probe.evidence(), &probe.pinned_key())
                .expect("cold verify succeeds");
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    cold_us.sort_by(|a, b| a.total_cmp(b));

    // Warm-up: every thread owns one monitored session per fleet slot
    // (sessions cannot be shared across threads — each holds a live
    // connection). The first open per distinct evidence is a verdict
    // miss; the rest hit.
    let mut pools: Vec<Vec<revelio::extension::MonitoredSession>> = (0..threads)
        .map(|_| {
            (0..nodes)
                .map(|_| {
                    extension
                        .open_monitored(SWARM_DOMAIN)
                        .expect("warm-up session attests")
                })
                .collect()
        })
        .collect();

    // Hot phase: `sessions` monitored sessions striped across the
    // threads (session i belongs to thread i % threads and fleet slot
    // i % nodes), each re-running the staged verification — a verdict
    // cache hit — plus one monitored GET.
    let baseline = VerifyCounters::read(&world.telemetry);
    let total = sessions as u64;
    let hot_start = Instant::now();
    let per_thread: Vec<(Vec<SessionRecord>, Vec<f64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = pools
            .drain(..)
            .enumerate()
            .map(|(t, mut pool)| {
                let extension = &extension;
                s.spawn(move || {
                    let mut records = Vec::with_capacity(sessions / threads + 1);
                    let mut latencies = Vec::with_capacity(sessions / threads + 1);
                    let mut idx = t as u64;
                    while idx < total {
                        let slot = (idx % nodes as u64) as usize;
                        let monitored = &mut pool[slot];
                        let t0 = Instant::now();
                        let verdict = extension
                            .verify(
                                monitored.domain(),
                                monitored.evidence(),
                                &monitored.pinned_key(),
                            )
                            .expect("hot-phase verify succeeds");
                        let response = monitored.request("/").expect("hot-phase request");
                        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                        records.push(SessionRecord {
                            idx,
                            slot: slot as u64,
                            cached: verdict.cached,
                            status: response.status,
                            body_len: response.body.len() as u64,
                        });
                        idx += threads as u64;
                    }
                    (records, latencies)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("swarm thread"))
            .collect()
    });
    let hot_elapsed = hot_start.elapsed().as_secs_f64();
    let counters = VerifyCounters::read(&world.telemetry).delta(baseline);

    // Merge the striped records back into global session order and hash
    // them: the digest is the determinism witness.
    let mut records: Vec<SessionRecord> = Vec::with_capacity(sessions);
    let mut latencies: Vec<f64> = Vec::with_capacity(sessions);
    for (thread_records, thread_latencies) in per_thread {
        records.extend(thread_records);
        latencies.extend(thread_latencies);
    }
    records.sort_by_key(|r| r.idx);
    let mut transcript = Vec::with_capacity(records.len() * 27);
    for record in &records {
        record.write_to(&mut transcript);
    }
    let digest = Sha256::digest(&transcript);
    latencies.sort_by(|a, b| a.total_cmp(b));

    let attempted = counters.hits + counters.misses;
    SwarmReport {
        sessions: total,
        threads,
        nodes,
        cold_samples,
        cold_verify_p50_us: percentile(&cold_us, 0.50),
        cold_verify_p99_us: percentile(&cold_us, 0.99),
        session_p50_us: percentile(&latencies, 0.50),
        session_p99_us: percentile(&latencies, 0.99),
        verify_throughput_per_sec: total as f64 / hot_elapsed.max(1e-9),
        hot_elapsed_secs: hot_elapsed,
        cache_hits: counters.hits,
        cache_misses: counters.misses,
        cache_hit_rate: if attempted == 0 {
            0.0
        } else {
            counters.hits as f64 / attempted as f64
        },
        cache_invalidations: counters.invalidations,
        signature_checks: counters.signature_checks,
        tls_binding_checks: counters.tls_binding_checks,
        transcript_sha256: hex(&digest),
    }
}

//! The reconcile benchmark: long-horizon control-plane convergence
//! under pinned fault seeds.
//!
//! ROADMAP's desired-state reconciliation scenario: a declared
//! [`FleetSpec`] and a reconciler loop driving the fleet toward it on
//! the sim clock. This module runs the control plane through its four
//! load-bearing scenarios and gates the PR's acceptance claims:
//!
//! * **rolling upgrade under partition** — a new target image rolls out
//!   canary-first (canaries verified dark before any wave node moves,
//!   the serving leader strictly last) while a rack flaps behind a
//!   scheduled-heal partition; the fleet still converges;
//! * **drift halt / resume** — a seeded build-pipeline compromise makes
//!   one canary measure off-target; the rollout halts naming the
//!   diverging node set, the old image keeps serving, and a corrected
//!   re-declared spec converges;
//! * **quarantine flapping** — repeated partition/heal cycles each
//!   quarantine and then re-admit (re-attest, re-issue, rejoin) the
//!   flapped nodes;
//! * **renewal horizon** — daily ticks across a multi-renewal horizon;
//!   no tick may ever observe the shared certificate past its
//!   `not_after_ms`.
//!
//! The upgrade scenario is replicated across OS threads and all three
//! fabric modes; every replica's decision-transcript digest must be
//! byte-identical. All scenario time is sim-clock time — the only wall
//! number reported is the harness's own elapsed seconds.

use std::time::Instant;

use revelio::node::demo_app;
use revelio::reconcile::{FleetSpec, RolloutPhase};
use revelio::world::{SimWorld, WorldTuning};
use revelio_net::net::{NetConfig, ReadPath, DEFAULT_SHARDS};
use revelio_net::FaultDomain;

/// The domain the reconcile fleet serves.
pub const RECONCILE_DOMAIN: &str = "pad.example.org";

/// The pinned world seed (the transcript digest is part of the
/// determinism gate, so the seed is part of the contract).
pub const RECONCILE_SEED: u64 = 0x5EC0_11C1;

/// The pinned fabric fault seed for the scheduled partition flaps.
pub const RECONCILE_FAULT_SEED: u64 = 0xC4A0_5004;

/// Reconcile dimensions: `(nodes, flaps, horizon_days, threads)`,
/// defaulting to the full run (6-node fleet across two racks, 3
/// partition/heal cycles, a 200-day renewal horizon, 16 determinism
/// replicas per fabric mode) and overridable via
/// `REVELIO_RECONCILE_NODES`, `REVELIO_RECONCILE_FLAPS`,
/// `REVELIO_RECONCILE_DAYS`, and `REVELIO_RECONCILE_THREADS` for CI
/// smoke scale.
#[must_use]
pub fn reconcile_dimensions_from_env() -> (usize, usize, usize, usize) {
    let dim = |name: &str, default: usize| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(default)
    };
    (
        dim("REVELIO_RECONCILE_NODES", 6).max(3),
        dim("REVELIO_RECONCILE_FLAPS", 3),
        dim("REVELIO_RECONCILE_DAYS", 200),
        dim("REVELIO_RECONCILE_THREADS", 16),
    )
}

/// The three fabric read paths the determinism gate pins.
fn all_modes() -> [(&'static str, NetConfig); 3] {
    let base = NetConfig {
        default_one_way_us: WorldTuning::default().link_one_way_us,
        ..NetConfig::default()
    };
    [
        (
            "single",
            NetConfig {
                shards: 1,
                read_path: ReadPath::Locked,
                ..base.clone()
            },
        ),
        (
            "sharded",
            NetConfig {
                shards: DEFAULT_SHARDS,
                read_path: ReadPath::Locked,
                ..base.clone()
            },
        ),
        (
            "snapshot",
            NetConfig {
                shards: DEFAULT_SHARDS,
                read_path: ReadPath::Snapshot,
                ..base
            },
        ),
    ]
}

/// Splits `nodes` across the two racks (rack 114 is the flapping one).
fn rack_split(nodes: usize) -> [(u8, usize); 2] {
    let flapping = (nodes / 3).max(1);
    [(113, nodes - flapping), (114, flapping)]
}

/// Outcome of one rolling-upgrade-under-partition replica.
struct UpgradeOutcome {
    converged: bool,
    ticks: u64,
    canary_first: bool,
    leader_last: bool,
    digest: String,
}

/// One full upgrade scenario on an explicit fabric configuration: a
/// rack goes dark behind a scheduled-heal partition while the
/// reconciler rolls the fleet onto a new image.
fn run_upgrade_scenario(nodes: usize, config: NetConfig) -> UpgradeOutcome {
    let mut world = SimWorld::with_tuning_and_net(RECONCILE_SEED, WorldTuning::default(), config);
    world.set_fault_seed(RECONCILE_FAULT_SEED);
    let fleet = world
        .deploy_fleet_in_subnets(RECONCILE_DOMAIN, &rack_split(nodes), demo_app())
        .expect("reconcile fleet deploys on a clean fabric");
    let leader = fleet.provision.leader_bootstrap.clone();

    let next_spec = world.image_spec(RECONCILE_DOMAIN, &["web-service", "metrics-agent"]);
    let (_, target) = world.build(&next_spec).expect("target image builds");
    let upgrader = world.fleet_upgrader(&fleet, demo_app(), next_spec);
    let mut spec = FleetSpec::new(RECONCILE_DOMAIN, target);
    spec.tick_interval_ms = 60_000;
    let mut reconciler = world.reconciler(&fleet, spec, upgrader);

    let now_us = world.clock.now_us();
    world.install_fault_domain(
        FaultDomain::partition("rack-114", "203.0.114.")
            .starting_at_us(now_us)
            .healing_at_us(now_us + 240_000_000),
    );

    let converged = reconciler.run_until_converged(80);

    // Canary-first ordering and leader-last are read off the decision
    // transcript. Re-admission upgrades ("stale image on re-admission")
    // are post-completion catch-up, not rollout waves — excluded.
    let wave_upgrades: Vec<&String> = reconciler
        .transcript()
        .iter()
        .filter(|l| l.contains("] upgrade ") && !l.contains("stale image"))
        .collect();
    let canary_pass = reconciler
        .transcript()
        .iter()
        .position(|l| l.contains("canary-pass"));
    let second_upgrade = reconciler
        .transcript()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains("] upgrade ") && !l.contains("stale image"))
        .nth(1)
        .map(|(i, _)| i);
    let canary_first = match (canary_pass, second_upgrade) {
        (Some(pass), Some(second)) => pass < second,
        (Some(_), None) => true,
        (None, _) => false,
    };
    let leader_last = wave_upgrades
        .last()
        .is_some_and(|line| line.contains(&leader));

    UpgradeOutcome {
        converged,
        ticks: reconciler.ticks(),
        canary_first,
        leader_last,
        digest: reconciler.transcript_digest(),
    }
}

/// Results of one reconcile run.
#[derive(Debug, Clone)]
pub struct ReconcileReport {
    /// Fleet size across the two racks.
    pub nodes: usize,
    /// Partition/heal cycles in the flapping soak.
    pub flaps: usize,
    /// Daily ticks in the renewal horizon.
    pub horizon_days: usize,
    /// Determinism replicas per fabric mode.
    pub replica_threads: usize,
    /// Whether the rolling upgrade converged within its tick budget.
    pub upgrade_converged: bool,
    /// Ticks the upgrade scenario ran until convergence.
    pub upgrade_convergence_ticks: u64,
    /// Canary-pass preceded every wave upgrade.
    pub canary_first: bool,
    /// The serving leader was the last wave upgrade.
    pub leader_last: bool,
    /// The seeded drift halted the rollout.
    pub drift_halted: bool,
    /// Diverging nodes named by the halt (node → measured value).
    pub diverging_named: usize,
    /// The corrected spec converged after the halt.
    pub drift_resumed: bool,
    /// Ticks from re-declared spec to convergence.
    pub drift_resume_ticks: u64,
    /// Partition quarantines across the flapping soak.
    pub flap_quarantines: u64,
    /// Re-admissions across the flapping soak — must equal the
    /// quarantines: every healed node rejoins.
    pub flap_readmissions: u64,
    /// Nodes still quarantined when the soak ended (must be 0).
    pub flap_residual_quarantined: usize,
    /// Certificate renewals across the horizon.
    pub renewals: u64,
    /// Ticks that observed the chain past `not_after_ms` (must be 0).
    pub expiry_violations: u64,
    /// Fabric modes exercised by the determinism sweep.
    pub fabric_modes: usize,
    /// Total upgrade-scenario replicas in the determinism sweep.
    pub determinism_runs: usize,
    /// Distinct transcript digests across all replicas (must be 1).
    pub distinct_digests: usize,
    /// The (sole, when deterministic) upgrade transcript digest, hex.
    pub transcript_sha256: String,
    /// Harness wall time, seconds. Reported for CI budgeting only —
    /// every scenario quantity above is sim-clock or transcript-derived.
    pub wall_secs: f64,
}

impl ReconcileReport {
    /// Serializes the report for `BENCH_reconcile.json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"nodes\":{},\"flaps\":{},\"horizon_days\":{},",
                "\"replica_threads\":{},",
                "\"upgrade_converged\":{},\"upgrade_convergence_ticks\":{},",
                "\"canary_first\":{},\"leader_last\":{},",
                "\"drift_halted\":{},\"diverging_named\":{},",
                "\"drift_resumed\":{},\"drift_resume_ticks\":{},",
                "\"flap_quarantines\":{},\"flap_readmissions\":{},",
                "\"flap_residual_quarantined\":{},",
                "\"renewals\":{},\"expiry_violations\":{},",
                "\"fabric_modes\":{},\"determinism_runs\":{},",
                "\"distinct_digests\":{},",
                "\"transcript_sha256\":\"{}\",",
                "\"wall_secs\":{:.3}}}"
            ),
            self.nodes,
            self.flaps,
            self.horizon_days,
            self.replica_threads,
            self.upgrade_converged,
            self.upgrade_convergence_ticks,
            self.canary_first,
            self.leader_last,
            self.drift_halted,
            self.diverging_named,
            self.drift_resumed,
            self.drift_resume_ticks,
            self.flap_quarantines,
            self.flap_readmissions,
            self.flap_residual_quarantined,
            self.renewals,
            self.expiry_violations,
            self.fabric_modes,
            self.determinism_runs,
            self.distinct_digests,
            self.transcript_sha256,
            self.wall_secs,
        )
    }

    /// The reconcile gates, empty when all hold:
    ///
    /// * the rolling upgrade converged, canary-first, leader last;
    /// * the seeded drift halted the rollout naming ≥ 1 diverging node,
    ///   and the corrected spec converged;
    /// * every flapped node was quarantined and then re-admitted, with
    ///   nobody left off the roster;
    /// * one renewal per 90-day certificate lifetime in the horizon
    ///   happened, and no tick ever observed an expired chain;
    /// * every determinism replica produced the same transcript digest.
    #[must_use]
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        if !self.upgrade_converged {
            failures.push(format!(
                "rolling upgrade did not converge within budget ({} ticks run)",
                self.upgrade_convergence_ticks
            ));
        }
        if !self.canary_first {
            failures.push("a wave upgrade ran before canary-pass".to_owned());
        }
        if !self.leader_last {
            failures.push("the serving leader was not the last wave upgrade".to_owned());
        }
        if !self.drift_halted || self.diverging_named == 0 {
            failures.push(format!(
                "seeded drift did not halt the rollout with named divergents \
                 (halted={}, named={})",
                self.drift_halted, self.diverging_named
            ));
        }
        if !self.drift_resumed {
            failures.push("corrected spec did not converge after the drift halt".to_owned());
        }
        if self.flap_readmissions != self.flap_quarantines || self.flap_residual_quarantined != 0 {
            failures.push(format!(
                "healed nodes not fully re-admitted: {} quarantines, {} readmissions, \
                 {} still off the roster",
                self.flap_quarantines, self.flap_readmissions, self.flap_residual_quarantined
            ));
        }
        let expected_renewals = (self.horizon_days / 90) as u64;
        if self.renewals < expected_renewals {
            failures.push(format!(
                "expected >= {} certificate renewals across the {}-day horizon, got {}",
                expected_renewals, self.horizon_days, self.renewals
            ));
        }
        if self.expiry_violations != 0 {
            failures.push(format!(
                "{} ticks observed the shared certificate past not_after_ms",
                self.expiry_violations
            ));
        }
        if self.distinct_digests != 1 {
            failures.push(format!(
                "{} distinct transcript digests across {} replicas (expected 1)",
                self.distinct_digests, self.determinism_runs
            ));
        }
        failures
    }
}

/// Runs the reconcile benchmark.
///
/// # Panics
///
/// Panics if fleet deployment fails or a determinism replica thread
/// dies — both are harness bugs, not measurements.
#[must_use]
pub fn run_reconcile(
    nodes: usize,
    flaps: usize,
    horizon_days: usize,
    threads: usize,
) -> ReconcileReport {
    let started = Instant::now();
    let threads = threads.max(1);

    // Determinism sweep (doubles as the upgrade scenario): every fabric
    // mode × `threads` concurrent replicas must produce one digest.
    let modes = all_modes();
    let mut digests: Vec<String> = Vec::with_capacity(modes.len() * threads);
    let mut representative: Option<UpgradeOutcome> = None;
    for (_, config) in &modes {
        let outcomes: Vec<UpgradeOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let config = config.clone();
                    s.spawn(move || run_upgrade_scenario(nodes, config))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("determinism replica"))
                .collect()
        });
        for outcome in outcomes {
            digests.push(outcome.digest.clone());
            representative.get_or_insert(outcome);
        }
    }
    let determinism_runs = digests.len();
    digests.sort();
    digests.dedup();
    let distinct_digests = digests.len();
    let upgrade = representative.expect("at least one replica ran");

    // Drift halt / resume: the build pipeline for one canary silently
    // emits a different image; the halt must name it, and a corrected
    // re-declared spec must converge.
    let (drift_halted, diverging_named, drift_resumed, drift_resume_ticks) = {
        let mut world = SimWorld::new(RECONCILE_SEED ^ 1);
        let fleet = world
            .deploy_fleet(RECONCILE_DOMAIN, nodes.min(4), demo_app())
            .expect("drift fleet deploys");
        let next_spec = world.image_spec(RECONCILE_DOMAIN, &["web-service", "metrics-agent"]);
        let (_, target) = world.build(&next_spec).expect("target builds");
        let drift_spec = world.image_spec(RECONCILE_DOMAIN, &["web-service", "cryptominer"]);
        let drifting = fleet.nodes[1].bootstrap_address().to_owned();
        let mut upgrader = world.fleet_upgrader(&fleet, demo_app(), next_spec);
        upgrader.inject_drift(&drifting, drift_spec);
        let mut spec = FleetSpec::new(RECONCILE_DOMAIN, target);
        spec.tick_interval_ms = 60_000;
        let mut reconciler = world.reconciler(&fleet, spec.clone(), upgrader);
        reconciler.run_until_converged(20);
        let halted = reconciler.phase() == RolloutPhase::Halted;
        let named = reconciler.diverging().len();
        let halt_ticks = reconciler.ticks();
        reconciler.actuator_mut().clear_drift(&drifting);
        reconciler.set_spec(spec);
        let resumed = reconciler.run_until_converged(60);
        (halted, named, resumed, reconciler.ticks() - halt_ticks)
    };

    // Quarantine flapping: `flaps` partition/heal cycles; every cycle
    // must quarantine and then re-admit the whole flapped rack.
    let (flap_quarantines, flap_readmissions, flap_residual) = {
        let mut world = SimWorld::new(RECONCILE_SEED ^ 2);
        world.set_fault_seed(RECONCILE_FAULT_SEED);
        let fleet = world
            .deploy_fleet_in_subnets(RECONCILE_DOMAIN, &rack_split(nodes), demo_app())
            .expect("flap fleet deploys");
        let next_spec = world.image_spec(RECONCILE_DOMAIN, &["web-service"]);
        let upgrader = world.fleet_upgrader(&fleet, demo_app(), next_spec);
        let mut spec = FleetSpec::new(RECONCILE_DOMAIN, fleet.golden_measurement);
        spec.tick_interval_ms = 60_000;
        let mut reconciler = world.reconciler(&fleet, spec, upgrader);
        for _ in 0..flaps {
            let now_us = world.clock.now_us();
            world.install_fault_domain(
                FaultDomain::partition("rack-114", "203.0.114.")
                    .starting_at_us(now_us)
                    .healing_at_us(now_us + 300_000_000),
            );
            reconciler.run_ticks(3);
            reconciler.run_until_converged(10);
        }
        let quarantines = reconciler
            .transcript()
            .iter()
            .filter(|l| l.contains("] partitioned "))
            .count() as u64;
        let readmissions = reconciler
            .transcript()
            .iter()
            .filter(|l| l.contains("] readmit "))
            .count() as u64;
        (quarantines, readmissions, reconciler.quarantined().len())
    };

    // Renewal horizon: daily ticks; the chain must never be observed
    // past `not_after_ms`.
    let (renewals, expiry_violations) = {
        let mut world = SimWorld::new(RECONCILE_SEED ^ 3);
        let fleet = world
            .deploy_fleet(RECONCILE_DOMAIN, nodes.min(3), demo_app())
            .expect("renewal fleet deploys");
        let next_spec = world.image_spec(RECONCILE_DOMAIN, &["web-service"]);
        let upgrader = world.fleet_upgrader(&fleet, demo_app(), next_spec);
        let mut spec = FleetSpec::new(RECONCILE_DOMAIN, fleet.golden_measurement);
        spec.tick_interval_ms = 24 * 3_600_000;
        let mut reconciler = world.reconciler(&fleet, spec, upgrader);
        let mut violations = 0u64;
        for _ in 0..horizon_days {
            reconciler.tick();
            let now_ms = world.clock.now_us() / 1000;
            if reconciler.chain().leaf().not_after_ms <= now_ms {
                violations += 1;
            }
        }
        let renewals = reconciler
            .transcript()
            .iter()
            .filter(|l| l.contains("] renew not_after_ms="))
            .count() as u64;
        (renewals, violations)
    };

    ReconcileReport {
        nodes,
        flaps,
        horizon_days,
        replica_threads: threads,
        upgrade_converged: upgrade.converged,
        upgrade_convergence_ticks: upgrade.ticks,
        canary_first: upgrade.canary_first,
        leader_last: upgrade.leader_last,
        drift_halted,
        diverging_named,
        drift_resumed,
        drift_resume_ticks,
        flap_quarantines,
        flap_readmissions,
        flap_residual_quarantined: flap_residual,
        renewals,
        expiry_violations,
        fabric_modes: modes.len(),
        determinism_runs,
        distinct_digests,
        transcript_sha256: upgrade.digest,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

//! The `repro --trace` scenarios: three pinned-seed runs rendered as
//! assembled cross-node trace trees.
//!
//! 1. A clean attested browse — the happy-path hop sequence.
//! 2. A browse with the KDS forced to drop the first two dials
//!    ([`FaultPlan::fail_first`]) — the retries and backoffs land inside
//!    the `kds.fetch` span, so the critical path names the faulted hop.
//! 3. A fleet provisioning with one rack partitioned away — the SP
//!    quarantines the dark node and its flight-recorder dump rides along
//!    in the [`revelio::sp::ProvisionReport`].
//!
//! Every scenario is a pure function of the pinned seeds: same seeds,
//! byte-identical flame summaries and Chrome JSON regardless of thread
//! count or `REVELIO_FABRIC_MODE` (the determinism suite byte-compares
//! exactly this property).

use std::fmt::Write as _;

use revelio::kds_http::KDS_ADDRESS;
use revelio::node::demo_app;
use revelio::world::SimWorld;
use revelio_net::{FaultDomain, FaultPlan};
use revelio_telemetry::{FlightDump, Telemetry, TraceAssembler};

/// World seed for all three trace scenarios.
pub const TRACE_DEMO_SEED: u64 = 0x7EAC_ED00;
/// Fabric fault-PRNG seed for the faulted and partitioned scenarios.
/// `fail_first` and a full partition are deterministic regardless, but
/// pinning the streams keeps every latency sample reproducible too.
pub const TRACE_DEMO_FAULT_SEED: u64 = 0xC4A0_5004;

/// One rendered scenario: the assembled trace plus its derived views.
#[derive(Debug, Clone)]
pub struct TraceScenario {
    /// Scenario label (`clean_browse`, `faulted_browse`,
    /// `partitioned_provision`).
    pub label: &'static str,
    /// Trace id inside that run's registry.
    pub trace_id: u64,
    /// Finished spans in the tree.
    pub span_count: usize,
    /// Hop names along the critical path, `" > "`-joined.
    pub critical_path: String,
    /// The critical-path hop with the largest self-time, `(name, µs)`.
    pub dominant_hop: Option<(String, u64)>,
    /// Indented text flame summary (ends with the `critical path:` line).
    pub flame: String,
    /// Chrome `trace_event` JSON for chrome://tracing / Perfetto.
    pub chrome_json: String,
}

impl TraceScenario {
    fn from_tree(label: &'static str, tree: &TraceAssembler) -> Self {
        TraceScenario {
            label,
            trace_id: tree.trace_id(),
            span_count: tree.span_count(),
            critical_path: tree.critical_path_names(),
            dominant_hop: tree.dominant_hop(),
            flame: tree.flame_summary(),
            chrome_json: tree.export_chrome_trace(),
        }
    }

    /// One JSON object, hand-rolled like the other bench reports. The
    /// Chrome export is embedded verbatim (it is already JSON).
    #[must_use]
    pub fn to_json(&self) -> String {
        let (hop, hop_us) = match &self.dominant_hop {
            Some((name, us)) => (format!("\"{name}\""), us.to_string()),
            None => ("null".to_owned(), "null".to_owned()),
        };
        format!(
            "{{\"label\":\"{}\",\"trace_id\":{},\"spans\":{},\"critical_path\":\"{}\",\
             \"dominant_hop\":{hop},\"dominant_self_us\":{hop_us},\"chrome\":{}}}",
            self.label, self.trace_id, self.span_count, self.critical_path, self.chrome_json,
        )
    }
}

/// The full `--trace` deliverable: three scenarios plus the partitioned
/// run's quarantine forensics.
#[derive(Debug, Clone)]
pub struct TraceDemoReport {
    pub clean: TraceScenario,
    pub faulted: TraceScenario,
    pub provision: TraceScenario,
    /// Nodes quarantined during the partitioned provisioning.
    pub quarantined: usize,
    /// Flight-recorder dump of the first quarantined node: the faults it
    /// saw, its retries, and the quarantine verdict.
    pub quarantine_flight: Option<FlightDump>,
}

impl TraceDemoReport {
    /// The whole report as one JSON object (`BENCH_trace.json`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let flight = self
            .quarantine_flight
            .as_ref()
            .map_or_else(|| "null".to_owned(), FlightDump::to_json);
        format!(
            "{{\"seed\":{},\"fault_seed\":{},\"scenarios\":[{},{},{}],\
             \"quarantined\":{},\"quarantine_flight\":{flight}}}",
            TRACE_DEMO_SEED,
            TRACE_DEMO_FAULT_SEED,
            self.clean.to_json(),
            self.faulted.to_json(),
            self.provision.to_json(),
            self.quarantined,
        )
    }

    /// Human-readable rendering: flame summaries, dominant hops, and the
    /// quarantine dump — what `repro --trace` prints and CI greps.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for scenario in [&self.clean, &self.faulted, &self.provision] {
            let _ = writeln!(out, "=== {} ===", scenario.label);
            out.push_str(&scenario.flame);
            if let Some((name, us)) = &scenario.dominant_hop {
                let _ = writeln!(out, "dominant hop: {name} ({:.3} ms)", *us as f64 / 1000.0);
            }
            out.push('\n');
        }
        let _ = writeln!(out, "=== quarantine forensics ===");
        let _ = writeln!(out, "quarantined nodes: {}", self.quarantined);
        match &self.quarantine_flight {
            Some(dump) => out.push_str(&dump.render()),
            None => out.push_str("no flight dump (nothing quarantined)\n"),
        }
        out
    }
}

/// The last finished trace whose primary root span is named `root_name`.
/// "Last" because setup traffic (fleet deployment) allocates earlier
/// trace ids than the browse under scrutiny.
fn last_trace_with_root(telemetry: &Telemetry, root_name: &str) -> Option<TraceAssembler> {
    let mut found = None;
    for trace_id in telemetry.trace_ids() {
        let tree = telemetry.assemble_trace(trace_id);
        let is_match = tree
            .roots()
            .first()
            .and_then(|&root| tree.spans().iter().find(|s| s.id == root))
            .is_some_and(|span| span.name == root_name);
        if is_match {
            found = Some(tree);
        }
    }
    found
}

fn browse_world() -> (SimWorld, revelio::extension::WebExtension) {
    let mut world = SimWorld::new(TRACE_DEMO_SEED);
    let fleet = world
        .deploy_fleet("pad.example.org", 2, demo_app())
        .expect("trace demo fleet deploys");
    let extension = world.extension();
    extension.register_site("pad.example.org", vec![fleet.golden_measurement]);
    (world, extension)
}

/// Scenario 1: a clean cold attested browse.
fn clean_browse() -> TraceScenario {
    let (world, extension) = browse_world();
    let browse = extension.browse_classified("pad.example.org", "/");
    browse.result.expect("clean browse is attested");
    let tree =
        last_trace_with_root(&world.telemetry, "browse").expect("the browse recorded a trace");
    TraceScenario::from_tree("clean_browse", &tree)
}

/// Scenario 2: the KDS drops the first two dials. The extension's VCEK
/// fetch retries under the same `kds.fetch` span, so the two timeouts
/// and backoffs are that hop's self-time and the critical path names it.
fn faulted_browse() -> TraceScenario {
    let (world, extension) = browse_world();
    world.set_fault_seed(TRACE_DEMO_FAULT_SEED);
    world.set_fault_plan(KDS_ADDRESS, FaultPlan::fail_first(2));
    let browse = extension.browse_classified("pad.example.org", "/");
    browse.result.expect("retries ride through the KDS faults");
    let tree = last_trace_with_root(&world.telemetry, "browse")
        .expect("the faulted browse recorded a trace");
    TraceScenario::from_tree("faulted_browse", &tree)
}

/// Scenario 3: one rack is partitioned away during provisioning; the SP
/// quarantines the dark node and attaches its flight dump.
fn partitioned_provision() -> (TraceScenario, usize, Option<FlightDump>) {
    let mut world = SimWorld::new(TRACE_DEMO_SEED);
    world.set_fault_seed(TRACE_DEMO_FAULT_SEED);
    world.install_fault_domain(FaultDomain::partition(
        "rack-114",
        &SimWorld::subnet_prefix(114),
    ));
    let fleet = world
        .deploy_fleet_in_subnets("pad.example.org", &[(113, 3), (114, 1)], demo_app())
        .expect("the fleet survives minus the dark rack");
    let quarantined = fleet.provision.quarantined.len();
    let dump = fleet
        .provision
        .quarantined
        .first()
        .and_then(|q| q.flight.clone());
    let tree = last_trace_with_root(&world.telemetry, "world.deploy_fleet")
        .expect("deployment recorded a trace");
    (
        TraceScenario::from_tree("partitioned_provision", &tree),
        quarantined,
        dump,
    )
}

/// Runs all three scenarios. Pure function of the pinned seeds.
#[must_use]
pub fn run_trace_demo() -> TraceDemoReport {
    let clean = clean_browse();
    let faulted = faulted_browse();
    let (provision, quarantined, quarantine_flight) = partitioned_provision();
    TraceDemoReport {
        clean,
        faulted,
        provision,
        quarantined,
        quarantine_flight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_browse_walks_the_attestation_hops() {
        let scenario = clean_browse();
        assert!(
            scenario
                .critical_path
                .starts_with("browse > browse.attestation"),
            "critical path was {}",
            scenario.critical_path
        );
        let names: Vec<&str> = scenario.flame.lines().collect();
        let flame = names.join("\n");
        for hop in ["browse", "tls.handshake", "http.server", "kds.fetch"] {
            assert!(flame.contains(hop), "flame summary misses {hop}:\n{flame}");
        }
    }

    #[test]
    fn faulted_browse_blames_the_kds_hop() {
        let scenario = faulted_browse();
        let (hop, self_us) = scenario.dominant_hop.expect("faulted trace has hops");
        assert_eq!(
            hop, "kds.fetch",
            "critical path: {}",
            scenario.critical_path
        );
        // Two timeouts plus backoffs are way beyond the modelled 427 ms
        // round trip of a clean fetch.
        assert!(self_us > 1_000_000, "kds.fetch self-time {self_us} µs");
        assert!(scenario.critical_path.contains("kds.fetch"));
    }

    #[test]
    fn partitioned_provision_carries_a_flight_dump() {
        let (scenario, quarantined, dump) = partitioned_provision();
        assert_eq!(quarantined, 1);
        let dump = dump.expect("the quarantined node dumped its ring");
        let rendered = dump.render();
        assert!(rendered.contains("quarantined at"), "dump:\n{rendered}");
        assert!(
            dump.events.iter().any(|e| e.kind == "fault"),
            "the dark node saw its injected faults"
        );
        assert!(
            scenario.critical_path.contains("sp."),
            "path: {}",
            scenario.critical_path
        );
    }

    #[test]
    fn report_json_and_render_are_complete() {
        let report = run_trace_demo();
        let json = report.to_json();
        for key in [
            "\"scenarios\"",
            "\"clean_browse\"",
            "\"faulted_browse\"",
            "\"partitioned_provision\"",
            "\"quarantine_flight\"",
            "\"traceEvents\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let text = report.render();
        assert!(text.contains("critical path: browse"));
        assert!(text.contains("dominant hop: kds.fetch"));
        assert!(text.contains("quarantined nodes: 1"));
    }
}

//! Regenerates every table and figure of the paper's evaluation (§6) and
//! prints them next to the paper's reported numbers.
//!
//! ```text
//! cargo run --release -p revelio-bench --bin repro           # everything
//! cargo run --release -p revelio-bench --bin repro -- --table1
//! ```

use revelio_bench::{
    cert_strategy_ablation, fleet_dimensions_from_env, fleet_trials_from_env,
    reconcile_dimensions_from_env, run_chaos_column, run_fabric_bench, run_fig5, run_fig6,
    run_fleet_scaling, run_ratls_ablation, run_reconcile, run_retry_ablation, run_swarm,
    run_table1, run_table2, run_table3, run_telemetry, run_trace_demo, run_verity_ablation,
    swarm_dimensions_from_env, RECONCILE_FAULT_SEED, RECONCILE_SEED, SCALE, TRACE_DEMO_FAULT_SEED,
    TRACE_DEMO_SEED,
};

const KNOWN_FLAGS: &[&str] = &[
    "--table1",
    "--fig5",
    "--fig6",
    "--table2",
    "--table3",
    "--ablations",
    "--telemetry",
    "--fleet",
    "--chaos",
    "--trace",
    "--swarm",
    "--reconcile",
];

/// The default partition seed of the chaos column (the CI chaos job
/// overrides it via `REVELIO_CHAOS_SEED`).
const DEFAULT_CHAOS_SEED: u64 = 0xC4A0_5004;

fn wants(args: &[String], flag: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a == flag)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(unknown) = args.iter().find(|a| !KNOWN_FLAGS.contains(&a.as_str())) {
        eprintln!("error: unknown flag {unknown:?}");
        eprintln!("usage: repro [{}]", KNOWN_FLAGS.join(" | "));
        std::process::exit(1);
    }
    println!("Revelio reproduction — paper evaluation regeneration");
    println!(
        "(simulated sizes are 1/{SCALE} of the paper's; modelled latencies are paper-scale)\n"
    );

    if wants(&args, "--table1") {
        table1();
    }
    if wants(&args, "--fig5") {
        fig5();
    }
    if wants(&args, "--fig6") {
        fig6();
    }
    if wants(&args, "--table2") {
        table2();
    }
    if wants(&args, "--table3") {
        table3();
    }
    if wants(&args, "--ablations") {
        ablations();
    }
    if wants(&args, "--telemetry") {
        telemetry();
    }
    // The fleet benchmark spawns OS-thread fleets and takes a while at
    // full size, so it only runs when asked for.
    if args.iter().any(|a| a == "--fleet") {
        fleet();
    }
    // The chaos column re-runs the fleet pipeline three times, so it is
    // opt-in too; the CI chaos job invokes it per pinned seed.
    if args.iter().any(|a| a == "--chaos") {
        chaos();
    }
    // The causal-trace demo deploys three pinned-seed worlds; opt-in like
    // the other fleet-scale runs. CI uploads its artifacts and greps the
    // printed hop sequences.
    if args.iter().any(|a| a == "--trace") {
        trace();
    }
    // The swarm drives a million monitored sessions at full size, so it
    // only runs when asked for; the CI smoke job shrinks it via
    // `REVELIO_SWARM_SESSIONS`.
    if args.iter().any(|a| a == "--swarm") {
        swarm();
    }
    // The reconcile benchmark replicates a full rolling upgrade across
    // OS threads and fabric modes plus a 200-day renewal horizon, so it
    // only runs when asked for; the CI smoke job shrinks it via the
    // `REVELIO_RECONCILE_*` dimensions.
    if args.iter().any(|a| a == "--reconcile") {
        reconcile();
    }
}

fn table1() {
    println!("== Table 1: Revelio-imposed delays on first boot ==");
    println!(
        "{:<22} {:>10} {:>10} {:>9} {:>9}   paper (BN/CP)",
        "step", "BN ms", "CP ms", "BN %", "CP %"
    );
    let variants = run_table1();
    let bn = &variants[0].report;
    let cp = &variants[1].report;
    let paper: &[(&str, &str)] = &[
        ("dm-crypt setup", "611 / 481 ms, 2.76 / 4.94 %"),
        ("dm-verity setup", "219 / 194 ms, 0.97 / 1.94 %"),
        ("dm-verity verify", "4680 / 3340 ms, 25.94 / 48.61 %"),
        ("identity creation", "123 / 132 ms, 0.54 / 1.31 %"),
    ];
    for (step, paper_row) in paper {
        let bn_ms = bn.step_ms(step).unwrap_or(0.0);
        let cp_ms = cp.step_ms(step).unwrap_or(0.0);
        let bn_pct = bn.overhead_percent(step).unwrap_or(0.0);
        let cp_pct = cp.overhead_percent(step).unwrap_or(0.0);
        println!(
            "{step:<22} {bn_ms:>10.0} {cp_ms:>10.0} {bn_pct:>8.2}% {cp_pct:>8.2}%   {paper_row}"
        );
    }
    println!(
        "{:<22} {:>10.0} {:>10.0}   (paper: 22725 / 10211 ms)\n",
        "total boot",
        bn.total_ms(),
        cp.total_ms()
    );
}

fn fig5() {
    println!("== Fig. 5: dm-crypt I/O latency (4 KiB blocks) ==");
    let sizes: Vec<usize> = (0..6).map(|i| (1 << i) << 20).collect(); // 1..32 MiB
    for (label, write) in [("read", false), ("write", true)] {
        println!("-- {label} --");
        println!(
            "{:>10} {:>12} {:>12} {:>10}   paper avg overhead: read 26.32%, write 12.03%",
            "size", "plain ms", "crypt ms", "overhead"
        );
        let points = run_fig5(&sizes, write);
        let mut overheads = Vec::new();
        for p in &points {
            overheads.push(p.overhead_percent());
            println!(
                "{:>9}M {:>12.2} {:>12.2} {:>9.1}%",
                p.total_bytes >> 20,
                p.plain_ms,
                p.crypt_ms,
                p.overhead_percent()
            );
        }
        let avg = overheads.iter().sum::<f64>() / overheads.len() as f64;
        println!("average {label} overhead: {avg:.1}% (sim-clock modelled disk + AES cost; deterministic)\n");
    }
}

fn fig6() {
    println!("== Fig. 6: dm-verity read latency ==");
    let sizes: Vec<usize> = (0..7).map(|i| (1 << i) * 256 * 1024).collect(); // 256K..16M
    println!(
        "{:>10} {:>12} {:>12} {:>10}   paper avg slowdown: 9.35x",
        "size", "plain ms", "verity ms", "slowdown"
    );
    let points = run_fig6(&sizes);
    let mut slowdowns = Vec::new();
    for p in &points {
        slowdowns.push(p.slowdown());
        println!(
            "{:>9}K {:>12.2} {:>12.2} {:>9.2}x",
            p.file_bytes >> 10,
            p.plain_ms,
            p.verity_ms,
            p.slowdown()
        );
    }
    let avg = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
    println!("average slowdown: {avg:.2}x\n");
}

fn table2() {
    println!("== Table 2: SSL certificate generation and distribution ==");
    let t = run_table2(3);
    println!("{:<34} {:>10}   paper", "operation", "ms");
    println!(
        "{:<34} {:>10.0}   17 ms",
        "attestation evidence retrieval", t.evidence_retrieval_ms
    );
    println!(
        "{:<34} {:>10.0}   13 ms",
        "attestation evidence validation", t.evidence_validation_ms
    );
    println!(
        "{:<34} {:>10.0}   2996 ms",
        "ssl certificate generation", t.certificate_generation_ms
    );
    println!(
        "{:<34} {:>10.0}   15 ms\n",
        "ssl certificate distribution", t.certificate_distribution_ms
    );
}

fn table3() {
    println!("== Table 3: browser-based remote attestation and validation ==");
    let t = run_table3();
    println!("{:<38} {:>10}   paper", "scenario", "ms");
    println!(
        "{:<38} {:>10.1}   5.2 ms",
        "network latency (rtt)", t.network_latency_ms
    );
    println!(
        "{:<38} {:>10.1}   100.9 ms",
        "plain http get", t.plain_get_ms
    );
    println!(
        "{:<38} {:>10.1}   778.9 ms (kds 427.3)",
        "http get + remote attestation (cold)", t.attested_get_ms
    );
    println!(
        "{:<38} {:>10.1}   (cached vcek, §6.4)",
        "http get + attestation (warm cache)", t.attested_get_warm_ms
    );
    println!(
        "{:<38} {:>10.1}   115.0 ms",
        "http get + connection validation", t.monitored_get_ms
    );
    println!("kds share of cold attestation: {:.1} ms\n", t.kds_ms);
}

fn ablations() {
    println!("== Ablation: dm-verity hash-block size (8 MiB volume) ==");
    println!("{:>12} {:>8} {:>14}", "hash block", "depth", "read-all ms");
    for p in run_verity_ablation(&[1024, 4096, 16384]) {
        println!(
            "{:>11}B {:>8} {:>14.2}",
            p.hash_block_size, p.depth, p.read_all_ms
        );
    }

    println!("\n== Ablation: shared certificate vs per-node issuance ==");
    println!(
        "{:>6} {:>14} {:>16} {:>18}",
        "fleet", "shared orders", "per-node orders", "weekly CA limit"
    );
    for fleet in [3usize, 10, 60] {
        let (n, shared, per_node, limit) = cert_strategy_ablation(fleet, 50);
        let verdict = if per_node > limit {
            "  <- rate-limited!"
        } else {
            ""
        };
        println!("{n:>6} {shared:>14} {per_node:>16} {limit:>18}{verdict}");
    }
    println!("(Let's Encrypt: 50 certificates per registered domain per week — §3.4.6)\n");

    println!("== Ablation: well-known fetch vs RA-TLS attestation (warm VCEK cache) ==");
    let (well_known_ms, ratls_ms) = run_ratls_ablation();
    println!("{:>24} {:>10.1} ms", "well-known fetch", well_known_ms);
    println!(
        "{:>24} {:>10.1} ms   (evidence inside the handshake, §7)",
        "ra-tls", ratls_ms
    );
    println!(
        "saved per attested access: {:.1} ms\n",
        well_known_ms - ratls_ms
    );

    println!("== Ablation: retry budget vs attestation tail latency under loss ==");
    println!("(KDS link dropping 55% of exchanges; 24 cold attested browses per budget)");
    println!(
        "{:>9} {:>10} {:>12} {:>12}",
        "attempts", "success", "p50 ms", "p95 ms"
    );
    for p in run_retry_ablation(&[1, 2, 4, 6], 0.55, 24) {
        println!(
            "{:>9} {:>7}/{:<2} {:>12.1} {:>12.1}",
            p.max_attempts, p.successes, p.samples, p.p50_ms, p.p95_ms
        );
    }
    println!("(small budgets give up; larger budgets convert losses into tail latency)\n");

    println!("== Scalability: SP provisioning latency vs fleet size (D3) ==");
    println!("{:>6} {:>16}", "nodes", "provision ms");
    for (n, ms) in run_fleet_scaling(&[1, 2, 4, 8, 16]) {
        println!("{n:>6} {ms:>16.0}");
    }
    println!("(one certificate order amortized across the fleet; per-node cost is attestation + distribution)\n");
}

fn telemetry() {
    println!("== Telemetry: sim-clock span breakdown of the attestation pipeline ==");
    println!("(two-node fleet, seed 42: deploy + provision, cold/warm/RA-TLS browses, one monitored request)\n");
    let registry = run_telemetry(42);
    print!("{}", registry.breakdown());

    let json_path = std::env::temp_dir().join("revelio-telemetry.jsonl");
    match std::fs::write(&json_path, registry.export_json_lines()) {
        Ok(()) => println!(
            "\nfull span + metric export (JSON lines): {}",
            json_path.display()
        ),
        Err(e) => println!("\n(could not write JSON export: {e})"),
    }
    println!(
        "spans recorded: {}; deterministic: equal seeds yield byte-identical exports\n",
        registry.span_count()
    );
}

fn chaos() {
    let seed = std::env::var("REVELIO_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_CHAOS_SEED);
    println!("== Chaos column: Table 2/3 figures under faults (seed {seed:#x}) ==");
    println!("(16-node fleet, 12 in subnet 113 + 4 in subnet 114; 'lossy' = 5% drop on 113,");
    println!(" 'partitioned' = subnet 114 dark; figures are deterministic per seed)");
    let rows = run_chaos_column(seed);
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "scenario",
        "retrieve ms",
        "validate ms",
        "quarant.",
        "generate ms",
        "attested ms",
        "monitored ms",
        "faults"
    );
    for row in &rows {
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>10} {:>12.1} {:>12.1} {:>12.1} {:>8}",
            row.scenario,
            row.timings.evidence_retrieval_ms,
            row.timings.evidence_validation_ms,
            row.quarantined,
            row.timings.certificate_generation_ms,
            row.attested_get_ms,
            row.monitored_get_ms,
            row.faults_injected
        );
    }
    let json = format!(
        "{{\"fault_seed\":{seed},\"rows\":[{}]}}\n",
        rows.iter()
            .map(revelio_bench::ChaosRow::to_json)
            .collect::<Vec<_>>()
            .join(",")
    );
    match std::fs::write("BENCH_chaos.json", json) {
        Ok(()) => println!("report written: BENCH_chaos.json\n"),
        Err(e) => println!("(could not write BENCH_chaos.json: {e})\n"),
    }
}

fn fleet() {
    let (nodes, threads, dials) = fleet_dimensions_from_env();
    let trials = fleet_trials_from_env();
    println!("== Fleet benchmark: single-lock / sharded / snapshot fabric ==");
    println!(
        "({nodes} nodes, {threads} OS threads, {dials} dials/thread, best of {trials} \
         interleaved trials/side; headline figures are measured wall-clock throughput \
         and per-browse latency on this host — the lock-free snapshot path acquires no \
         locks, so only the wall clock can see it; the per-shard serialization model is \
         the secondary, machine-independent column)"
    );
    let report = run_fabric_bench(nodes, threads, dials, trials);
    println!(
        "{:<12} {:>8} {:>12} {:>9} {:>12} {:>16} {:>14} {:>10} {:>10} {:>13} {:>14}",
        "fabric",
        "shards",
        "provision ms",
        "mem/node",
        "retire spins",
        "wall dials/sec",
        "browses/sec",
        "p50 µs",
        "p99 µs",
        "lock acq",
        "model d/sec"
    );
    for side in [&report.single, &report.sharded, &report.snapshot] {
        println!(
            "{:<12} {:>8} {:>12.3} {:>8}B {:>12} {:>16.0} {:>14.0} {:>10.2} {:>10.2} {:>13} {:>14.0}",
            side.label,
            side.shards,
            side.provision_ms,
            side.memory_per_node_bytes,
            side.retire_spins,
            side.wall_dial_throughput_per_sec,
            side.browse_throughput_per_sec,
            side.browse_p50_us,
            side.browse_p99_us,
            side.lock_acquisitions,
            side.dial_throughput_per_sec
        );
    }
    println!(
        "wall-clock dial speedup (snapshot vs single-lock): {:.2}x  \
         [modelled sharded-vs-single: {:.2}x]",
        report.wall_dial_speedup(),
        report.dial_speedup()
    );
    let o = &report.overhead;
    println!(
        "telemetry overhead (tracing+recorder on vs off, snapshot fabric): \
         dial p50 {:.2} -> {:.2} µs ({:+.1}%), mean {:.2} -> {:.2} µs ({:+.1}%); \
         {} spans sampled, {} recorder events over {} dials",
        o.dial_p50_off_us,
        o.dial_p50_on_us,
        o.p50_overhead_percent(),
        o.dial_mean_off_us,
        o.dial_mean_on_us,
        o.mean_overhead_percent(),
        o.spans_recorded,
        o.recorder_events,
        o.dials_total
    );
    match std::fs::write("BENCH_fabric.json", report.to_json()) {
        Ok(()) => println!("report written: BENCH_fabric.json\n"),
        Err(e) => println!("(could not write BENCH_fabric.json: {e})\n"),
    }
    // `REVELIO_FLEET_GATE=1` asserts every wall-clock gate;
    // `=provision` asserts the write-side gates only (the 100k
    // provisioning smoke — the read bands are gated at the small dims
    // where they are calibrated).
    let gate_mode = std::env::var("REVELIO_FLEET_GATE").unwrap_or_default();
    let failures = match gate_mode.as_str() {
        "1" => Some(report.gate_failures()),
        "provision" => Some(report.write_gate_failures()),
        _ => None,
    };
    if let Some(failures) = failures {
        if failures.is_empty() {
            if gate_mode == "provision" {
                println!(
                    "fleet gates: PASS (batched provisioning within 2x of single-lock; \
                     read-path bands gated at the calibrated small dims)\n"
                );
            } else {
                println!(
                    "fleet gates: PASS (snapshot keeps up with single-lock on wall-clock \
                     dials, browse p50/p99 not worse, batched provisioning within 2x of \
                     single-lock, tracing overhead within the 10% budget, within \
                     documented noise bands)\n"
                );
            }
        } else {
            for failure in &failures {
                eprintln!("fleet gate FAILED: {failure}");
            }
            std::process::exit(1);
        }
    }
}

fn swarm() {
    let (sessions, threads, nodes) = swarm_dimensions_from_env();
    println!("== Swarm: staged verification at browser-population scale ==");
    println!(
        "({sessions} monitored sessions, {threads} OS threads, {nodes}-node shared-cert \
         fleet; every session re-runs the staged verify — a verdict-cache hit — plus one \
         monitored GET; the cold baseline is a fresh extension paying the KDS round trip \
         and the batched signature check)"
    );
    let report = run_swarm(sessions, threads, nodes);
    println!("{:<34} {:>14} {:>14}", "phase", "p50 µs", "p99 µs");
    println!(
        "{:<34} {:>14.2} {:>14.2}",
        "cold verify (fresh extension)", report.cold_verify_p50_us, report.cold_verify_p99_us
    );
    println!(
        "{:<34} {:>14.2} {:>14.2}",
        "cache-hit session (verify + GET)", report.session_p50_us, report.session_p99_us
    );
    println!(
        "verify throughput: {:.0} sessions/sec over {:.2} s wall",
        report.verify_throughput_per_sec, report.hot_elapsed_secs
    );
    println!(
        "verdict cache: {} hits, {} misses (hit rate {:.4}), {} invalidations",
        report.cache_hits, report.cache_misses, report.cache_hit_rate, report.cache_invalidations
    );
    println!(
        "hot-phase signature verifications: {} (line-rate claim: 0); \
         TLS-binding checks: {} (one per session)",
        report.signature_checks, report.tls_binding_checks
    );
    println!("transcript sha256: {}", report.transcript_sha256);
    match std::fs::write("BENCH_swarm.json", report.to_json()) {
        Ok(()) => println!("report written: BENCH_swarm.json\n"),
        Err(e) => println!("(could not write BENCH_swarm.json: {e})\n"),
    }
    if std::env::var("REVELIO_SWARM_GATE").as_deref() == Ok("1") {
        let failures = report.gate_failures();
        if failures.is_empty() {
            println!(
                "swarm gates: PASS (cache-hit session p50 beats cold-verify p50, zero \
                 hot-phase signature verifications, hit rate >= 0.99, TLS binding checked \
                 per session)\n"
            );
        } else {
            for failure in &failures {
                eprintln!("swarm gate FAILED: {failure}");
            }
            std::process::exit(1);
        }
    }
}

fn reconcile() {
    let (nodes, flaps, horizon_days, threads) = reconcile_dimensions_from_env();
    println!(
        "== Reconcile: control-plane convergence under pinned fault seeds \
         (seed {RECONCILE_SEED:#x}, fault seed {RECONCILE_FAULT_SEED:#x}) =="
    );
    println!(
        "({nodes}-node fleet across two racks; rolling upgrade under a scheduled-heal \
         partition, replicated {threads}x per fabric mode; seeded drift halt + resume; \
         {flaps} quarantine flap cycles; {horizon_days}-day renewal horizon)"
    );
    let report = run_reconcile(nodes, flaps, horizon_days, threads);
    println!(
        "rolling upgrade: converged={} in {} ticks (canary-first={}, leader-last={})",
        report.upgrade_converged,
        report.upgrade_convergence_ticks,
        report.canary_first,
        report.leader_last
    );
    println!(
        "drift: halted={} naming {} diverging node(s); corrected spec converged={} \
         in {} ticks",
        report.drift_halted,
        report.diverging_named,
        report.drift_resumed,
        report.drift_resume_ticks
    );
    println!(
        "flapping: {} partition quarantines, {} re-admissions, {} left off the roster",
        report.flap_quarantines, report.flap_readmissions, report.flap_residual_quarantined
    );
    println!(
        "renewal: {} renewals across {} daily ticks, {} expiry violations",
        report.renewals, report.horizon_days, report.expiry_violations
    );
    println!(
        "determinism: {} distinct digest(s) across {} replicas ({} fabric modes x {} threads)",
        report.distinct_digests,
        report.determinism_runs,
        report.fabric_modes,
        report.replica_threads
    );
    println!("transcript sha256: {}", report.transcript_sha256);
    println!("harness wall time: {:.1} s", report.wall_secs);
    match std::fs::write("BENCH_reconcile.json", report.to_json()) {
        Ok(()) => println!("report written: BENCH_reconcile.json\n"),
        Err(e) => println!("(could not write BENCH_reconcile.json: {e})\n"),
    }
    if std::env::var("REVELIO_RECONCILE_GATE").as_deref() == Ok("1") {
        let failures = report.gate_failures();
        if failures.is_empty() {
            println!(
                "reconcile gates: PASS (canary-first convergence, drift halt names \
                 divergents, every healed node re-admitted, no cert past not_after_ms, \
                 byte-identical transcripts across threads and fabric modes)\n"
            );
        } else {
            for failure in &failures {
                eprintln!("reconcile gate FAILED: {failure}");
            }
            std::process::exit(1);
        }
    }
}

fn trace() {
    println!("== Causal traces: attestation-path flame summaries (seed {TRACE_DEMO_SEED:#x}, fault seed {TRACE_DEMO_FAULT_SEED:#x}) ==");
    println!("(clean browse; browse with the KDS dropping its first two dials; fleet");
    println!(" provisioning with one rack partitioned — each assembled from the shared");
    println!(" registry into one cross-node tree; byte-identical per seed)\n");
    let report = run_trace_demo();
    print!("{}", report.render());
    match std::fs::write("BENCH_trace.json", report.to_json()) {
        Ok(()) => println!("report written: BENCH_trace.json"),
        Err(e) => println!("(could not write BENCH_trace.json: {e})"),
    }
    let flight_json = report
        .quarantine_flight
        .as_ref()
        .map_or_else(|| "null".to_owned(), |dump| dump.to_json());
    match std::fs::write("FLIGHT_quarantine.json", flight_json) {
        Ok(()) => println!("quarantine flight dump written: FLIGHT_quarantine.json\n"),
        Err(e) => println!("(could not write FLIGHT_quarantine.json: {e})\n"),
    }
}

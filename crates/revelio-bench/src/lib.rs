//! Experiment implementations for every table and figure in the paper's
//! evaluation (§6), shared by the Criterion benches and the `repro`
//! binary.
//!
//! # Scaling
//!
//! The paper's disks are gigabytes; an in-memory reproduction runs the
//! *same code paths* at 1/[`SCALE`] size and uses a cost model whose
//! per-byte constants are multiplied by [`SCALE`], so modelled latencies
//! come out at paper scale while real execution stays laptop-sized. Shape
//! claims (what dominates, how costs scale, who wins) are invariant under
//! this transformation because every modelled cost is linear in bytes.
//! `EXPERIMENTS.md` records paper-vs-reproduced values.

pub mod fabric;
pub mod reconcile;
pub mod swarm;
pub mod trace_demo;

use std::sync::Arc;

pub use fabric::{
    fleet_dimensions_from_env, fleet_trials_from_env, run_fabric_bench, run_retry_ablation,
    FabricBenchReport, RetryAblationPoint, TelemetryOverheadReport, TRACE_SAMPLE_EVERY,
};
pub use reconcile::{
    reconcile_dimensions_from_env, run_reconcile, ReconcileReport, RECONCILE_DOMAIN,
    RECONCILE_FAULT_SEED, RECONCILE_SEED,
};
use revelio::node::demo_app;
use revelio::world::SimWorld;
use revelio_boot::firmware::FirmwareKind;
use revelio_boot::loader::{BootOptions, Hypervisor};
use revelio_boot::timing::{BootReport, CostModel};
use revelio_build::artifacts::CryptVolumeConfig;
use revelio_build::fstree::FsTree;
use revelio_build::image::{build_image, ImageSpec};
use revelio_net::clock::SimClock;
use revelio_storage::block::{BlockDevice, MemBlockDevice};
use revelio_storage::crypt::{CryptDevice, CryptParams};
use revelio_storage::probed::ProbedDevice;
use revelio_storage::verity::{VerityDevice, VerityParams, VerityTree};
use revelio_telemetry::{DeviceProbe, Telemetry};
use sev_snp::ids::GuestPolicy;
pub use swarm::{
    run_swarm, run_swarm_with_net, swarm_dimensions_from_env, SwarmReport, SWARM_DOMAIN, SWARM_SEED,
};
pub use trace_demo::{
    run_trace_demo, TraceDemoReport, TraceScenario, TRACE_DEMO_FAULT_SEED, TRACE_DEMO_SEED,
};

/// Size scale factor: simulated bytes × `SCALE` = paper bytes.
pub const SCALE: u64 = 64;

/// Modelled raw-disk sequential read cost, ns per byte (≈55 MB/s — the
/// paper testbed's virtio disk). The I/O experiments charge a sim clock
/// with these instead of reading the wall clock, so results are
/// machine-independent and reproducible byte-for-byte.
pub const DISK_READ_NS_PER_BYTE: f64 = 18.0;
/// Modelled raw-disk sequential write cost, ns per byte (≈27 MB/s).
pub const DISK_WRITE_NS_PER_BYTE: f64 = 36.0;
/// Modelled dm-verity hash verification cost per tree level touched, ns
/// per byte. Fitted so a depth-3 tree reads ≈9× slower than plain —
/// the paper's Fig. 6 average slowdown is 9.35×.
pub const VERITY_VERIFY_NS_PER_BYTE: f64 = 36.0;

/// The paper's cost model with per-byte constants multiplied by [`SCALE`]
/// (so a 1/64-size disk yields paper-scale modelled latencies).
#[must_use]
pub fn scaled_cost_model() -> CostModel {
    let base = CostModel::default();
    CostModel {
        hash_ns_per_byte: base.hash_ns_per_byte * SCALE as f64,
        cipher_ns_per_byte: base.cipher_ns_per_byte * SCALE as f64,
        ..base
    }
}

/// Builds a rootfs tree holding roughly `payload_bytes` of content.
#[must_use]
pub fn rootfs_of_size(payload_bytes: usize) -> FsTree {
    let mut tree = FsTree::new();
    let chunk = 1 << 20; // 1 MiB files
    let mut remaining = payload_bytes;
    let mut index = 0;
    while remaining > 0 {
        let size = remaining.min(chunk);
        // Compressible-ish but non-constant content.
        let content: Vec<u8> = (0..size).map(|i| ((i / 7) ^ (index * 31)) as u8).collect();
        tree.add_file(&format!("/usr/lib/blob-{index:04}"), content, 0o644)
            .expect("static path");
        remaining -= size;
        index += 1;
    }
    tree.add_file("/usr/sbin/service", b"service binary".to_vec(), 0o755)
        .expect("static path");
    tree
}

/// One Table 1 variant (Boundary Node or CryptPad server).
#[derive(Debug, Clone)]
pub struct Table1Variant {
    /// Variant label (`"BN"` / `"CP"`).
    pub label: &'static str,
    /// The boot report with modelled step latencies (paper scale).
    pub report: BootReport,
}

/// Runs the Table 1 experiment: first-boot timelines of the two images.
///
/// # Panics
///
/// Panics if image building or boot fails (a bug, not a benchmark result).
#[must_use]
pub fn run_table1() -> Vec<Table1Variant> {
    let mut world = SimWorld::new(100);

    // Boundary Node: 4 GiB paper rootfs (64 MiB simulated), many services.
    let bn_services: Vec<String> = (0..110).map(|i| format!("bn-svc-{i}")).collect();
    // CryptPad server: ~2.9 GiB paper rootfs, few services.
    let cp_services: Vec<String> = (0..20).map(|i| format!("cp-svc-{i}")).collect();

    let mut variants = Vec::new();
    for (label, rootfs_bytes, services) in [
        ("BN", (4u64 << 30) / SCALE, &bn_services),
        ("CP", (2_900u64 << 20) / SCALE, &cp_services),
    ] {
        let mut spec = ImageSpec::new(label, rootfs_of_size(rootfs_bytes as usize));
        spec.init.services = services.clone();
        spec.init.crypt_volume = Some(CryptVolumeConfig {
            partition_name: "data".into(),
            kdf_iterations: 1000,
        });
        // 84 MB paper volume, scaled.
        spec.data_blocks = (84 * 1024 * 1024 / SCALE) / spec.block_size as u64;
        let image = build_image(&spec).expect("image builds");
        let platform = world.new_platform();
        let vm = Hypervisor::new(FirmwareKind::MeasuredDirectBoot)
            .boot(
                &platform,
                &image,
                GuestPolicy::default(),
                BootOptions {
                    cost_model: scaled_cost_model(),
                    ..BootOptions::default()
                },
            )
            .expect("boot succeeds");
        variants.push(Table1Variant {
            label,
            report: vm.boot_report().clone(),
        });
    }
    variants
}

/// One point of the Fig. 5 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// Total I/O size in bytes (simulated scale).
    pub total_bytes: usize,
    /// Plain read/write wall time, ms.
    pub plain_ms: f64,
    /// Encrypted read/write wall time, ms.
    pub crypt_ms: f64,
}

impl Fig5Point {
    /// Overhead percentage of the encrypted path.
    #[must_use]
    pub fn overhead_percent(&self) -> f64 {
        (self.crypt_ms - self.plain_ms) / self.plain_ms * 100.0
    }
}

const FIG5_BLOCK: usize = 4096;

fn dd_write(device: &dyn BlockDevice, total: usize) {
    let buf = vec![0xa5u8; FIG5_BLOCK];
    for i in 0..(total / FIG5_BLOCK) as u64 {
        device.write_block(i, &buf).expect("in range");
    }
}

fn dd_read(device: &dyn BlockDevice, total: usize) {
    let mut buf = vec![0u8; FIG5_BLOCK];
    for i in 0..(total / FIG5_BLOCK) as u64 {
        device.read_block(i, &mut buf).expect("in range");
    }
}

/// Runs the Fig. 5 experiment: `dd`-style sequential I/O (4 KiB blocks)
/// over a plain device vs a dm-crypt volume, for each size in
/// `total_sizes`. `write` selects the write or read sweep.
///
/// Timings are read off a sim clock charged by [`DeviceProbe`]s (disk
/// cost on both paths, AES cost on top of the crypt path), not the wall
/// clock — the sweep is deterministic.
///
/// # Panics
///
/// Panics on device setup failure.
#[must_use]
pub fn run_fig5(total_sizes: &[usize], write: bool) -> Vec<Fig5Point> {
    let max = total_sizes.iter().copied().max().unwrap_or(FIG5_BLOCK);
    let blocks = (max / FIG5_BLOCK + 2) as u64;
    let clock = SimClock::new();
    let telemetry = Telemetry::new(clock.clone());
    let cipher_ns = CostModel::default().cipher_ns_per_byte;

    let plain = ProbedDevice::new(
        Arc::new(MemBlockDevice::new(FIG5_BLOCK, blocks)),
        DeviceProbe::new(
            telemetry.clone(),
            "fig5_plain",
            DISK_READ_NS_PER_BYTE,
            DISK_WRITE_NS_PER_BYTE,
        ),
    );
    let backing: Arc<dyn BlockDevice> = Arc::new(ProbedDevice::new(
        Arc::new(MemBlockDevice::new(FIG5_BLOCK, blocks + 1)),
        DeviceProbe::new(
            telemetry.clone(),
            "fig5_crypt_backing",
            DISK_READ_NS_PER_BYTE,
            DISK_WRITE_NS_PER_BYTE,
        ),
    ));
    // Paper config: aes-xts-plain64 + pbkdf2(1000).
    let params = CryptParams {
        iterations: 1000,
        salt: [7; 32],
    };
    CryptDevice::format(Arc::clone(&backing), b"bench key", &params).expect("format");
    // The crypt path pays the backing disk cost plus the cipher cost.
    let crypt = ProbedDevice::new(
        Arc::new(CryptDevice::open(backing, b"bench key", &params).expect("open")),
        DeviceProbe::new(telemetry.clone(), "fig5_crypt", cipher_ns, cipher_ns),
    );
    // Pre-fill for the read sweep.
    if !write {
        dd_write(&plain, max);
        dd_write(&crypt, max);
    }

    total_sizes
        .iter()
        .map(|&total| {
            let (_, plain_ms) = clock.time_ms(|| {
                if write {
                    dd_write(&plain, total);
                } else {
                    dd_read(&plain, total);
                }
            });
            let (_, crypt_ms) = clock.time_ms(|| {
                if write {
                    dd_write(&crypt, total);
                } else {
                    dd_read(&crypt, total);
                }
            });
            Fig5Point {
                total_bytes: total,
                plain_ms,
                crypt_ms,
            }
        })
        .collect()
}

/// One point of the Fig. 6 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Point {
    /// File size read, bytes.
    pub file_bytes: usize,
    /// Plain read wall time, ms.
    pub plain_ms: f64,
    /// Verity-verified read wall time, ms.
    pub verity_ms: f64,
}

impl Fig6Point {
    /// Slowdown factor of the verified path.
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        self.verity_ms / self.plain_ms
    }
}

/// Runs the Fig. 6 experiment: reading files of the given sizes from a
/// verity-protected volume vs a plain one.
///
/// Timings are read off a sim clock: both paths pay the modelled disk
/// cost, and the verity path pays an extra hash-verify cost per tree
/// level touched.
///
/// # Panics
///
/// Panics on device setup failure.
#[must_use]
pub fn run_fig6(file_sizes: &[usize]) -> Vec<Fig6Point> {
    let max = file_sizes.iter().copied().max().unwrap_or(4096);
    let blocks = (max / 4096 + 2) as u64;
    let clock = SimClock::new();
    let telemetry = Telemetry::new(clock.clone());
    let raw = Arc::new(MemBlockDevice::new(4096, blocks));
    dd_write(raw.as_ref(), max);
    let data = Arc::new(ProbedDevice::new(
        raw,
        DeviceProbe::new(
            telemetry.clone(),
            "fig6_data",
            DISK_READ_NS_PER_BYTE,
            DISK_WRITE_NS_PER_BYTE,
        ),
    ));
    let tree = VerityTree::build(
        data.as_ref(),
        VerityParams {
            hash_block_size: 4096,
            salt: [3; 32],
        },
    )
    .expect("tree builds");
    let depth = tree.depth();
    let root = tree.root_hash();
    let verity = ProbedDevice::new(
        Arc::new(VerityDevice::open(Arc::clone(&data) as _, tree, &root).expect("opens")),
        DeviceProbe::new(
            telemetry.clone(),
            "fig6_verity",
            VERITY_VERIFY_NS_PER_BYTE * (depth as f64 + 1.0),
            0.0,
        ),
    );

    file_sizes
        .iter()
        .map(|&size| {
            let (_, plain_ms) = clock.time_ms(|| dd_read(data.as_ref(), size));
            let (_, verity_ms) = clock.time_ms(|| dd_read(&verity, size));
            Fig6Point {
                file_bytes: size,
                plain_ms,
                verity_ms,
            }
        })
        .collect()
}

/// Table 2 result: the SP node's per-phase latencies (simulated ms).
#[must_use]
pub fn run_table2(fleet_size: usize) -> revelio::sp::SpTimings {
    let mut world = SimWorld::new(200);
    let fleet = world
        .deploy_fleet("service.example.org", fleet_size, demo_app())
        .expect("fleet deploys");
    fleet.provision.timings
}

/// Table 3 result rows (simulated ms).
#[derive(Debug, Clone, Copy)]
pub struct Table3 {
    /// Base network round trip.
    pub network_latency_ms: f64,
    /// Plain HTTPS page access (no extension).
    pub plain_get_ms: f64,
    /// First attested access (cold VCEK cache).
    pub attested_get_ms: f64,
    /// Of which, the KDS fetch.
    pub kds_ms: f64,
    /// Attested access with a warm VCEK cache.
    pub attested_get_warm_ms: f64,
    /// Monitored request on an attested session.
    pub monitored_get_ms: f64,
}

/// Runs the Table 3 experiment.
///
/// # Panics
///
/// Panics if deployment or attestation fails.
#[must_use]
pub fn run_table3() -> Table3 {
    let mut world = SimWorld::new(300);
    let fleet = world
        .deploy_fleet("pad.example.org", 1, demo_app())
        .expect("fleet deploys");
    let extension = world.extension();
    extension.register_site("pad.example.org", vec![fleet.golden_measurement]);

    let network_latency_ms = 2.0 * world.tuning.link_one_way_us as f64 / 1000.0;

    let (_, plain_get_ms) = world.clock.time_ms(|| {
        extension
            .browse_unprotected("pad.example.org", "/")
            .expect("plain get")
    });

    let cold = extension
        .browse("pad.example.org", "/")
        .expect("attested get");
    let warm = extension.browse("pad.example.org", "/").expect("warm get");

    let mut session = extension
        .open_monitored("pad.example.org")
        .expect("monitored session");
    let (_, monitored_get_ms) = world
        .clock
        .time_ms(|| session.request("/").expect("request"));

    Table3 {
        network_latency_ms,
        plain_get_ms,
        attested_get_ms: cold.timing.total_ms,
        kds_ms: cold.timing.kds_ms,
        attested_get_warm_ms: warm.timing.total_ms,
        monitored_get_ms,
    }
}

/// Ablation: verity hash-block size vs tree depth and per-read hash work.
#[derive(Debug, Clone, Copy)]
pub struct VerityAblationPoint {
    /// Hash block size, bytes.
    pub hash_block_size: usize,
    /// Tree depth.
    pub depth: usize,
    /// Wall time to read the whole volume verified, ms.
    pub read_all_ms: f64,
}

/// Runs the verity hash-block-size ablation over a fixed 8 MiB volume.
///
/// # Panics
///
/// Panics on device setup failure.
#[must_use]
pub fn run_verity_ablation(hash_block_sizes: &[usize]) -> Vec<VerityAblationPoint> {
    let total = 8 << 20;
    let clock = SimClock::new();
    let telemetry = Telemetry::new(clock.clone());
    let raw = Arc::new(MemBlockDevice::new(4096, (total / 4096) as u64));
    dd_write(raw.as_ref(), total);
    hash_block_sizes
        .iter()
        .map(|&hbs| {
            let data = Arc::new(ProbedDevice::new(
                Arc::clone(&raw) as _,
                DeviceProbe::new(
                    telemetry.clone(),
                    &format!("ablation_data_{hbs}"),
                    DISK_READ_NS_PER_BYTE,
                    DISK_WRITE_NS_PER_BYTE,
                ),
            ));
            let tree = VerityTree::build(
                data.as_ref(),
                VerityParams {
                    hash_block_size: hbs,
                    salt: [1; 32],
                },
            )
            .expect("tree builds");
            let depth = tree.depth();
            let root = tree.root_hash();
            let verity = ProbedDevice::new(
                Arc::new(VerityDevice::open(Arc::clone(&data) as _, tree, &root).expect("opens")),
                DeviceProbe::new(
                    telemetry.clone(),
                    &format!("ablation_verity_{hbs}"),
                    VERITY_VERIFY_NS_PER_BYTE * (depth as f64 + 1.0),
                    0.0,
                ),
            );
            let (_, read_all_ms) = clock.time_ms(|| dd_read(&verity, total));
            VerityAblationPoint {
                hash_block_size: hbs,
                depth,
                read_all_ms,
            }
        })
        .collect()
}

/// Ablation: shared certificate vs per-node issuance under CA rate limits.
/// Returns `(fleet_size, shared_cert_orders, per_node_orders, limit)`.
#[must_use]
pub fn cert_strategy_ablation(fleet_size: usize, limit: u32) -> (usize, u32, u32, u32) {
    // The shared strategy orders once regardless of fleet size; per-node
    // orders once per node and trips the limit beyond it.
    (fleet_size, 1, fleet_size as u32, limit)
}

/// Ablation: well-known-fetch attestation vs RA-TLS (evidence in the
/// handshake, §7), both with a warm VCEK cache. Returns
/// `(well_known_ms, ratls_ms)` per attested page access.
///
/// # Panics
///
/// Panics if deployment or attestation fails.
#[must_use]
pub fn run_ratls_ablation() -> (f64, f64) {
    let mut world = SimWorld::new(400);
    let fleet = world
        .deploy_fleet("pad.example.org", 1, demo_app())
        .expect("fleet deploys");
    let extension = world.extension();
    extension.register_site("pad.example.org", vec![fleet.golden_measurement]);
    // Warm the VCEK cache so both paths are KDS-free.
    extension
        .browse("pad.example.org", "/")
        .expect("warms cache");
    let well_known = extension
        .browse("pad.example.org", "/")
        .expect("fetch path");
    let ratls = extension
        .browse_ratls("pad.example.org", "/")
        .expect("ratls path");
    (well_known.timing.total_ms, ratls.timing.total_ms)
}

/// Scalability experiment (requirement D3): SP provisioning latency as the
/// fleet grows. Returns `(fleet_size, total_provision_ms)` pairs.
///
/// # Panics
///
/// Panics if deployment fails.
#[must_use]
pub fn run_fleet_scaling(sizes: &[usize]) -> Vec<(usize, f64)> {
    sizes
        .iter()
        .map(|&n| {
            let mut world = SimWorld::new(500 + n as u64);
            let clock = world.clock.clone();
            let t0 = clock.now_ms();
            let _fleet = world
                .deploy_fleet("scale.example.org", n, demo_app())
                .expect("fleet deploys");
            (n, clock.now_ms() - t0)
        })
        .collect()
}

/// Runs a full end-to-end scenario — deploy and provision a two-node
/// fleet, browse it cold, warm and over RA-TLS, one monitored request —
/// and returns the world's telemetry registry for export.
///
/// Everything is driven by the sim clock, so equal seeds yield
/// byte-identical exports.
///
/// # Panics
///
/// Panics if deployment or attestation fails.
#[must_use]
pub fn run_telemetry(seed: u64) -> Telemetry {
    let mut world = SimWorld::new(seed);
    let fleet = world
        .deploy_fleet("pad.example.org", 2, demo_app())
        .expect("fleet deploys");
    let extension = world.extension();
    extension.register_site("pad.example.org", vec![fleet.golden_measurement]);
    extension
        .browse("pad.example.org", "/")
        .expect("cold attested browse");
    extension
        .browse("pad.example.org", "/")
        .expect("warm attested browse");
    extension
        .browse_ratls("pad.example.org", "/")
        .expect("ratls browse");
    let mut session = extension
        .open_monitored("pad.example.org")
        .expect("monitored session");
    session.request("/").expect("monitored request");
    world.telemetry
}

/// The headline Table 2/3 figures of one fleet run under a fault
/// scenario — the ROADMAP "chaos column".
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Scenario label (`clean`, `lossy`, `partitioned`).
    pub scenario: &'static str,
    /// Table 2: per-phase SP timings over the *surviving* nodes.
    pub timings: revelio::sp::SpTimings,
    /// Nodes the SP quarantined during provisioning.
    pub quarantined: usize,
    /// Table 3: cold attested page access against the certified fleet,
    /// ms (the extension's retries ride through residual loss).
    pub attested_get_ms: f64,
    /// Table 3: one monitored request on the attested session, ms.
    pub monitored_get_ms: f64,
    /// Faults the fabric injected across the whole run.
    pub faults_injected: u64,
}

impl ChaosRow {
    /// One JSON object, hand-rolled like [`FabricBenchReport::to_json`].
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"scenario\":\"{}\",\"evidence_retrieval_ms\":{:.3},",
                "\"evidence_validation_ms\":{:.3},",
                "\"certificate_generation_ms\":{:.3},",
                "\"certificate_distribution_ms\":{:.3},",
                "\"quarantined\":{},\"attested_get_ms\":{:.3},",
                "\"monitored_get_ms\":{:.3},\"faults_injected\":{}}}"
            ),
            self.scenario,
            self.timings.evidence_retrieval_ms,
            self.timings.evidence_validation_ms,
            self.timings.certificate_generation_ms,
            self.timings.certificate_distribution_ms,
            self.quarantined,
            self.attested_get_ms,
            self.monitored_get_ms,
            self.faults_injected,
        )
    }
}

/// Runs the chaos column: the Table 2/3 headline figures re-measured
/// under calibrated loss and under a one-subnet partition, next to the
/// clean baseline. Every scenario deploys the same 16-node fleet
/// (12 nodes in subnet 113, 4 in subnet 114); `fault_seed` keys the
/// deterministic fault streams, so a pinned seed gives byte-identical
/// figures on every run and host.
///
/// # Panics
///
/// Panics if a scenario's surviving fleet cannot serve an attested page
/// (the partition-tolerance invariant the test suite pins).
#[must_use]
pub fn run_chaos_column(fault_seed: u64) -> Vec<ChaosRow> {
    use revelio::extension::BrowseVerdict;
    use revelio_net::{FaultDomain, FaultPlan};

    type Inject = fn(&SimWorld);
    let scenarios: [(&'static str, Inject); 3] = [
        ("clean", |_world| {}),
        ("lossy", |world| {
            // Calibrated loss over the main subnet: enough drops that
            // retry budgets are exercised, low enough that every node
            // survives provisioning for the pinned CI seeds.
            world.install_fault_domain(FaultDomain::degraded(
                "lossy-113",
                &SimWorld::subnet_prefix(113),
                FaultPlan {
                    drop_probability: 0.05,
                    jitter_us: 2_000,
                    ..FaultPlan::default()
                },
            ));
        }),
        ("partitioned", |world| {
            world.install_fault_domain(FaultDomain::partition(
                "rack-114",
                &SimWorld::subnet_prefix(114),
            ));
        }),
    ];

    scenarios
        .into_iter()
        .map(|(scenario, inject)| {
            let mut world = SimWorld::new(500);
            world.set_fault_seed(fault_seed);
            inject(&world);
            let fleet = world
                .deploy_fleet_in_subnets("pad.example.org", &[(113, 12), (114, 4)], demo_app())
                .expect("survivors provision");
            let extension = world.extension();
            extension.register_site("pad.example.org", vec![fleet.golden_measurement]);
            let browse = extension.browse("pad.example.org", "/");
            assert_eq!(
                BrowseVerdict::classify(&browse),
                BrowseVerdict::Attested,
                "scenario {scenario}: certified fleet must serve: {browse:?}"
            );
            let cold = browse.expect("classified attested");
            let mut session = extension
                .open_monitored("pad.example.org")
                .expect("monitored session");
            // Monitored requests carry no internal retry; under residual
            // loss a dropped exchange closes the session, and the
            // extension's re-attesting reconnect re-establishes it.
            let mut monitored_get_ms = None;
            for _ in 0..12 {
                let (result, ms) = world.clock.time_ms(|| session.request("/"));
                match result {
                    Ok(_) => {
                        monitored_get_ms = Some(ms);
                        break;
                    }
                    Err(err) => {
                        assert!(
                            err.is_transient(),
                            "scenario {scenario}: monitored request reached a \
                             verdict error under pure network faults: {err:?}"
                        );
                        // Transient reconnect failures loop back around.
                        let _ = extension.reconnect(&mut session);
                    }
                }
            }
            let monitored_get_ms = monitored_get_ms.expect("monitored request under residual loss");
            ChaosRow {
                scenario,
                timings: fleet.provision.timings,
                quarantined: fleet.provision.quarantined.len(),
                attested_get_ms: cold.timing.total_ms,
                monitored_get_ms,
                faults_injected: world.net.faults_injected(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_contain_paper_steps_with_magnitudes() {
        let variants = run_table1();
        assert_eq!(variants.len(), 2);
        let bn = &variants[0].report;
        let cp = &variants[1].report;
        // dm-verity verify: BN ~4.7 s (paper 4.68), CP smaller (paper 3.34).
        let bn_verify = bn.step_ms("dm-verity verify").unwrap();
        let cp_verify = cp.step_ms("dm-verity verify").unwrap();
        assert!((3500.0..6000.0).contains(&bn_verify), "{bn_verify}");
        assert!(cp_verify < bn_verify);
        // dm-crypt setup in the paper's 400-800 ms band.
        let crypt = bn.step_ms("dm-crypt setup").unwrap();
        assert!((300.0..900.0).contains(&crypt), "{crypt}");
        // BN boots slower than CP overall (22.7 s vs 10.2 s in the paper).
        assert!(bn.total_ms() > 1.5 * cp.total_ms());
    }

    #[test]
    fn fig5_crypt_slower_than_plain() {
        let points = run_fig5(&[64 * 1024, 256 * 1024], false);
        for p in &points {
            assert!(p.crypt_ms > p.plain_ms, "{p:?}");
        }
        let writes = run_fig5(&[64 * 1024], true);
        assert!(writes[0].crypt_ms > writes[0].plain_ms);
    }

    #[test]
    fn fig5_is_deterministic() {
        let a = run_fig5(&[64 * 1024, 128 * 1024], false);
        let b = run_fig5(&[64 * 1024, 128 * 1024], false);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.plain_ms, y.plain_ms);
            assert_eq!(x.crypt_ms, y.crypt_ms);
        }
    }

    #[test]
    fn fig6_verity_slower_than_plain() {
        let points = run_fig6(&[256 * 1024, 1 << 20]);
        for p in &points {
            assert!(p.slowdown() > 1.0, "{p:?}");
        }
    }

    #[test]
    fn table2_generation_dominates() {
        let t = run_table2(3);
        assert!(t.certificate_generation_ms > t.evidence_retrieval_ms);
        assert!(t.certificate_generation_ms > t.certificate_distribution_ms);
    }

    #[test]
    fn table3_shape_matches_paper() {
        let t = run_table3();
        assert!(t.attested_get_ms > t.plain_get_ms);
        assert!(t.kds_ms > 0.5 * (t.attested_get_ms - t.plain_get_ms));
        assert!(t.attested_get_warm_ms < t.attested_get_ms - t.kds_ms + 50.0);
        assert!(t.monitored_get_ms > t.plain_get_ms - t.network_latency_ms);
    }

    #[test]
    fn telemetry_scenario_covers_the_pipeline() {
        let telemetry = run_telemetry(42);
        let breakdown = telemetry.breakdown();
        for span in [
            "boot",
            "kds.fetch",
            "acme.order",
            "tls.handshake",
            "browse",
            "sp.provision",
        ] {
            assert!(
                breakdown.contains(span),
                "missing {span} in breakdown:\n{breakdown}"
            );
        }
    }

    #[test]
    fn chaos_column_quarantines_the_partitioned_rack_deterministically() {
        let a = run_chaos_column(0xC4A0_5004);
        let b = run_chaos_column(0xC4A0_5004);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].scenario, "clean");
        assert_eq!(a[0].quarantined, 0);
        assert_eq!(a[0].faults_injected, 0);
        assert_eq!(a[2].scenario, "partitioned");
        assert_eq!(a[2].quarantined, 4);
        assert!(a[2].faults_injected > 0);
        // Quarantined nodes must not dilute the per-phase averages: the
        // partitioned run's validation figure matches the clean run's.
        assert!(
            (a[2].timings.evidence_validation_ms - a[0].timings.evidence_validation_ms).abs() < 1.0,
            "validation average diluted: {:?} vs {:?}",
            a[2].timings,
            a[0].timings
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_json(), y.to_json(), "chaos column not deterministic");
        }
    }

    #[test]
    fn verity_ablation_depth_decreases_with_block_size() {
        let points = run_verity_ablation(&[1024, 4096, 16384]);
        assert!(points[0].depth >= points[1].depth);
        assert!(points[1].depth >= points[2].depth);
    }
}

//! Fleet-scale fabric benchmark: the three-way sweep over single-lock,
//! sharded-locked, and epoch-snapshot `SimNet` read paths.
//!
//! The sharding and snapshot work exists so thousands of simulated nodes
//! can be driven from many OS threads without the fabric lock being the
//! thing we measure. This module provisions a fleet of listeners,
//! hammers it with concurrent dials and browses from N threads, and
//! reports aggregate dial throughput plus p50/p99 browse latency for all
//! three fabric modes (`NetConfig::shards = 1` is the legacy
//! single-mutex baseline kept for exactly this A/B; `ReadPath::Locked`
//! on the sharded array is the PR-3 fabric; `ReadPath::Snapshot` is the
//! lock-free clean path).
//!
//! The **headline** figures are measured wall-clock throughput and
//! latency: the lock-free snapshot path acquires no locks on clean
//! traffic, so the old `ShardLoad` serialization model — charge each
//! lock acquisition a fixed [`LOCK_HANDOFF_NS`] handoff, serialize the
//! hottest shard — has nothing left to count on the side that matters
//! and is demoted to a secondary column (it remains the deterministic,
//! machine-independent contrast between the two *locked* topologies).
//! The model keeps an ops floor of `dials / threads` so a side with zero
//! acquisitions still reports a finite modelled figure. The JSON report
//! ([`FabricBenchReport::to_json`]) feeds `BENCH_fabric.json`; the
//! `REVELIO_FLEET_GATE=1` CI mode asserts the wall-clock gates via
//! [`FabricBenchReport::gate_failures`], and `=provision` asserts the
//! write-side gates alone ([`FabricBenchReport::write_gate_failures`])
//! for the 100k provisioning smoke.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use revelio::world::{RetryTuning, SimWorld, WorldTuning};
use revelio_net::clock::SimClock;
use revelio_net::net::{ConnectionHandler, Listener, NetConfig, ReadPath, ShardLoad, SimNet};
use revelio_net::{FaultPlan, NetError};
use revelio_telemetry::{FlightRecorder, Telemetry, DEFAULT_FLIGHT_CAPACITY};

/// Modelled cost of one contended lock handoff, nanoseconds. The exact
/// figure only scales both sides of the A/B identically; the speedup is
/// the ratio of serialized acquisition counts and does not depend on it.
pub const LOCK_HANDOFF_NS: f64 = 100.0;

/// Deterministic span-sampling stride tracing uses on the data path:
/// every N-th dial opens a span; the rest pay only the sampling branch.
/// Control-path spans (attestation, provisioning) are never sampled —
/// they are rare and each one matters. The overhead column measures this
/// configuration, recorder enabled (a clean dial records no event, so
/// the recorder's data-path cost is one branch).
pub const TRACE_SAMPLE_EVERY: usize = 8;

/// Default fleet size (the acceptance bar is ≥100,000 nodes — "for the
/// masses" means provisioning must stay feasible at six figures, which
/// is exactly what the batched, structurally-shared write path buys).
pub const DEFAULT_FLEET_NODES: usize = 100_000;
/// Default OS thread count driving the fleet.
pub const DEFAULT_FLEET_THREADS: usize = 16;
/// Default dials per thread in the throughput phase.
pub const DEFAULT_FLEET_DIALS: usize = 20_000;
/// Default interleaved trials per side. Wall-clock noise on a shared CI
/// host only ever *adds* time, so the best of N interleaved trials
/// converges on the true cost; five keeps run-to-run gate decisions
/// stable without materially lengthening the benchmark.
pub const DEFAULT_FLEET_TRIALS: usize = 5;

/// Reads the fleet benchmark dimensions, honouring the
/// `REVELIO_FLEET_NODES` / `REVELIO_FLEET_THREADS` / `REVELIO_FLEET_DIALS`
/// environment overrides (the CI smoke job runs a reduced fleet).
#[must_use]
pub fn fleet_dimensions_from_env() -> (usize, usize, usize) {
    let read = |name: &str, default: usize| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(default)
    };
    (
        read("REVELIO_FLEET_NODES", DEFAULT_FLEET_NODES),
        read("REVELIO_FLEET_THREADS", DEFAULT_FLEET_THREADS),
        read("REVELIO_FLEET_DIALS", DEFAULT_FLEET_DIALS),
    )
}

/// Reads the per-side trial count, honouring `REVELIO_FLEET_TRIALS`.
#[must_use]
pub fn fleet_trials_from_env() -> usize {
    std::env::var("REVELIO_FLEET_TRIALS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_FLEET_TRIALS)
}

/// A modelled fleet node: answers any request with a small page.
struct FleetNode;

impl Listener for FleetNode {
    fn accept(&self) -> Box<dyn ConnectionHandler> {
        struct H;
        impl ConnectionHandler for H {
            fn on_message(&mut self, _m: &[u8]) -> Result<Vec<u8>, NetError> {
                Ok(b"<html>fleet page</html>".to_vec())
            }
        }
        Box::new(H)
    }
}

/// One fabric mode's measurements.
#[derive(Debug, Clone)]
pub struct FabricSideReport {
    /// `"single-lock"`, `"sharded"`, or `"snapshot"`.
    pub label: &'static str,
    /// Shard count the fabric ran with.
    pub shards: usize,
    /// Wall-clock time to bind the whole fleet (inside one
    /// `SimNet::batch` scope, as `deploy_fleet` provisions), ms.
    pub provision_ms: f64,
    /// Estimated routing-state footprint per node after provisioning,
    /// bytes. Deterministic (structure sizes and string lengths, no
    /// allocator artifacts), so trials agree on it exactly.
    pub memory_per_node_bytes: u64,
    /// Cumulative `revelio_net_snapshot_retire_spins` at the end of the
    /// side: iterations writers spent waiting for in-flight readers to
    /// drain. Zero on the locked sides (no snapshot cell); wall-clock
    /// sensitive, reported as the worst trial.
    pub retire_spins: u64,
    /// Total dials completed across all threads in the dial phase.
    pub dials_total: u64,
    /// Fabric lock acquisitions the dial phase performed (all shards).
    pub lock_acquisitions: u64,
    /// Acquisitions absorbed by the hottest shard — the serialization
    /// bottleneck (equals `lock_acquisitions` for the single lock).
    pub hottest_shard_acquisitions: u64,
    /// Aggregate dial throughput, dials/second, under the serialization
    /// model: serialized time = `max(hottest shard, acquisitions /
    /// threads, dials / threads)` events × [`LOCK_HANDOFF_NS`].
    /// Deterministic and machine-independent, but blind to lock-free
    /// reads (the snapshot side only hits the dials-per-thread ops
    /// floor) — a **secondary** figure since the snapshot path landed.
    pub dial_throughput_per_sec: f64,
    /// Aggregate dial throughput actually measured on this host,
    /// dials/second (wall clock). The **headline** figure: it is the
    /// only one that can see the lock-free fast path. On hosts with
    /// fewer cores than benchmark threads it partly measures
    /// time-slicing, which is why the CI gate compares sides run
    /// back-to-back on the same host rather than absolute numbers.
    pub wall_dial_throughput_per_sec: f64,
    /// Total browses (dial + request + response) in the browse phase.
    pub browses_total: u64,
    /// Aggregate browse throughput, browses/second (wall clock).
    pub browse_throughput_per_sec: f64,
    /// Median per-browse wall-clock latency, µs.
    pub browse_p50_us: f64,
    /// 99th-percentile per-browse wall-clock latency, µs.
    pub browse_p99_us: f64,
}

/// The telemetry-overhead column: the same dial workload on the
/// snapshot fabric with tracing (sampled spans, [`TRACE_SAMPLE_EVERY`])
/// and the flight recorder enabled, against the untraced baseline.
#[derive(Debug, Clone)]
pub struct TelemetryOverheadReport {
    /// Dials per side (both sides run the identical schedule).
    pub dials_total: u64,
    /// Spans the traced side recorded (`⌈dials/stride⌉` per thread).
    pub spans_recorded: u64,
    /// Flight-recorder events the traced side recorded — 0 on a clean
    /// run, because clean dials are not notable events.
    pub recorder_events: u64,
    /// Median per-dial wall-clock latency, tracing off, µs.
    pub dial_p50_off_us: f64,
    /// Median per-dial wall-clock latency, tracing + recorder on, µs.
    pub dial_p50_on_us: f64,
    /// Mean per-dial wall-clock latency, tracing off, µs.
    pub dial_mean_off_us: f64,
    /// Mean per-dial wall-clock latency, tracing + recorder on, µs —
    /// unlike the p50 this averages the sampled spans in.
    pub dial_mean_on_us: f64,
}

impl TelemetryOverheadReport {
    /// Tracing overhead on the dial p50, percent (negative = in the
    /// noise).
    #[must_use]
    pub fn p50_overhead_percent(&self) -> f64 {
        if self.dial_p50_off_us > 0.0 {
            (self.dial_p50_on_us / self.dial_p50_off_us - 1.0) * 100.0
        } else {
            0.0
        }
    }

    /// Tracing overhead on the dial mean, percent.
    #[must_use]
    pub fn mean_overhead_percent(&self) -> f64 {
        if self.dial_mean_off_us > 0.0 {
            (self.dial_mean_on_us / self.dial_mean_off_us - 1.0) * 100.0
        } else {
            0.0
        }
    }

    /// One JSON object (embedded in the fabric report).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"sample_every\":{},\"dials_total\":{},\"spans_recorded\":{},",
                "\"recorder_events\":{},\"dial_p50_off_us\":{:.3},",
                "\"dial_p50_on_us\":{:.3},\"dial_mean_off_us\":{:.3},",
                "\"dial_mean_on_us\":{:.3},\"p50_overhead_percent\":{:.2},",
                "\"mean_overhead_percent\":{:.2}}}"
            ),
            TRACE_SAMPLE_EVERY,
            self.dials_total,
            self.spans_recorded,
            self.recorder_events,
            self.dial_p50_off_us,
            self.dial_p50_on_us,
            self.dial_mean_off_us,
            self.dial_mean_on_us,
            self.p50_overhead_percent(),
            self.mean_overhead_percent(),
        )
    }
}

/// The three-way report the fleet benchmark emits.
#[derive(Debug, Clone)]
pub struct FabricBenchReport {
    /// Fleet size (listeners bound).
    pub nodes: usize,
    /// OS threads driving the fleet.
    pub threads: usize,
    /// Dials per thread in the dial phase.
    pub dials_per_thread: usize,
    /// Interleaved trials each side's best-of figures were taken over.
    pub trials: usize,
    /// The legacy single-mutex fabric.
    pub single: FabricSideReport,
    /// The sharded fabric with locked reads (the PR-3 fabric).
    pub sharded: FabricSideReport,
    /// The sharded fabric with the lock-free snapshot read path.
    pub snapshot: FabricSideReport,
    /// Tracing-on vs tracing-off dial latency on the snapshot fabric.
    pub overhead: TelemetryOverheadReport,
}

impl FabricBenchReport {
    /// Sharded-over-single aggregate dial throughput ratio under the
    /// serialization model. Deterministic across hosts, but it only
    /// contrasts the two *locked* topologies — a secondary figure.
    #[must_use]
    pub fn dial_speedup(&self) -> f64 {
        if self.single.dial_throughput_per_sec > 0.0 {
            self.sharded.dial_throughput_per_sec / self.single.dial_throughput_per_sec
        } else {
            0.0
        }
    }

    /// Snapshot-over-single measured wall-clock dial throughput ratio —
    /// the headline speedup.
    #[must_use]
    pub fn wall_dial_speedup(&self) -> f64 {
        if self.single.wall_dial_throughput_per_sec > 0.0 {
            self.snapshot.wall_dial_throughput_per_sec / self.single.wall_dial_throughput_per_sec
        } else {
            0.0
        }
    }

    /// The CI wall-clock gates: snapshot must keep up with the
    /// single-lock baseline on measured dial throughput, and its browse
    /// p50/p99 must not be worse (the sharded-mode regression this PR
    /// erases). Every comparison carries a small noise band: the sides
    /// run interleaved back-to-back on the same host, but when the host
    /// has fewer cores than benchmark threads the per-op costs sit at
    /// parity (lock elision pays off under real parallelism, not
    /// time-slicing) and a zero-tolerance comparison would flake on
    /// scheduler jitter. The band is well below the regressions the
    /// gates exist to catch — the sharded browse bug was a 10–20% hit.
    /// Returns one message per failed gate.
    ///
    /// The p99 gate gets a wider band than throughput and p50: the 99th
    /// percentile of a ~0.3µs operation is the single most
    /// scheduler-sensitive statistic measured here (a handful of
    /// timeslice boundaries land exactly in the top percent), while the
    /// regression it guards against — extra lock hops on the browse
    /// path — showed up as well over 1.3× on p99.
    #[must_use]
    pub fn gate_failures(&self) -> Vec<String> {
        const NOISE: f64 = 1.05;
        const NOISE_TAIL: f64 = 1.25;
        let mut failures = Vec::new();
        if self.snapshot.wall_dial_throughput_per_sec
            < self.single.wall_dial_throughput_per_sec / NOISE
        {
            failures.push(format!(
                "snapshot wall-clock dial throughput {:.0}/s below single-lock {:.0}/s",
                self.snapshot.wall_dial_throughput_per_sec,
                self.single.wall_dial_throughput_per_sec,
            ));
        }
        if self.snapshot.browse_p50_us > self.single.browse_p50_us * NOISE {
            failures.push(format!(
                "snapshot browse p50 {:.2}µs worse than single-lock {:.2}µs",
                self.snapshot.browse_p50_us, self.single.browse_p50_us,
            ));
        }
        if self.snapshot.browse_p99_us > self.single.browse_p99_us * NOISE_TAIL {
            failures.push(format!(
                "snapshot browse p99 {:.2}µs worse than single-lock {:.2}µs",
                self.snapshot.browse_p99_us, self.single.browse_p99_us,
            ));
        }
        failures.extend(self.write_gate_failures());
        // The observability bar: sampled tracing plus the enabled flight
        // recorder must cost ≤ 10% on the dial p50.
        if self.overhead.p50_overhead_percent() > 10.0 {
            failures.push(format!(
                "tracing overhead {:.1}% on dial p50 exceeds the 10% budget \
                 (off {:.2}µs, on {:.2}µs)",
                self.overhead.p50_overhead_percent(),
                self.overhead.dial_p50_off_us,
                self.overhead.dial_p50_on_us,
            ));
        }
        failures
    }

    /// The write-side gates alone (`REVELIO_FLEET_GATE=provision`): the
    /// 100k provisioning smoke runs with these instead of
    /// [`Self::gate_failures`]. The read-path dial/browse bands are
    /// calibrated — and gated — at the small CI dims, where the whole
    /// view fits in cache; at six-figure fleets every dial is a
    /// cold-cache tree walk on a 1-core runner and the wall-clock
    /// read comparisons measure the memory hierarchy, not the fabric.
    /// Provisioning cost is exactly what grows with the fleet, so it is
    /// the figure worth gating at scale.
    #[must_use]
    pub fn write_gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        // The write side: batched provisioning with structurally-shared
        // views must keep snapshot-mode fleet binding within 2× of the
        // single-lock baseline (it used to be ~25×). The 1 ms absolute
        // slack keeps the ratio meaningful on CI's reduced smoke fleets,
        // where both sides provision in microseconds and the ratio is
        // pure scheduler noise.
        if self.snapshot.provision_ms > self.single.provision_ms * 2.0 + 1.0 {
            failures.push(format!(
                "snapshot provision {:.3}ms exceeds 2x single-lock {:.3}ms",
                self.snapshot.provision_ms, self.single.provision_ms,
            ));
        }
        failures
    }

    /// Serializes the report as JSON (the `BENCH_fabric.json` payload).
    #[must_use]
    pub fn to_json(&self) -> String {
        let side = |s: &FabricSideReport| {
            format!(
                concat!(
                    "{{\"label\":\"{}\",\"shards\":{},\"provision_ms\":{:.3},",
                    "\"memory_per_node_bytes\":{},\"retire_spins\":{},",
                    "\"dials_total\":{},\"lock_acquisitions\":{},",
                    "\"hottest_shard_acquisitions\":{},",
                    "\"dial_throughput_per_sec\":{:.1},",
                    "\"wall_dial_throughput_per_sec\":{:.1},",
                    "\"browses_total\":{},\"browse_throughput_per_sec\":{:.1},",
                    "\"browse_p50_us\":{:.2},\"browse_p99_us\":{:.2}}}"
                ),
                s.label,
                s.shards,
                s.provision_ms,
                s.memory_per_node_bytes,
                s.retire_spins,
                s.dials_total,
                s.lock_acquisitions,
                s.hottest_shard_acquisitions,
                s.dial_throughput_per_sec,
                s.wall_dial_throughput_per_sec,
                s.browses_total,
                s.browse_throughput_per_sec,
                s.browse_p50_us,
                s.browse_p99_us,
            )
        };
        format!(
            concat!(
                "{{\"benchmark\":\"fabric_fleet\",\"nodes\":{},\"threads\":{},",
                "\"dials_per_thread\":{},\"trials\":{},\"headline\":\"wall_clock\",",
                "\"wall_dial_speedup\":{:.2},",
                "\"lock_handoff_ns\":{:.1},\"modelled_dial_speedup\":{:.2},",
                "\"single_lock\":{},\"sharded\":{},\"snapshot\":{},",
                "\"telemetry_overhead\":{}}}\n"
            ),
            self.nodes,
            self.threads,
            self.dials_per_thread,
            self.trials,
            self.wall_dial_speedup(),
            LOCK_HANDOFF_NS,
            self.dial_speedup(),
            side(&self.single),
            side(&self.sharded),
            side(&self.snapshot),
            self.overhead.to_json(),
        )
    }
}

fn node_address(i: usize) -> String {
    format!("node-{i}.fleet.test:443")
}

/// Per-shard acquisition delta between two [`ShardLoad`] snapshots.
fn dial_delta(before: &ShardLoad, after: &ShardLoad) -> ShardLoad {
    ShardLoad {
        per_shard: after
            .per_shard
            .iter()
            .zip(&before.per_shard)
            .map(|(a, b)| a - b)
            .collect(),
    }
}

/// Runs one fabric mode: provision `nodes` listeners, then a
/// dial-throughput phase and a browse-latency phase across `threads` OS
/// threads.
fn run_side(
    label: &'static str,
    shards: usize,
    read_path: ReadPath,
    nodes: usize,
    threads: usize,
    dials_per_thread: usize,
) -> FabricSideReport {
    let clock = SimClock::new();
    let net = SimNet::new(
        clock,
        NetConfig {
            default_one_way_us: 2_600,
            shards,
            read_path,
        },
    );

    // Provision inside one batch scope, exactly as `deploy_fleet` does:
    // the whole fleet coalesces into a single view republish instead of
    // one copy-on-write rebuild per bind.
    let provision_start = Instant::now();
    net.batch(|net| {
        for i in 0..nodes {
            net.bind(&node_address(i), Arc::new(FleetNode))
                .expect("fresh fleet address");
        }
    });
    let provision_ms = provision_start.elapsed().as_secs_f64() * 1000.0;
    let memory_per_node_bytes = (net.routing_memory_bytes() / nodes.max(1)) as u64;

    // Dial phase: pure fabric lookups (no exchange), the path the lock
    // used to serialize. Each thread walks the fleet at its own stride so
    // concurrent threads mostly hit different addresses — the workload
    // sharding is built for.
    let addresses: Vec<String> = (0..nodes).map(node_address).collect();
    let load_before = net.shard_load();
    let dials_done = AtomicU64::new(0);
    let dial_start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let net = net.clone();
            let dials_done = &dials_done;
            let addresses = &addresses;
            s.spawn(move || {
                let mut local = 0u64;
                for d in 0..dials_per_thread {
                    let i = (d * (2 * t + 1) + t * 7919) % nodes;
                    let conn = net.dial(&addresses[i]).expect("node is bound");
                    drop(conn);
                    local += 1;
                }
                dials_done.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    let dial_elapsed = dial_start.elapsed().as_secs_f64();
    let dials_total = dials_done.load(Ordering::Relaxed);
    let load = dial_delta(&load_before, &net.shard_load());
    // Serialization model: a lock admits one handoff at a time, so the
    // phase cannot finish before its hottest shard drains; with `threads`
    // workers it also cannot beat `total / threads` even when perfectly
    // sharded. The single-lock fabric has one shard, so its hottest
    // shard IS the total — that gap is the modelled speedup. The
    // dials-per-thread ops floor keeps the model finite on the snapshot
    // side, whose clean dials acquire no locks at all — which is exactly
    // why the model is now secondary to the measured wall clock.
    let serialized = load
        .hottest()
        .max(load.total().div_ceil(threads as u64))
        .max(dials_total.div_ceil(threads as u64));
    let modelled_dial_secs = serialized as f64 * LOCK_HANDOFF_NS * 1e-9;

    // Browse phase: dial + one request/response exchange per browse, with
    // per-browse wall-clock latency recorded for the percentiles.
    let browses_per_thread = (dials_per_thread / 4).max(1);
    let browse_start = Instant::now();
    let mut latencies_us: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let net = net.clone();
                let addresses = &addresses;
                s.spawn(move || {
                    let mut local = Vec::with_capacity(browses_per_thread);
                    for b in 0..browses_per_thread {
                        let i = (b * (2 * t + 1) + t * 104_729) % nodes;
                        let t0 = Instant::now();
                        let mut conn = net.dial(&addresses[i]).expect("node is bound");
                        let page = conn.exchange(b"GET /").expect("fleet page");
                        local.push(t0.elapsed().as_secs_f64() * 1e6);
                        assert!(!page.is_empty());
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("browse thread"))
            .collect()
    });
    let browse_elapsed = browse_start.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let percentile = |p: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
        latencies_us[idx]
    };

    FabricSideReport {
        label,
        shards,
        provision_ms,
        memory_per_node_bytes,
        retire_spins: net.snapshot_retire_spins(),
        dials_total,
        lock_acquisitions: load.total(),
        hottest_shard_acquisitions: load.hottest(),
        dial_throughput_per_sec: dials_total as f64 / modelled_dial_secs.max(1e-12),
        wall_dial_throughput_per_sec: dials_total as f64 / dial_elapsed.max(1e-9),
        browses_total: latencies_us.len() as u64,
        browse_throughput_per_sec: latencies_us.len() as f64 / browse_elapsed.max(1e-9),
        browse_p50_us: percentile(0.50),
        browse_p99_us: percentile(0.99),
    }
}

/// Runs the identical dial schedule twice on the snapshot fabric — once
/// plain, once with sampled tracing plus an enabled flight recorder —
/// and reports per-dial latency for both sides. Traced dials open a
/// `fleet.dial` span every [`TRACE_SAMPLE_EVERY`]-th iteration; every
/// dial pays the sampling branch and the recorder's is-it-notable check
/// (a clean dial records nothing), which is exactly the production
/// data-path configuration DESIGN.md documents.
fn run_overhead_trial(
    nodes: usize,
    threads: usize,
    dials_per_thread: usize,
) -> TelemetryOverheadReport {
    let clock = SimClock::new();
    let net = SimNet::new(
        clock.clone(),
        NetConfig {
            default_one_way_us: 2_600,
            read_path: ReadPath::Snapshot,
            ..NetConfig::default()
        },
    );
    for i in 0..nodes {
        net.bind(&node_address(i), Arc::new(FleetNode))
            .expect("fresh fleet address");
    }
    let addresses: Vec<String> = (0..nodes).map(node_address).collect();

    let run_dials = |telemetry: Option<&Telemetry>, recorder: Option<&FlightRecorder>| {
        let mut latencies_us: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let net = net.clone();
                    let addresses = &addresses;
                    s.spawn(move || {
                        let mut local = Vec::with_capacity(dials_per_thread);
                        for d in 0..dials_per_thread {
                            let i = (d * (2 * t + 1) + t * 7919) % nodes;
                            let t0 = Instant::now();
                            let span = telemetry.and_then(|telemetry| {
                                (d % TRACE_SAMPLE_EVERY == 0).then(|| {
                                    telemetry.span_with("fleet.dial", &[("node", &addresses[i])])
                                })
                            });
                            let conn = net.dial(&addresses[i]);
                            if conn.is_err() {
                                // The notable-event branch: never taken on
                                // a clean run, always compiled in.
                                if let Some(recorder) = recorder {
                                    recorder.record("fault", "dial failed");
                                }
                            }
                            drop(conn);
                            if let Some(span) = span {
                                span.finish_ms();
                            }
                            local.push(t0.elapsed().as_secs_f64() * 1e6);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("dial thread"))
                .collect()
        });
        latencies_us.sort_by(|a, b| a.total_cmp(b));
        let p50 = latencies_us[(latencies_us.len() - 1) / 2];
        let mean = latencies_us.iter().sum::<f64>() / latencies_us.len() as f64;
        (p50, mean)
    };

    let (dial_p50_off_us, dial_mean_off_us) = run_dials(None, None);
    let telemetry = Telemetry::new(clock.clone());
    let recorder = FlightRecorder::new(clock, DEFAULT_FLIGHT_CAPACITY);
    let (dial_p50_on_us, dial_mean_on_us) = run_dials(Some(&telemetry), Some(&recorder));

    TelemetryOverheadReport {
        dials_total: (threads * dials_per_thread) as u64,
        spans_recorded: telemetry.span_count() as u64,
        recorder_events: recorder.len() as u64,
        dial_p50_off_us,
        dial_p50_on_us,
        dial_mean_off_us,
        dial_mean_on_us,
    }
}

/// Folds an overhead trial into the best-of figures (same rationale as
/// [`fold_best`]: noise only adds time, so minima are closest to truth).
fn fold_best_overhead(best: &mut TelemetryOverheadReport, trial: TelemetryOverheadReport) {
    debug_assert_eq!(best.spans_recorded, trial.spans_recorded);
    best.dial_p50_off_us = best.dial_p50_off_us.min(trial.dial_p50_off_us);
    best.dial_p50_on_us = best.dial_p50_on_us.min(trial.dial_p50_on_us);
    best.dial_mean_off_us = best.dial_mean_off_us.min(trial.dial_mean_off_us);
    best.dial_mean_on_us = best.dial_mean_on_us.min(trial.dial_mean_on_us);
}

/// Folds a later trial into a side's best-of figures: scheduler noise
/// only ever slows a trial down, so the fastest observation of each
/// figure is the closest to the side's true cost. The deterministic
/// counters (dials, lock acquisitions) are identical across trials and
/// are kept from the first.
fn fold_best(best: &mut FabricSideReport, trial: FabricSideReport) {
    debug_assert_eq!(best.dials_total, trial.dials_total);
    debug_assert_eq!(best.lock_acquisitions, trial.lock_acquisitions);
    debug_assert_eq!(best.memory_per_node_bytes, trial.memory_per_node_bytes);
    best.provision_ms = best.provision_ms.min(trial.provision_ms);
    // Writer-stall accounting is a *cost* counter: report the worst
    // trial, so a retire stall on any trial is visible in the artifact.
    best.retire_spins = best.retire_spins.max(trial.retire_spins);
    best.wall_dial_throughput_per_sec = best
        .wall_dial_throughput_per_sec
        .max(trial.wall_dial_throughput_per_sec);
    best.browse_throughput_per_sec = best
        .browse_throughput_per_sec
        .max(trial.browse_throughput_per_sec);
    best.browse_p50_us = best.browse_p50_us.min(trial.browse_p50_us);
    best.browse_p99_us = best.browse_p99_us.min(trial.browse_p99_us);
}

/// Provisions a `nodes`-listener fleet and measures dial throughput and
/// browse latency across `threads` OS threads, once per fabric mode:
/// single-lock, sharded with locked reads, and sharded with the
/// lock-free snapshot read path.
///
/// The three sides are run `trials` times in an interleaved
/// single/sharded/snapshot rotation and each side reports its best
/// trial. Interleaving means a noisy patch on the host (another tenant,
/// a frequency dip) lands on all three sides instead of biasing one;
/// best-of-N then discards it entirely. The wall-clock gates compare
/// sides measured this way on the same host, which is what makes a hard
/// CI gate on wall figures viable at all.
///
/// # Panics
///
/// Panics if a bind collides or a worker thread dies — either is a
/// benchmark-invalidating bug, not a measurement. Also panics if
/// `trials` is zero.
#[must_use]
pub fn run_fabric_bench(
    nodes: usize,
    threads: usize,
    dials_per_thread: usize,
    trials: usize,
) -> FabricBenchReport {
    assert!(trials > 0, "at least one trial per side");
    let shards = NetConfig::default().shards;
    let round = || {
        [
            run_side(
                "single-lock",
                1,
                ReadPath::Locked,
                nodes,
                threads,
                dials_per_thread,
            ),
            run_side(
                "sharded",
                shards,
                ReadPath::Locked,
                nodes,
                threads,
                dials_per_thread,
            ),
            run_side(
                "snapshot",
                shards,
                ReadPath::Snapshot,
                nodes,
                threads,
                dials_per_thread,
            ),
        ]
    };
    let [mut single, mut sharded, mut snapshot] = round();
    let mut overhead = run_overhead_trial(nodes, threads, dials_per_thread);
    for _ in 1..trials {
        let [s1, s2, s3] = round();
        fold_best(&mut single, s1);
        fold_best(&mut sharded, s2);
        fold_best(&mut snapshot, s3);
        fold_best_overhead(
            &mut overhead,
            run_overhead_trial(nodes, threads, dials_per_thread),
        );
    }
    FabricBenchReport {
        nodes,
        threads,
        dials_per_thread,
        trials,
        single,
        sharded,
        snapshot,
        overhead,
    }
}

/// One point of the retry-budget ablation.
#[derive(Debug, Clone)]
pub struct RetryAblationPoint {
    /// `max_attempts` applied to every component's retry policy.
    pub max_attempts: u32,
    /// Cold attested browses that reached a verdict (out of `samples`).
    pub successes: usize,
    /// Total browses attempted.
    pub samples: usize,
    /// Median attestation latency over successful browses, sim-clock ms.
    pub p50_ms: f64,
    /// 95th-percentile attestation latency (the tail the budget buys),
    /// sim-clock ms.
    pub p95_ms: f64,
}

/// Retry budget vs. attestation tail latency under loss: a fleet with a
/// lossy KDS link (`drop_probability`), cold-browsed `samples` times per
/// budget. Small budgets give up (lower success rate); larger budgets
/// convert losses into tail latency. All timings are sim-clock, so the
/// ablation is deterministic.
///
/// # Panics
///
/// Panics if the fleet fails to deploy (faults only start afterwards).
#[must_use]
pub fn run_retry_ablation(
    budgets: &[u32],
    drop_probability: f64,
    samples: usize,
) -> Vec<RetryAblationPoint> {
    budgets
        .iter()
        .map(|&max_attempts| {
            let mut tuning = WorldTuning::default();
            let mut retry = RetryTuning::default();
            retry.kds.max_attempts = max_attempts;
            retry.extension.max_attempts = max_attempts;
            tuning.retry = retry;
            let mut world = SimWorld::with_tuning(9000 + u64::from(max_attempts), tuning);
            let fleet = world
                .deploy_fleet("tail.example.org", 1, revelio::node::demo_app())
                .expect("fleet deploys");
            world.set_fault_seed(0xAB1A_7E00 + u64::from(max_attempts));
            world.set_fault_plan(
                revelio::kds_http::KDS_ADDRESS,
                FaultPlan {
                    drop_probability,
                    ..FaultPlan::default()
                },
            );
            let mut latencies = Vec::new();
            for _ in 0..samples {
                // A fresh extension per sample: every browse pays the cold
                // KDS fetch the faults are installed on.
                let extension = world.extension();
                extension.register_site("tail.example.org", vec![fleet.golden_measurement]);
                if let Ok(outcome) = extension.browse("tail.example.org", "/") {
                    latencies.push(outcome.timing.total_ms);
                }
            }
            latencies.sort_by(|a, b| a.total_cmp(b));
            let pct = |p: f64| -> f64 {
                if latencies.is_empty() {
                    return 0.0;
                }
                let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
                latencies[idx]
            };
            RetryAblationPoint {
                max_attempts,
                successes: latencies.len(),
                samples,
                p50_ms: pct(0.50),
                p95_ms: pct(0.95),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_bench_small_fleet_completes_on_all_modes() {
        // Wall-clock figures are never asserted — machines differ. The
        // modelled figures are deterministic, so those we can pin down.
        // Two trials exercise the best-of fold and its deterministic-
        // counter invariants.
        let report = run_fabric_bench(32, 4, 64, 2);
        assert_eq!(report.nodes, 32);
        assert_eq!(report.single.dials_total, 4 * 64);
        assert_eq!(report.sharded.dials_total, 4 * 64);
        assert_eq!(report.snapshot.dials_total, 4 * 64);
        // Same dial sequence on both locked sides → identical totals.
        assert_eq!(
            report.single.lock_acquisitions,
            report.sharded.lock_acquisitions
        );
        // One lock means one shard absorbs everything.
        assert_eq!(
            report.single.hottest_shard_acquisitions,
            report.single.lock_acquisitions
        );
        // The whole point of the snapshot path: a clean dial phase
        // performs zero lock acquisitions.
        assert_eq!(report.snapshot.lock_acquisitions, 0);
        // Sharding can only spread acquisitions out, never concentrate
        // them, so the modelled throughput never regresses.
        assert!(report.sharded.dial_throughput_per_sec >= report.single.dial_throughput_per_sec);
        for side in [&report.single, &report.sharded, &report.snapshot] {
            assert!(side.browses_total > 0, "{} ran no browses", side.label);
            assert!(side.browse_p99_us >= side.browse_p50_us);
            assert!(side.wall_dial_throughput_per_sec > 0.0);
            // The memory column is deterministic and never zero for a
            // provisioned fleet.
            assert!(side.memory_per_node_bytes > 0, "{} memory", side.label);
        }
        // All three sides publish the same fleet; the snapshot side adds
        // the view tree's interior/leaf nodes on top of the entries, so
        // its footprint can only be the larger of the two.
        assert!(
            report.snapshot.memory_per_node_bytes >= report.single.memory_per_node_bytes,
            "snapshot {} < single {}",
            report.snapshot.memory_per_node_bytes,
            report.single.memory_per_node_bytes
        );
        // Only the snapshot side owns a snapshot cell to stall on.
        assert_eq!(report.single.retire_spins, 0);
        assert_eq!(report.sharded.retire_spins, 0);
    }

    #[test]
    fn fabric_bench_speedup_is_deterministic_at_moderate_scale() {
        // fnv1a spreads 256 addresses across 16 shards well enough that
        // the modelled speedup clears the acceptance bar even at reduced
        // size; the address→shard map is a pure hash, so this holds on
        // every machine.
        let report = run_fabric_bench(256, 16, 64, 1);
        assert!(
            report.dial_speedup() >= 4.0,
            "modelled speedup {:.2} below bar (hottest {} of {})",
            report.dial_speedup(),
            report.sharded.hottest_shard_acquisitions,
            report.sharded.lock_acquisitions,
        );
    }

    #[test]
    fn fabric_report_json_carries_all_three_sides() {
        let report = run_fabric_bench(8, 2, 16, 1);
        let json = report.to_json();
        for key in [
            "\"benchmark\":\"fabric_fleet\"",
            "\"trials\":1",
            "\"headline\":\"wall_clock\"",
            "\"single_lock\"",
            "\"sharded\"",
            "\"snapshot\"",
            "\"dial_throughput_per_sec\"",
            "\"wall_dial_throughput_per_sec\"",
            "\"browse_p99_us\"",
            "\"memory_per_node_bytes\"",
            "\"retire_spins\"",
            "\"wall_dial_speedup\"",
            "\"modelled_dial_speedup\"",
            "\"telemetry_overhead\"",
            "\"p50_overhead_percent\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn overhead_column_samples_spans_and_records_nothing_clean() {
        let report = run_fabric_bench(8, 2, 16, 1);
        let overhead = &report.overhead;
        assert_eq!(overhead.dials_total, 2 * 16);
        // Every thread samples ⌈16/8⌉ = 2 spans.
        assert_eq!(overhead.spans_recorded, 2 * 2);
        // A clean run is not notable: the enabled recorder stays empty.
        assert_eq!(overhead.recorder_events, 0);
        assert!(overhead.dial_p50_off_us > 0.0);
        assert!(overhead.dial_p50_on_us > 0.0);
    }

    #[test]
    fn retry_ablation_larger_budget_never_hurts_success_rate() {
        let points = run_retry_ablation(&[1, 4], 0.4, 12);
        assert_eq!(points.len(), 2);
        assert!(
            points[1].successes >= points[0].successes,
            "budget 4 ({}) should succeed at least as often as budget 1 ({})",
            points[1].successes,
            points[0].successes,
        );
        // With a meaningful budget under 40% loss, most browses land.
        assert!(points[1].successes * 2 > points[1].samples);
    }
}

//! Ablations of the design choices DESIGN.md calls out: verity hash-block
//! size, VCEK caching, and PBKDF2 stretching of the sealed-volume key.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use revelio::node::demo_app;
use revelio::world::SimWorld;
use revelio_bench::run_verity_ablation;
use revelio_crypto::kdf::pbkdf2;
use revelio_crypto::sha2::Sha256;
use revelio_storage::block::MemBlockDevice;
use revelio_storage::crypt::{CryptDevice, CryptParams};

fn bench_verity_block_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_verity_hash_block");
    group.sample_size(10);
    for hbs in [1024usize, 4096, 16384] {
        group.bench_with_input(BenchmarkId::from_parameter(hbs), &hbs, |b, &hbs| {
            b.iter(|| black_box(run_verity_ablation(&[hbs])));
        });
    }
    group.finish();
}

fn bench_vcek_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_vcek_cache");
    group.sample_size(10);
    group.bench_function("cold_then_warm_browse", |b| {
        b.iter(|| {
            let mut world = SimWorld::new(77);
            let fleet = world
                .deploy_fleet("pad.example.org", 1, demo_app())
                .unwrap();
            let extension = world.extension();
            extension.register_site("pad.example.org", vec![fleet.golden_measurement]);
            let cold = extension.browse("pad.example.org", "/").unwrap().timing;
            let warm = extension.browse("pad.example.org", "/").unwrap().timing;
            black_box((cold, warm))
        });
    });
    group.finish();
}

fn bench_kdf_stretching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pbkdf2_iterations");
    for iterations in [1u32, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(iterations),
            &iterations,
            |b, &iters| {
                b.iter(|| black_box(pbkdf2::<Sha256>(b"sealing key", b"salt", iters, 64)));
            },
        );
    }
    group.finish();
}

fn bench_crypt_format(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_crypt_format");
    group.sample_size(10);
    group.bench_function("format_and_open_1MiB", |b| {
        b.iter(|| {
            let backing = Arc::new(MemBlockDevice::new(4096, 257));
            let params = CryptParams {
                iterations: 1000,
                salt: [7; 32],
            };
            CryptDevice::format(Arc::clone(&backing) as _, b"key", &params).unwrap();
            black_box(CryptDevice::open(backing as _, b"key", &params).unwrap());
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_verity_block_size,
    bench_vcek_cache,
    bench_kdf_stretching,
    bench_crypt_format
);
criterion_main!(benches);

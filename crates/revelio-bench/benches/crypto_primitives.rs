//! Throughput of the from-scratch cryptographic substrate — context for
//! interpreting the wall-clock figures (Fig. 5/6 absolute numbers are
//! bounded by these primitives, not by the protocol design).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use revelio_crypto::aead::ChaCha20Poly1305;
use revelio_crypto::aes::Aes;
use revelio_crypto::ed25519::SigningKey;
use revelio_crypto::sha2::{Sha256, Sha384};
use revelio_crypto::x25519;
use revelio_crypto::xts::Xts;

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    for size in [4096usize, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| black_box(Sha256::digest(d)));
        });
        group.bench_with_input(BenchmarkId::new("sha384", size), &data, |b, d| {
            b.iter(|| black_box(Sha384::digest(d)));
        });
    }
    group.finish();
}

fn bench_ciphers(c: &mut Criterion) {
    let mut group = c.benchmark_group("cipher");
    let sector = vec![0x5au8; 4096];
    group.throughput(Throughput::Bytes(4096));

    let aes = Aes::new(&[7u8; 32]).unwrap();
    group.bench_function("aes256_block_x256", |b| {
        b.iter(|| {
            let mut acc = [0u8; 16];
            for _ in 0..256 {
                acc = aes.encrypt_block(&acc);
            }
            black_box(acc)
        });
    });

    let xts = Xts::new(&[7u8; 64]).unwrap();
    group.bench_function("xts_encrypt_4k_sector", |b| {
        b.iter(|| black_box(xts.encrypt_sector(5, &sector).unwrap()));
    });

    let aead = ChaCha20Poly1305::new(&[7u8; 32]);
    group.bench_function("chacha20poly1305_seal_4k", |b| {
        b.iter(|| black_box(aead.seal(&[0u8; 12], b"", &sector)));
    });
    group.finish();
}

fn bench_public_key(c: &mut Criterion) {
    let mut group = c.benchmark_group("public_key");
    group.sample_size(20);
    let key = SigningKey::from_seed(&[9u8; 32]);
    let msg = vec![1u8; 1184]; // attestation-report-sized payload
    let sig = key.sign(&msg);

    group.bench_function("ed25519_sign_report", |b| {
        b.iter(|| black_box(key.sign(&msg)));
    });
    group.bench_function("ed25519_verify_report", |b| {
        b.iter(|| key.verifying_key().verify(&msg, &sig).unwrap());
    });
    group.bench_function("x25519_shared_secret", |b| {
        b.iter(|| black_box(x25519::x25519(&[3u8; 32], &x25519::basepoint())));
    });
    group.finish();
}

criterion_group!(benches, bench_hash, bench_ciphers, bench_public_key);
criterion_main!(benches);

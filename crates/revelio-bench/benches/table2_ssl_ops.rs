//! Table 2: SSL certificate generation and distribution — the SP node's
//! full provisioning protocol over a simulated fleet.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use revelio_bench::run_table2;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_ssl_ops");
    group.sample_size(10);
    group.bench_function("provision_3_node_fleet", |b| {
        b.iter(|| black_box(run_table2(3)));
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);

//! Fig. 5: dm-crypt I/O latency — sequential 4 KiB reads and writes on a
//! plain device vs an `aes-xts-plain64` volume.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use revelio_storage::block::{BlockDevice, MemBlockDevice};
use revelio_storage::crypt::{CryptDevice, CryptParams};

const BLOCK: usize = 4096;

fn devices(blocks: u64) -> (Arc<MemBlockDevice>, CryptDevice) {
    let plain = Arc::new(MemBlockDevice::new(BLOCK, blocks));
    let backing = Arc::new(MemBlockDevice::new(BLOCK, blocks + 1));
    let params = CryptParams {
        iterations: 1000,
        salt: [7; 32],
    };
    CryptDevice::format(Arc::clone(&backing) as _, b"bench key", &params).unwrap();
    let crypt = CryptDevice::open(backing as _, b"bench key", &params).unwrap();
    (plain, crypt)
}

fn sweep(device: &dyn BlockDevice, total: usize, write: bool) {
    let mut buf = vec![0xa5u8; BLOCK];
    for i in 0..(total / BLOCK) as u64 {
        if write {
            device.write_block(i, &buf).unwrap();
        } else {
            device.read_block(i, &mut buf).unwrap();
        }
    }
    black_box(&buf);
}

fn bench_fig5(c: &mut Criterion) {
    // Sizes chosen so a full criterion run stays in seconds; the repro
    // binary sweeps the paper's 4–256 MB range once.
    let total = 2 << 20; // 2 MiB per iteration
    let (plain, crypt) = devices((total / BLOCK + 2) as u64);
    sweep(plain.as_ref(), total, true);
    sweep(&crypt, total, true);

    let mut group = c.benchmark_group("fig5_dmcrypt_io");
    group.throughput(Throughput::Bytes(total as u64));
    for (label, write) in [("read", false), ("write", true)] {
        group.bench_with_input(BenchmarkId::new("plain", label), &write, |b, &w| {
            b.iter(|| sweep(plain.as_ref(), total, w));
        });
        group.bench_with_input(BenchmarkId::new("crypt", label), &write, |b, &w| {
            b.iter(|| sweep(&crypt, total, w));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);

//! Table 1: Revelio-imposed delays on first boot (BN and CP variants).
//!
//! Criterion measures the *real* wall time of the full measured-direct-boot
//! first-boot path (verity tree verification, sealed-volume creation,
//! identity creation) at simulation scale; the `repro` binary prints the
//! paper-scale modelled table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use revelio_bench::run_table1;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_first_boot");
    group.sample_size(10);
    group.bench_function("bn_and_cp_first_boot", |b| {
        b.iter(|| black_box(run_table1()));
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);

//! Table 3: browser-based remote attestation and connection validation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use revelio_bench::run_table3;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_browser_attestation");
    group.sample_size(10);
    group.bench_function("full_client_scenario", |b| {
        b.iter(|| black_box(run_table3()));
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);

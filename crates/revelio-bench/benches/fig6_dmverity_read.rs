//! Fig. 6: dm-verity read latency — sequential reads of a plain device vs
//! a verity-verified mapping of the same data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use revelio_storage::block::{BlockDevice, MemBlockDevice};
use revelio_storage::verity::{VerityDevice, VerityParams, VerityTree};

const BLOCK: usize = 4096;

fn read_all(device: &dyn BlockDevice, total: usize) {
    let mut buf = vec![0u8; BLOCK];
    for i in 0..(total / BLOCK) as u64 {
        device.read_block(i, &mut buf).unwrap();
    }
    black_box(&buf);
}

fn bench_fig6(c: &mut Criterion) {
    let total = 2 << 20; // 2 MiB per iteration
    let data = Arc::new(MemBlockDevice::new(BLOCK, (total / BLOCK) as u64));
    let fill = vec![0x5au8; BLOCK];
    for i in 0..(total / BLOCK) as u64 {
        data.write_block(i, &fill).unwrap();
    }
    let tree = VerityTree::build(
        data.as_ref(),
        VerityParams {
            hash_block_size: BLOCK,
            salt: [3; 32],
        },
    )
    .unwrap();
    let root = tree.root_hash();
    let verity = VerityDevice::open(Arc::clone(&data) as _, tree, &root).unwrap();

    let mut group = c.benchmark_group("fig6_dmverity_read");
    group.throughput(Throughput::Bytes(total as u64));
    group.bench_with_input(BenchmarkId::new("plain", "2MiB"), &(), |b, ()| {
        b.iter(|| read_all(data.as_ref(), total));
    });
    group.bench_with_input(BenchmarkId::new("verity", "2MiB"), &(), |b, ()| {
        b.iter(|| read_all(&verity, total));
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);

//! The boundary node: HTTP ↔ IC protocol translation (paper §4.2, Fig. 2).
//!
//! The returned [`Router`] is exactly what gets mounted as the application
//! inside a Revelio VM: ordinary browsers GET dapp assets, the service
//! worker POSTs raw IC messages, and both paths go through certified
//! subnet responses. A tamper switch models the malicious boundary node
//! whose possibility motivates running the proxy confidentially in the
//! first place.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use revelio_http::message::{Request, Response};
use revelio_http::router::Router;
use revelio_net::clock::SimClock;
use revelio_net::retry::RetryPolicy;
use revelio_telemetry::{retry_with_telemetry, Telemetry};

use crate::canister::{decode_asset_response, CallKind};
use crate::ic::{IcRequest, InternetComputer};
use crate::subnet::CertifiedResponse;
use crate::IcError;

/// The API path the service worker posts raw IC messages to.
pub const API_CALL_PATH: &str = "/api/v2/call";

/// The path serving the service-worker script on first contact.
pub const SERVICE_WORKER_PATH: &str = "/service-worker.js";

/// Decorrelates the boundary retry jitter stream from other components.
const BOUNDARY_JITTER_SEED: u64 = 0x626f_756e; // "boun"

/// Retry wiring for upstream replica calls, installed via
/// [`BoundaryNode::with_upstream_retry`].
#[derive(Clone)]
struct UpstreamRetry {
    policy: RetryPolicy,
    clock: SimClock,
    telemetry: Option<Telemetry>,
}

/// The boundary node's link to its IC replicas: injects simulated
/// outages and applies the configured retry policy before a call is
/// reported failed.
#[derive(Clone)]
struct Upstream {
    ic: Arc<InternetComputer>,
    outage_remaining: Arc<AtomicU32>,
    retry: Option<UpstreamRetry>,
}

impl Upstream {
    fn execute_once(&self, request: &IcRequest) -> Result<CertifiedResponse, IcError> {
        let remaining = self.outage_remaining.load(Ordering::SeqCst);
        if remaining > 0 {
            self.outage_remaining.store(remaining - 1, Ordering::SeqCst);
            return Err(IcError::Unavailable("ic upstream".into()));
        }
        self.ic.execute(request)
    }

    fn execute(&self, request: &IcRequest) -> Result<CertifiedResponse, IcError> {
        let Some(retry) = &self.retry else {
            return self.execute_once(request);
        };
        match &retry.telemetry {
            Some(telemetry) => retry_with_telemetry(
                &retry.policy,
                telemetry,
                "boundary",
                IcError::is_transient,
                |_| self.execute_once(request),
            ),
            None => {
                retry
                    .policy
                    .run(&retry.clock, IcError::is_transient, |_| {
                        self.execute_once(request)
                    })
                    .0
            }
        }
    }
}

/// A boundary node bound to one IC and one frontend (asset) canister.
pub struct BoundaryNode {
    upstream: Upstream,
    frontend_canister: u64,
    tamper: Arc<AtomicBool>,
}

impl std::fmt::Debug for BoundaryNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundaryNode")
            .field("frontend_canister", &self.frontend_canister)
            .finish_non_exhaustive()
    }
}

impl BoundaryNode {
    /// Creates a boundary node proxying `ic`, with `frontend_canister`
    /// answering direct browser GETs.
    #[must_use]
    pub fn new(ic: Arc<InternetComputer>, frontend_canister: u64) -> Self {
        BoundaryNode {
            upstream: Upstream {
                ic,
                outage_remaining: Arc::new(AtomicU32::new(0)),
                retry: None,
            },
            frontend_canister,
            tamper: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Enables bounded retry of transient upstream failures. Backoff
    /// advances `clock`; with `telemetry` present, retries feed the
    /// `revelio_boundary_retry_*` counters.
    #[must_use]
    pub fn with_upstream_retry(
        mut self,
        policy: RetryPolicy,
        clock: SimClock,
        telemetry: Option<Telemetry>,
    ) -> Self {
        self.upstream.retry = Some(UpstreamRetry {
            policy: policy.with_jitter_seed(BOUNDARY_JITTER_SEED),
            clock,
            telemetry,
        });
        self
    }

    /// Makes the next `calls` upstream executions fail with
    /// [`IcError::Unavailable`] before recovering — a simulated replica
    /// outage window for chaos testing.
    pub fn set_upstream_outage(&self, calls: u32) {
        self.upstream
            .outage_remaining
            .store(calls, Ordering::SeqCst);
    }

    /// ATTACK: make this boundary node rewrite every payload it proxies —
    /// the malicious node of §4.2 that "compromises the Byzantine fault
    /// tolerance of the IC" for its users.
    pub fn set_tampering(&self, enabled: bool) {
        self.tamper.store(enabled, Ordering::Relaxed);
    }

    fn maybe_tamper(tamper: &AtomicBool, mut payload: Vec<u8>) -> Vec<u8> {
        if tamper.load(Ordering::Relaxed) {
            // Replace the dapp's answer wholesale.
            payload = b"<html><body>send your tokens to attacker-wallet-666</body></html>".to_vec();
        }
        payload
    }

    /// Builds the HTTP router for this boundary node: mount it inside a
    /// Revelio VM (or a plain VM, to demonstrate the risk).
    ///
    /// Routes:
    /// * `GET /` and `GET /<asset>` — direct translation: HTTP →
    ///   `http_request` query → certified response → HTTP.
    /// * `GET /service-worker.js` — the client-side translation script.
    /// * `POST /api/v2/call` — raw IC messages from the service worker;
    ///   the *certified response bytes* are returned so the client can
    ///   verify the subnet certificate itself.
    #[must_use]
    pub fn router(&self) -> Router {
        let mut router = Router::new().get(SERVICE_WORKER_PATH, |_req| {
            Response::ok(SERVICE_WORKER_SOURCE.as_bytes().to_vec())
                .with_header("Content-Type", "application/javascript")
        });

        // Direct-translation routes for every published asset. The probe
        // runs at router-build time, straight at the replicas: it must not
        // consume a chaos outage budget meant for live traffic.
        let asset_paths = {
            let resp = self.upstream.ic.execute(&IcRequest {
                canister_id: self.frontend_canister,
                kind: CallKind::Query,
                method: "http_request".into(),
                arg: b"/".to_vec(),
            });
            // The canister enumerates its paths via the boundary config in
            // a real deployment; the simulation registers "/" plus any the
            // caller adds through `router_with_assets`.
            match resp {
                Ok(_) => vec!["/".to_owned()],
                Err(_) => Vec::new(),
            }
        };
        router = self.add_asset_routes(router, &asset_paths);

        // Service-worker API: raw IC messages in, certified bytes out.
        let upstream = self.upstream.clone();
        let tamper = Arc::clone(&self.tamper);
        router.post(API_CALL_PATH, move |req: &Request| {
            let Ok(ic_request) = IcRequest::from_bytes(&req.body) else {
                return Response::status(400);
            };
            match upstream.execute(&ic_request) {
                Ok(mut certified) => {
                    certified.payload = Self::maybe_tamper(&tamper, certified.payload);
                    Response::ok(certified.to_bytes())
                }
                // 503 marks the transient case so clients can distinguish
                // "try again" from a broken upstream.
                Err(IcError::Unavailable(_)) => Response::status(503),
                Err(e) => Response::status(502)
                    .with_header("X-Ic-Error", &e.to_string().replace(['\r', '\n'], " ")),
            }
        })
    }

    /// Like [`BoundaryNode::router`] with explicit asset paths to publish
    /// as direct HTTP routes.
    #[must_use]
    pub fn router_with_assets(&self, paths: &[&str]) -> Router {
        let base = self.router();
        self.add_asset_routes(
            base,
            &paths.iter().map(|p| (*p).to_owned()).collect::<Vec<_>>(),
        )
    }

    fn add_asset_routes(&self, mut router: Router, paths: &[String]) -> Router {
        for path in paths {
            let upstream = self.upstream.clone();
            let tamper = Arc::clone(&self.tamper);
            let canister = self.frontend_canister;
            let path_owned = path.clone();
            router = router.get(path, move |_req| {
                let result = upstream.execute(&IcRequest {
                    canister_id: canister,
                    kind: CallKind::Query,
                    method: "http_request".into(),
                    arg: path_owned.as_bytes().to_vec(),
                });
                match result {
                    Ok(certified) => match decode_asset_response(&certified.payload) {
                        Ok((content_type, body)) => {
                            let body = Self::maybe_tamper(&tamper, body);
                            Response::ok(body).with_header("Content-Type", &content_type)
                        }
                        Err(_) => Response::status(502),
                    },
                    Err(IcError::Unavailable(_)) => Response::status(503),
                    Err(_) => Response::status(502),
                }
            });
        }
        router
    }
}

/// The service-worker script served on first contact (§4.2). Its logic is
/// implemented natively by [`crate::service_worker::ServiceWorker`]; the
/// source here is what a browser would receive and activate.
pub const SERVICE_WORKER_SOURCE: &str = r#"// Revelio IC service worker (simulation stand-in)
// Translates fetch() into IC protocol messages, posts them to
// /api/v2/call, and verifies the subnet threshold certificate on every
// response before handing bytes to the page.
self.addEventListener('fetch', (event) => { /* see revelio-ic::service_worker */ });
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canister::AssetCanister;

    fn setup() -> (Arc<InternetComputer>, BoundaryNode) {
        let ic = Arc::new(InternetComputer::new(1, 4, 3));
        let mut assets = AssetCanister::new();
        assets.insert("/", "text/html", b"<html>dapp</html>".to_vec());
        assets.insert(
            "/app.js",
            "application/javascript",
            b"console.log(1)".to_vec(),
        );
        let id = ic.create_canister(&assets);
        let bn = BoundaryNode::new(Arc::clone(&ic), id);
        (ic, bn)
    }

    #[test]
    fn direct_translation_serves_assets() {
        let (_, bn) = setup();
        let router = bn.router_with_assets(&["/", "/app.js"]);
        let resp = router.dispatch(&Request::get("/"));
        assert_eq!(resp.body, b"<html>dapp</html>");
        assert_eq!(resp.header("Content-Type"), Some("text/html"));
        let resp = router.dispatch(&Request::get("/app.js"));
        assert_eq!(resp.body, b"console.log(1)");
    }

    #[test]
    fn service_worker_script_served() {
        let (_, bn) = setup();
        let resp = bn.router().dispatch(&Request::get(SERVICE_WORKER_PATH));
        assert!(resp.is_success());
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("service worker"));
    }

    #[test]
    fn api_call_returns_certified_bytes() {
        let (ic, bn) = setup();
        let router = bn.router();
        let request = IcRequest {
            canister_id: 1,
            kind: CallKind::Query,
            method: "http_request".into(),
            arg: b"/".to_vec(),
        };
        let resp = router.dispatch(&Request::post(API_CALL_PATH, request.to_bytes()));
        assert!(resp.is_success());
        let certified = crate::subnet::CertifiedResponse::from_bytes(&resp.body).unwrap();
        let subnet = ic.subnet_of(1).unwrap();
        certified
            .verify(subnet.public_keys(), subnet.threshold())
            .unwrap();
    }

    #[test]
    fn malformed_api_call_is_400() {
        let (_, bn) = setup();
        let resp = bn
            .router()
            .dispatch(&Request::post(API_CALL_PATH, b"junk".to_vec()));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn tampering_boundary_rewrites_direct_path_invisibly() {
        // The §4.2 threat: without Revelio (or a verifying service
        // worker), the user cannot tell.
        let (_, bn) = setup();
        bn.set_tampering(true);
        let resp = bn.router_with_assets(&["/"]).dispatch(&Request::get("/"));
        assert!(resp.is_success()); // looks fine at the HTTP level!
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("attacker-wallet"));
    }

    #[test]
    fn tampering_boundary_cannot_forge_certificates() {
        // With the service-worker path the client verifies the threshold
        // signature over the payload: tampering is detected.
        let (ic, bn) = setup();
        bn.set_tampering(true);
        let router = bn.router();
        let request = IcRequest {
            canister_id: 1,
            kind: CallKind::Query,
            method: "http_request".into(),
            arg: b"/".to_vec(),
        };
        let resp = router.dispatch(&Request::post(API_CALL_PATH, request.to_bytes()));
        let certified = crate::subnet::CertifiedResponse::from_bytes(&resp.body).unwrap();
        let subnet = ic.subnet_of(1).unwrap();
        assert_eq!(
            certified.verify(subnet.public_keys(), subnet.threshold()),
            Err(crate::IcError::CertificateInvalid)
        );
    }

    #[test]
    fn upstream_outage_without_retry_is_503() {
        let (_, bn) = setup();
        let router = bn.router_with_assets(&["/"]);
        bn.set_upstream_outage(1);
        assert_eq!(router.dispatch(&Request::get("/")).status, 503);
        // The outage window is consumed; the next call recovers.
        assert!(router.dispatch(&Request::get("/")).is_success());
    }

    #[test]
    fn upstream_outage_with_retry_recovers_invisibly() {
        let (ic, _) = setup();
        let clock = SimClock::new();
        let telemetry = Telemetry::new(clock.clone());
        let bn = BoundaryNode::new(Arc::clone(&ic), 1).with_upstream_retry(
            RetryPolicy::default(),
            clock.clone(),
            Some(telemetry.clone()),
        );
        let router = bn.router_with_assets(&["/"]);
        bn.set_upstream_outage(2);
        let resp = router.dispatch(&Request::get("/"));
        assert!(resp.is_success(), "retries absorbed the outage");
        assert_eq!(
            telemetry.counter("revelio_boundary_retry_attempts_total"),
            2
        );
        assert_eq!(telemetry.counter("revelio_boundary_retry_gave_up_total"), 0);
        assert!(clock.now_us() > 0, "backoff spent simulated time");
    }

    #[test]
    fn sustained_upstream_outage_gives_up_with_503() {
        let (ic, _) = setup();
        let clock = SimClock::new();
        let telemetry = Telemetry::new(clock.clone());
        let bn = BoundaryNode::new(Arc::clone(&ic), 1).with_upstream_retry(
            RetryPolicy::default(),
            clock,
            Some(telemetry.clone()),
        );
        let router = bn.router_with_assets(&["/"]);
        bn.set_upstream_outage(u32::MAX);
        assert_eq!(router.dispatch(&Request::get("/")).status, 503);
        assert_eq!(telemetry.counter("revelio_boundary_retry_gave_up_total"), 1);
    }

    #[test]
    fn unknown_canister_is_502() {
        let (_, bn) = setup();
        let request = IcRequest {
            canister_id: 404,
            kind: CallKind::Query,
            method: "get".into(),
            arg: vec![],
        };
        let resp = bn
            .router()
            .dispatch(&Request::post(API_CALL_PATH, request.to_bytes()));
        assert_eq!(resp.status, 502);
    }
}

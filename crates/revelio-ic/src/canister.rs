//! Canisters: the IC's smart contracts.
//!
//! A canister is deterministic state machine code: queries read state,
//! updates mutate it. Determinism matters — every replica of a subnet runs
//! the same call and consensus compares the bytes.

use std::collections::BTreeMap;

use crate::IcError;

/// Whether a call may mutate state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// Read-only.
    Query,
    /// State-mutating (goes through consensus on the real IC).
    Update,
}

/// A canister: deterministic message handler over private state.
pub trait Canister: Send {
    /// Handles one call.
    ///
    /// # Errors
    ///
    /// Returns [`IcError::CanisterRejected`] for unknown methods or
    /// invalid arguments.
    fn handle(&mut self, kind: CallKind, method: &str, arg: &[u8]) -> Result<Vec<u8>, IcError>;

    /// Clones the canister's code+state for replication across replicas.
    fn replicate(&self) -> Box<dyn Canister>;
}

/// A key-value store canister (`get`/`put`/`len`).
#[derive(Debug, Clone, Default)]
pub struct KeyValueCanister {
    entries: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl KeyValueCanister {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        KeyValueCanister::default()
    }
}

impl Canister for KeyValueCanister {
    fn handle(&mut self, kind: CallKind, method: &str, arg: &[u8]) -> Result<Vec<u8>, IcError> {
        match (kind, method) {
            (CallKind::Query, "get") => Ok(self.entries.get(arg).cloned().unwrap_or_default()),
            (CallKind::Query, "len") => Ok((self.entries.len() as u64).to_le_bytes().to_vec()),
            (CallKind::Update, "put") => {
                // arg = key_len(u32) || key || value
                if arg.len() < 4 {
                    return Err(IcError::CanisterRejected("short put argument".into()));
                }
                let key_len = u32::from_le_bytes(arg[..4].try_into().expect("4 bytes")) as usize;
                if arg.len() < 4 + key_len {
                    return Err(IcError::CanisterRejected("truncated put key".into()));
                }
                let key = arg[4..4 + key_len].to_vec();
                let value = arg[4 + key_len..].to_vec();
                self.entries.insert(key, value);
                Ok(Vec::new())
            }
            (CallKind::Query, "put") => Err(IcError::CanisterRejected(
                "put requires an update call".into(),
            )),
            _ => Err(IcError::CanisterRejected(format!("no method {method}"))),
        }
    }

    fn replicate(&self) -> Box<dyn Canister> {
        Box::new(self.clone())
    }
}

/// Encodes a `put` argument for [`KeyValueCanister`].
#[must_use]
pub fn encode_put(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut arg = (key.len() as u32).to_le_bytes().to_vec();
    arg.extend_from_slice(key);
    arg.extend_from_slice(value);
    arg
}

/// A canister serving static web assets — the kind feature-rich IC web
/// apps use, and the content boundary nodes translate to HTTP (§4.2).
#[derive(Debug, Clone, Default)]
pub struct AssetCanister {
    assets: BTreeMap<String, (String, Vec<u8>)>,
}

impl AssetCanister {
    /// Creates an empty asset canister.
    #[must_use]
    pub fn new() -> Self {
        AssetCanister::default()
    }

    /// Stores an asset at `path` with a content type.
    pub fn insert(&mut self, path: &str, content_type: &str, body: Vec<u8>) {
        self.assets
            .insert(path.to_owned(), (content_type.to_owned(), body));
    }

    /// The asset paths (used by boundary nodes to publish HTTP routes).
    #[must_use]
    pub fn paths(&self) -> Vec<String> {
        self.assets.keys().cloned().collect()
    }
}

impl Canister for AssetCanister {
    fn handle(&mut self, kind: CallKind, method: &str, arg: &[u8]) -> Result<Vec<u8>, IcError> {
        match (kind, method) {
            (CallKind::Query, "http_request") => {
                let path = std::str::from_utf8(arg)
                    .map_err(|_| IcError::CanisterRejected("non-utf8 path".into()))?;
                match self.assets.get(path) {
                    Some((content_type, body)) => {
                        // content_type_len(u32) || content_type || body
                        let mut out = (content_type.len() as u32).to_le_bytes().to_vec();
                        out.extend_from_slice(content_type.as_bytes());
                        out.extend_from_slice(body);
                        Ok(out)
                    }
                    None => Err(IcError::CanisterRejected(format!("no asset {path}"))),
                }
            }
            (CallKind::Update, "store") => Err(IcError::CanisterRejected(
                "store not exposed in simulation".into(),
            )),
            _ => Err(IcError::CanisterRejected(format!("no method {method}"))),
        }
    }

    fn replicate(&self) -> Box<dyn Canister> {
        Box::new(self.clone())
    }
}

/// Decodes an [`AssetCanister`] `http_request` response.
///
/// # Errors
///
/// Returns [`IcError::CanisterRejected`] on truncation.
pub fn decode_asset_response(bytes: &[u8]) -> Result<(String, Vec<u8>), IcError> {
    if bytes.len() < 4 {
        return Err(IcError::CanisterRejected("short asset response".into()));
    }
    let ct_len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    if bytes.len() < 4 + ct_len {
        return Err(IcError::CanisterRejected("truncated asset response".into()));
    }
    let content_type = String::from_utf8(bytes[4..4 + ct_len].to_vec())
        .map_err(|_| IcError::CanisterRejected("non-utf8 content type".into()))?;
    Ok((content_type, bytes[4 + ct_len..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_put_get_roundtrip() {
        let mut kv = KeyValueCanister::new();
        kv.handle(CallKind::Update, "put", &encode_put(b"k", b"v"))
            .unwrap();
        assert_eq!(kv.handle(CallKind::Query, "get", b"k").unwrap(), b"v");
        assert_eq!(kv.handle(CallKind::Query, "get", b"missing").unwrap(), b"");
        assert_eq!(
            kv.handle(CallKind::Query, "len", b"").unwrap(),
            1u64.to_le_bytes().to_vec()
        );
    }

    #[test]
    fn kv_rejects_put_as_query() {
        let mut kv = KeyValueCanister::new();
        assert!(kv
            .handle(CallKind::Query, "put", &encode_put(b"k", b"v"))
            .is_err());
    }

    #[test]
    fn kv_rejects_malformed_put() {
        let mut kv = KeyValueCanister::new();
        assert!(kv.handle(CallKind::Update, "put", b"").is_err());
        assert!(kv
            .handle(CallKind::Update, "put", &100u32.to_le_bytes())
            .is_err());
    }

    #[test]
    fn replicas_are_independent() {
        let mut a = KeyValueCanister::new();
        a.handle(CallKind::Update, "put", &encode_put(b"k", b"v"))
            .unwrap();
        let mut b = a.replicate();
        b.handle(CallKind::Update, "put", &encode_put(b"k", b"other"))
            .unwrap();
        assert_eq!(a.handle(CallKind::Query, "get", b"k").unwrap(), b"v");
    }

    #[test]
    fn asset_canister_serves_and_rejects() {
        let mut assets = AssetCanister::new();
        assets.insert("/", "text/html", b"<html>dapp</html>".to_vec());
        let raw = assets
            .handle(CallKind::Query, "http_request", b"/")
            .unwrap();
        let (ct, body) = decode_asset_response(&raw).unwrap();
        assert_eq!(ct, "text/html");
        assert_eq!(body, b"<html>dapp</html>");
        assert!(assets
            .handle(CallKind::Query, "http_request", b"/missing")
            .is_err());
        assert_eq!(assets.paths(), vec!["/".to_owned()]);
    }

    #[test]
    fn asset_response_decode_guards() {
        assert!(decode_asset_response(&[1]).is_err());
        assert!(decode_asset_response(&100u32.to_le_bytes()).is_err());
    }
}

//! The Internet Computer: subnets plus canister routing.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use revelio_crypto::wire::{ByteReader, ByteWriter};

use crate::canister::{CallKind, Canister};
use crate::subnet::{CertifiedResponse, Subnet};
use crate::IcError;

/// An IC request as a boundary node receives it after translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcRequest {
    /// Target canister.
    pub canister_id: u64,
    /// Query or update.
    pub kind: CallKind,
    /// Method name.
    pub method: String,
    /// Argument bytes.
    pub arg: Vec<u8>,
}

impl IcRequest {
    /// Serializes the request (the "IC protocol" wire form).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(b"ICRQ1");
        w.put_u64(self.canister_id);
        w.put_u8(match self.kind {
            CallKind::Query => 0,
            CallKind::Update => 1,
        });
        w.put_str(&self.method);
        w.put_var_bytes(&self.arg);
        w.into_bytes()
    }

    /// Decodes a request.
    ///
    /// # Errors
    ///
    /// Returns [`IcError::Wire`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IcError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_array::<5>()?;
        if &magic != b"ICRQ1" {
            return Err(IcError::Wire(revelio_crypto::wire::WireError::UnknownTag(
                magic[0],
            )));
        }
        let canister_id = r.get_u64()?;
        let kind = match r.get_u8()? {
            0 => CallKind::Query,
            1 => CallKind::Update,
            t => {
                return Err(IcError::Wire(revelio_crypto::wire::WireError::UnknownTag(
                    t,
                )))
            }
        };
        let method = r.get_str()?;
        let arg = r.get_var_bytes()?.to_vec();
        r.finish()?;
        Ok(IcRequest {
            canister_id,
            kind,
            method,
            arg,
        })
    }
}

/// The whole network: subnets and the canister→subnet routing table.
pub struct InternetComputer {
    subnets: Vec<Arc<Subnet>>,
    routing: RwLock<BTreeMap<u64, usize>>,
    next_canister_id: RwLock<u64>,
}

impl std::fmt::Debug for InternetComputer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InternetComputer")
            .field("subnets", &self.subnets.len())
            .finish_non_exhaustive()
    }
}

impl InternetComputer {
    /// Creates a network of `subnet_count` subnets of `replicas_per_subnet`
    /// replicas each, with 2f+1 thresholds (f = (n-1)/3).
    ///
    /// # Panics
    ///
    /// Panics for zero subnets or replicas.
    #[must_use]
    pub fn new(subnet_count: usize, replicas_per_subnet: usize, seed: u64) -> Self {
        assert!(subnet_count > 0 && replicas_per_subnet > 0);
        let f = (replicas_per_subnet.saturating_sub(1)) / 3;
        let threshold = 2 * f + 1;
        let subnets = (0..subnet_count)
            .map(|i| Arc::new(Subnet::new(replicas_per_subnet, threshold, seed + i as u64)))
            .collect();
        InternetComputer {
            subnets,
            routing: RwLock::new(BTreeMap::new()),
            next_canister_id: RwLock::new(1),
        }
    }

    /// The subnets (for key pinning by verifiers).
    #[must_use]
    pub fn subnets(&self) -> &[Arc<Subnet>] {
        &self.subnets
    }

    /// Installs a canister on the least-loaded subnet; returns its id.
    pub fn create_canister(&self, canister: &dyn Canister) -> u64 {
        let id = {
            let mut next = self.next_canister_id.write();
            let id = *next;
            *next += 1;
            id
        };
        let mut routing = self.routing.write();
        // Scalability via partitioning (§4.2): spread canisters evenly.
        let mut load = vec![0usize; self.subnets.len()];
        for &subnet in routing.values() {
            load[subnet] += 1;
        }
        let subnet = load
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| **l)
            .map(|(i, _)| i)
            .expect("at least one subnet");
        self.subnets[subnet].install_canister(id, canister);
        routing.insert(id, subnet);
        id
    }

    /// The subnet hosting `canister_id`.
    ///
    /// # Errors
    ///
    /// Returns [`IcError::CanisterNotFound`].
    pub fn subnet_of(&self, canister_id: u64) -> Result<Arc<Subnet>, IcError> {
        let routing = self.routing.read();
        let index = routing
            .get(&canister_id)
            .ok_or(IcError::CanisterNotFound(canister_id))?;
        Ok(Arc::clone(&self.subnets[*index]))
    }

    /// Executes an IC request with certified response.
    ///
    /// # Errors
    ///
    /// Propagates routing, consensus and canister errors.
    pub fn execute(&self, request: &IcRequest) -> Result<CertifiedResponse, IcError> {
        let subnet = self.subnet_of(request.canister_id)?;
        subnet.execute(
            request.canister_id,
            request.kind,
            &request.method,
            &request.arg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canister::{encode_put, KeyValueCanister};

    #[test]
    fn request_roundtrip() {
        let req = IcRequest {
            canister_id: 42,
            kind: CallKind::Update,
            method: "put".into(),
            arg: b"abc".to_vec(),
        };
        assert_eq!(IcRequest::from_bytes(&req.to_bytes()).unwrap(), req);
    }

    #[test]
    fn canisters_spread_across_subnets() {
        let ic = InternetComputer::new(3, 4, 1);
        let ids: Vec<u64> = (0..6)
            .map(|_| ic.create_canister(&KeyValueCanister::new()))
            .collect();
        let mut per_subnet = vec![0usize; 3];
        for id in &ids {
            let subnet = ic.subnet_of(*id).unwrap();
            let idx = ic
                .subnets()
                .iter()
                .position(|s| Arc::ptr_eq(s, &subnet))
                .unwrap();
            per_subnet[idx] += 1;
        }
        assert_eq!(per_subnet, vec![2, 2, 2]);
    }

    #[test]
    fn execute_routes_and_certifies() {
        let ic = InternetComputer::new(2, 4, 1);
        let id = ic.create_canister(&KeyValueCanister::new());
        ic.execute(&IcRequest {
            canister_id: id,
            kind: CallKind::Update,
            method: "put".into(),
            arg: encode_put(b"k", b"v"),
        })
        .unwrap();
        let resp = ic
            .execute(&IcRequest {
                canister_id: id,
                kind: CallKind::Query,
                method: "get".into(),
                arg: b"k".to_vec(),
            })
            .unwrap();
        assert_eq!(resp.payload, b"v");
        let subnet = ic.subnet_of(id).unwrap();
        resp.verify(subnet.public_keys(), subnet.threshold())
            .unwrap();
    }

    #[test]
    fn unknown_canister_rejected() {
        let ic = InternetComputer::new(1, 4, 1);
        assert_eq!(
            ic.execute(&IcRequest {
                canister_id: 404,
                kind: CallKind::Query,
                method: "get".into(),
                arg: vec![],
            })
            .unwrap_err(),
            IcError::CanisterNotFound(404)
        );
    }

    #[test]
    fn threshold_is_two_f_plus_one() {
        let ic = InternetComputer::new(1, 4, 1);
        assert_eq!(ic.subnets()[0].threshold(), 3);
        let ic = InternetComputer::new(1, 13, 1);
        assert_eq!(ic.subnets()[0].threshold(), 9);
    }
}

//! The client-side service worker (paper §4.2): translates ordinary
//! requests to IC messages *inside the browser* and verifies subnet
//! certificates itself, so a lying boundary node can censor but never
//! forge.
//!
//! The paper notes the service-worker path "should be avoided for now"
//! for *Revelio attestation* because its (re-)loading is only partially
//! controllable — a malicious boundary node could serve a compromised
//! worker on first contact. The simulation exposes both facts: the
//! worker's verification is sound once you have an honest copy, and the
//! bootstrap remains the weak point unless the boundary node itself is a
//! Revelio VM.

use revelio_crypto::ed25519::VerifyingKey;

use crate::boundary::API_CALL_PATH;
use crate::canister::{decode_asset_response, CallKind};
use crate::ic::IcRequest;
use crate::subnet::CertifiedResponse;
use crate::IcError;

/// A transport that can POST bytes to a boundary node (implemented by
/// HTTPS sessions in integration tests and examples).
pub trait BoundaryTransport {
    /// Posts `body` to `path`, returning the response body.
    ///
    /// # Errors
    ///
    /// Returns [`IcError::CanisterRejected`] describing transport failures
    /// (the worker surfaces them to the page as network errors).
    fn post(&mut self, path: &str, body: Vec<u8>) -> Result<Vec<u8>, IcError>;
}

/// The in-browser service worker with pinned subnet keys.
pub struct ServiceWorker {
    subnet_keys: Vec<VerifyingKey>,
    threshold: usize,
}

impl std::fmt::Debug for ServiceWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceWorker")
            .field("subnet_keys", &self.subnet_keys.len())
            .field("threshold", &self.threshold)
            .finish_non_exhaustive()
    }
}

impl ServiceWorker {
    /// Creates a worker pinning the target subnet's keys and threshold.
    #[must_use]
    pub fn new(subnet_keys: Vec<VerifyingKey>, threshold: usize) -> Self {
        ServiceWorker {
            subnet_keys,
            threshold,
        }
    }

    /// Performs a verified IC call through the boundary node.
    ///
    /// # Errors
    ///
    /// Returns [`IcError::CertificateInvalid`] when the boundary node's
    /// response fails threshold verification (tampering detected), plus
    /// transport and decode errors.
    pub fn call(
        &self,
        transport: &mut dyn BoundaryTransport,
        request: &IcRequest,
    ) -> Result<Vec<u8>, IcError> {
        let raw = transport.post(API_CALL_PATH, request.to_bytes())?;
        let certified = CertifiedResponse::from_bytes(&raw)?;
        if certified.canister_id != request.canister_id {
            return Err(IcError::CertificateInvalid);
        }
        certified.verify(&self.subnet_keys, self.threshold)?;
        Ok(certified.payload)
    }

    /// Fetches a web asset through the verified path: the in-browser
    /// equivalent of the dapp's `fetch("/...")`.
    ///
    /// # Errors
    ///
    /// As for [`ServiceWorker::call`].
    pub fn fetch_asset(
        &self,
        transport: &mut dyn BoundaryTransport,
        frontend_canister: u64,
        path: &str,
    ) -> Result<(String, Vec<u8>), IcError> {
        let payload = self.call(
            transport,
            &IcRequest {
                canister_id: frontend_canister,
                kind: CallKind::Query,
                method: "http_request".into(),
                arg: path.as_bytes().to_vec(),
            },
        )?;
        decode_asset_response(&payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::BoundaryNode;
    use crate::canister::AssetCanister;
    use crate::ic::InternetComputer;
    use revelio_http::message::{Request, Response};
    use revelio_http::router::Router;
    use std::sync::Arc;

    /// Drives the boundary router directly (no network) as a transport.
    struct DirectTransport {
        router: Router,
    }

    impl BoundaryTransport for DirectTransport {
        fn post(&mut self, path: &str, body: Vec<u8>) -> Result<Vec<u8>, IcError> {
            let resp: Response = self.router.dispatch(&Request::post(path, body));
            if resp.is_success() {
                Ok(resp.body)
            } else {
                Err(IcError::CanisterRejected(format!(
                    "boundary status {}",
                    resp.status
                )))
            }
        }
    }

    fn setup() -> (ServiceWorker, BoundaryNode, u64) {
        let ic = Arc::new(InternetComputer::new(1, 4, 5));
        let mut assets = AssetCanister::new();
        assets.insert("/", "text/html", b"<html>verified dapp</html>".to_vec());
        let id = ic.create_canister(&assets);
        let subnet = ic.subnet_of(id).unwrap();
        let worker = ServiceWorker::new(subnet.public_keys().to_vec(), subnet.threshold());
        let bn = BoundaryNode::new(ic, id);
        (worker, bn, id)
    }

    #[test]
    fn verified_fetch_through_honest_boundary() {
        let (worker, bn, id) = setup();
        let mut transport = DirectTransport {
            router: bn.router(),
        };
        let (ct, body) = worker.fetch_asset(&mut transport, id, "/").unwrap();
        assert_eq!(ct, "text/html");
        assert_eq!(body, b"<html>verified dapp</html>");
    }

    #[test]
    fn tampering_boundary_detected_by_worker() {
        let (worker, bn, id) = setup();
        bn.set_tampering(true);
        let mut transport = DirectTransport {
            router: bn.router(),
        };
        assert_eq!(
            worker.fetch_asset(&mut transport, id, "/").unwrap_err(),
            IcError::CertificateInvalid
        );
    }

    #[test]
    fn worker_with_wrong_subnet_keys_rejects_everything() {
        let (_, bn, id) = setup();
        let other_ic = InternetComputer::new(1, 4, 999);
        let other_subnet = &other_ic.subnets()[0];
        let worker = ServiceWorker::new(
            other_subnet.public_keys().to_vec(),
            other_subnet.threshold(),
        );
        let mut transport = DirectTransport {
            router: bn.router(),
        };
        assert!(worker.fetch_asset(&mut transport, id, "/").is_err());
    }

    #[test]
    fn mismatched_canister_id_rejected() {
        let (worker, bn, _) = setup();
        let mut transport = DirectTransport {
            router: bn.router(),
        };
        // Ask for canister 1 but the transport returns a response for it;
        // now forge a request claiming canister 7 — id mismatch triggers.
        let req = IcRequest {
            canister_id: 7,
            kind: CallKind::Query,
            method: "http_request".into(),
            arg: b"/".to_vec(),
        };
        assert!(worker.call(&mut transport, &req).is_err());
    }
}

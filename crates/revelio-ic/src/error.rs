//! Error type for the IC simulation.

use std::error::Error;
use std::fmt;

use revelio_crypto::wire::WireError;

/// Errors surfaced by the IC substrate and boundary nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IcError {
    /// No subnet hosts the requested canister.
    CanisterNotFound(u64),
    /// The canister rejected the call.
    CanisterRejected(String),
    /// Too few replicas agreed on a response (Byzantine threshold not
    /// reached).
    NoConsensus {
        /// Matching responses observed.
        agreeing: usize,
        /// Required threshold.
        needed: usize,
    },
    /// A certified response failed signature verification.
    CertificateInvalid,
    /// Malformed message bytes.
    Wire(WireError),
    /// The upstream replicas were transiently unreachable (simulated
    /// outage); the call may be retried.
    Unavailable(String),
}

impl IcError {
    /// Whether this error is a transient condition worth retrying. Only
    /// [`IcError::Unavailable`] qualifies — a missing canister, a
    /// rejection, a failed consensus, or a bad certificate will not heal
    /// on its own.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, IcError::Unavailable(_))
    }
}

impl fmt::Display for IcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcError::CanisterNotFound(id) => write!(f, "canister {id} not found"),
            IcError::CanisterRejected(why) => write!(f, "canister rejected call: {why}"),
            IcError::NoConsensus { agreeing, needed } => {
                write!(f, "only {agreeing} replicas agree, {needed} needed")
            }
            IcError::CertificateInvalid => write!(f, "subnet certificate invalid"),
            IcError::Wire(e) => write!(f, "wire format error: {e}"),
            IcError::Unavailable(what) => write!(f, "{what} temporarily unavailable"),
        }
    }
}

impl Error for IcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IcError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for IcError {
    fn from(e: WireError) -> Self {
        IcError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        assert!(IcError::CanisterNotFound(7).to_string().contains('7'));
        let e = IcError::NoConsensus {
            agreeing: 1,
            needed: 3,
        };
        assert!(e.to_string().contains('3'));
    }
}

//! An Internet Computer (IC) substrate simulation and the boundary-node
//! protocol-translation proxy — the paper's elevated-security use case
//! (§4.2).
//!
//! The IC hosts smart contracts ("canisters") on subnets of replicas whose
//! responses are certified by a threshold of replica signatures, providing
//! Byzantine fault tolerance. Browsers speak HTTP, not the IC protocol, so
//! **boundary nodes** translate: an ordinary HTTP request becomes an IC
//! message, and the response's certificate is checked before the payload
//! is returned. A *malicious* boundary node can silently rewrite what the
//! user sees — which is exactly why the paper runs boundary nodes inside
//! Revelio VMs that end-users can attest.
//!
//! Module map:
//!
//! * [`canister`] — the canister model plus key-value and web-asset
//!   canisters;
//! * [`subnet`] — replicas, Byzantine-fault-tolerant execution, and
//!   threshold-certified responses (k-of-n Ed25519 multi-signature
//!   standing in for BLS threshold signatures — substitution documented
//!   in `DESIGN.md`);
//! * [`ic`] — the network of subnets with canister routing;
//! * [`boundary`] — the HTTP↔IC translation router to mount inside a
//!   Revelio VM, including a tamper switch for the malicious-proxy threat;
//! * [`service_worker`] — the client-side translation path: the browser
//!   verifies subnet certificates itself, so even a lying boundary node
//!   cannot forge payloads (only censor).

pub mod boundary;
pub mod canister;
pub mod error;
pub mod ic;
pub mod service_worker;
pub mod subnet;

pub use error::IcError;

//! Subnets: replicated canister execution with threshold-certified
//! responses.
//!
//! The real IC certifies subnet responses with BLS threshold signatures;
//! this simulation uses a k-of-n Ed25519 multi-signature with the same
//! verification interface (a verifier holds the subnet's replica public
//! keys and threshold). Byzantine replicas can be injected to check the
//! fault-tolerance behaviour.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use revelio_crypto::ed25519::{Signature, SigningKey, VerifyingKey, SIGNATURE_LEN};
use revelio_crypto::sha2::Sha256;
use revelio_crypto::wire::{ByteReader, ByteWriter};

use crate::canister::{CallKind, Canister};
use crate::IcError;

/// A response certified by a threshold of subnet replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifiedResponse {
    /// Canister the response came from.
    pub canister_id: u64,
    /// The agreed payload.
    pub payload: Vec<u8>,
    /// `(replica index, signature)` pairs over the payload digest.
    pub signatures: Vec<(u32, Signature)>,
}

fn response_digest(canister_id: u64, payload: &[u8]) -> [u8; 32] {
    let mut w = ByteWriter::new();
    w.put_bytes(b"ic-response/v1");
    w.put_u64(canister_id);
    w.put_var_bytes(payload);
    Sha256::digest(w.into_bytes())
}

impl CertifiedResponse {
    /// Verifies the certificate against the subnet's public keys and
    /// threshold.
    ///
    /// # Errors
    ///
    /// Returns [`IcError::CertificateInvalid`] when fewer than `threshold`
    /// *distinct, valid* replica signatures cover the payload.
    pub fn verify(&self, subnet_keys: &[VerifyingKey], threshold: usize) -> Result<(), IcError> {
        let digest = response_digest(self.canister_id, &self.payload);
        let mut valid_signers = std::collections::BTreeSet::new();
        for (index, signature) in &self.signatures {
            let Some(key) = subnet_keys.get(*index as usize) else {
                continue;
            };
            if key.verify(&digest, signature).is_ok() {
                valid_signers.insert(*index);
            }
        }
        if valid_signers.len() >= threshold {
            Ok(())
        } else {
            Err(IcError::CertificateInvalid)
        }
    }

    /// Serializes the certified response.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.canister_id);
        w.put_var_bytes(&self.payload);
        w.put_u32(self.signatures.len() as u32);
        for (index, sig) in &self.signatures {
            w.put_u32(*index);
            w.put_bytes(&sig.to_bytes());
        }
        w.into_bytes()
    }

    /// Decodes a certified response.
    ///
    /// # Errors
    ///
    /// Returns [`IcError::Wire`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IcError> {
        let mut r = ByteReader::new(bytes);
        let canister_id = r.get_u64()?;
        let payload = r.get_var_bytes()?.to_vec();
        let n = r.get_count(4 + SIGNATURE_LEN)?;
        let mut signatures = Vec::with_capacity(n);
        for _ in 0..n {
            let index = r.get_u32()?;
            let sig = Signature::from_bytes(r.get_array::<SIGNATURE_LEN>()?);
            signatures.push((index, sig));
        }
        r.finish()?;
        Ok(CertifiedResponse {
            canister_id,
            payload,
            signatures,
        })
    }
}

/// How a replica misbehaves (for fault-injection tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaFault {
    /// Honest.
    None,
    /// Returns flipped payload bytes.
    CorruptPayload,
    /// Stays silent (crash fault).
    Silent,
}

struct Replica {
    key: SigningKey,
    fault: ReplicaFault,
    canisters: BTreeMap<u64, Box<dyn Canister>>,
}

/// A subnet of replicas hosting a set of canisters.
pub struct Subnet {
    replicas: Mutex<Vec<Replica>>,
    threshold: usize,
    public_keys: Vec<VerifyingKey>,
}

impl std::fmt::Debug for Subnet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subnet")
            .field("replicas", &self.public_keys.len())
            .field("threshold", &self.threshold)
            .finish_non_exhaustive()
    }
}

impl Subnet {
    /// Creates a subnet of `n` replicas with a `threshold`-of-`n`
    /// certificate requirement.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold <= n`.
    #[must_use]
    pub fn new(n: usize, threshold: usize, seed: u64) -> Self {
        assert!(
            threshold > 0 && threshold <= n,
            "threshold must be in 1..=n"
        );
        let replicas: Vec<Replica> = (0..n)
            .map(|i| {
                let mut key_seed = [0u8; 32];
                key_seed[..8].copy_from_slice(&seed.to_le_bytes());
                key_seed[8..16].copy_from_slice(&(i as u64).to_le_bytes());
                Replica {
                    key: SigningKey::from_seed(&key_seed),
                    fault: ReplicaFault::None,
                    canisters: BTreeMap::new(),
                }
            })
            .collect();
        let public_keys = replicas.iter().map(|r| r.key.verifying_key()).collect();
        Subnet {
            replicas: Mutex::new(replicas),
            threshold,
            public_keys,
        }
    }

    /// The replicas' public keys (what verifiers pin).
    #[must_use]
    pub fn public_keys(&self) -> &[VerifyingKey] {
        &self.public_keys
    }

    /// The certificate threshold.
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Installs `canister` under `canister_id` on every replica.
    pub fn install_canister(&self, canister_id: u64, canister: &dyn Canister) {
        let mut replicas = self.replicas.lock();
        for r in replicas.iter_mut() {
            r.canisters.insert(canister_id, canister.replicate());
        }
    }

    /// Injects a fault into replica `index` (test harness).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range index.
    pub fn set_fault(&self, index: usize, fault: ReplicaFault) {
        self.replicas.lock()[index].fault = fault;
    }

    /// Executes a call on every replica and certifies the majority
    /// response.
    ///
    /// # Errors
    ///
    /// Returns [`IcError::CanisterNotFound`], the canister's rejection, or
    /// [`IcError::NoConsensus`] when Byzantine faults exceed the margin.
    pub fn execute(
        &self,
        canister_id: u64,
        kind: CallKind,
        method: &str,
        arg: &[u8],
    ) -> Result<CertifiedResponse, IcError> {
        let mut replicas = self.replicas.lock();
        if !replicas
            .iter()
            .any(|r| r.canisters.contains_key(&canister_id))
        {
            return Err(IcError::CanisterNotFound(canister_id));
        }

        // Each replica executes independently.
        let mut results: Vec<(usize, Result<Vec<u8>, IcError>)> = Vec::new();
        for (i, replica) in replicas.iter_mut().enumerate() {
            if replica.fault == ReplicaFault::Silent {
                continue;
            }
            let canister = replica
                .canisters
                .get_mut(&canister_id)
                .expect("installed on all replicas");
            let mut result = canister.handle(kind, method, arg);
            if replica.fault == ReplicaFault::CorruptPayload {
                result = result.map(|mut payload| {
                    for b in &mut payload {
                        *b ^= 0xff;
                    }
                    if payload.is_empty() {
                        payload.push(0x66);
                    }
                    payload
                });
            }
            results.push((i, result));
        }

        // Group identical outcomes; the largest group must reach the
        // threshold.
        let mut groups: BTreeMap<Vec<u8>, Vec<usize>> = BTreeMap::new();
        let mut rejections: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, result) in &results {
            match result {
                Ok(payload) => groups.entry(payload.clone()).or_default().push(*i),
                Err(e) => rejections.entry(e.to_string()).or_default().push(*i),
            }
        }
        let best = groups.iter().max_by_key(|(_, members)| members.len());
        let best_rejection = rejections.iter().max_by_key(|(_, members)| members.len());

        match (best, best_rejection) {
            (Some((payload, members)), _) if members.len() >= self.threshold => {
                let digest = response_digest(canister_id, payload);
                let signatures = members
                    .iter()
                    .map(|&i| (i as u32, replicas[i].key.sign(&digest)))
                    .collect();
                Ok(CertifiedResponse {
                    canister_id,
                    payload: payload.clone(),
                    signatures,
                })
            }
            (_, Some((reason, members))) if members.len() >= self.threshold => {
                Err(IcError::CanisterRejected(reason.clone()))
            }
            _ => Err(IcError::NoConsensus {
                agreeing: best.map_or(0, |(_, m)| m.len()),
                needed: self.threshold,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canister::{encode_put, KeyValueCanister};

    fn subnet() -> Subnet {
        let s = Subnet::new(4, 3, 7); // tolerates f=1
        s.install_canister(1, &KeyValueCanister::new());
        s
    }

    #[test]
    fn certified_query_roundtrip() {
        let s = subnet();
        s.execute(1, CallKind::Update, "put", &encode_put(b"k", b"v"))
            .unwrap();
        let resp = s.execute(1, CallKind::Query, "get", b"k").unwrap();
        assert_eq!(resp.payload, b"v");
        resp.verify(s.public_keys(), s.threshold()).unwrap();
    }

    #[test]
    fn one_byzantine_replica_tolerated() {
        let s = subnet();
        s.execute(1, CallKind::Update, "put", &encode_put(b"k", b"v"))
            .unwrap();
        s.set_fault(2, ReplicaFault::CorruptPayload);
        let resp = s.execute(1, CallKind::Query, "get", b"k").unwrap();
        assert_eq!(resp.payload, b"v");
        resp.verify(s.public_keys(), s.threshold()).unwrap();
    }

    #[test]
    fn too_many_faults_block_consensus() {
        let s = subnet();
        s.execute(1, CallKind::Update, "put", &encode_put(b"k", b"v"))
            .unwrap();
        s.set_fault(1, ReplicaFault::CorruptPayload);
        s.set_fault(2, ReplicaFault::Silent);
        assert!(matches!(
            s.execute(1, CallKind::Query, "get", b"k"),
            Err(IcError::NoConsensus { .. })
        ));
    }

    #[test]
    fn forged_certificate_rejected() {
        let s = subnet();
        let mut resp = s.execute(1, CallKind::Query, "get", b"k").unwrap();
        resp.payload = b"forged".to_vec();
        assert_eq!(
            resp.verify(s.public_keys(), s.threshold()),
            Err(IcError::CertificateInvalid)
        );
    }

    #[test]
    fn duplicate_signatures_do_not_meet_threshold() {
        let s = subnet();
        let mut resp = s.execute(1, CallKind::Query, "get", b"k").unwrap();
        // Keep only one signer, duplicated: distinct-signer count is 1.
        let first = resp.signatures[0];
        resp.signatures = vec![first, first, first];
        assert!(resp.verify(s.public_keys(), s.threshold()).is_err());
    }

    #[test]
    fn certificate_from_other_subnet_rejected() {
        let s1 = subnet();
        let s2 = Subnet::new(4, 3, 999);
        s2.install_canister(1, &KeyValueCanister::new());
        let resp = s2.execute(1, CallKind::Query, "get", b"k").unwrap();
        assert!(resp.verify(s1.public_keys(), s1.threshold()).is_err());
    }

    #[test]
    fn missing_canister_reported() {
        let s = subnet();
        assert_eq!(
            s.execute(9, CallKind::Query, "get", b"k").unwrap_err(),
            IcError::CanisterNotFound(9)
        );
    }

    #[test]
    fn unanimous_rejection_propagates() {
        let s = subnet();
        assert!(matches!(
            s.execute(1, CallKind::Query, "no-such-method", b"")
                .unwrap_err(),
            IcError::CanisterRejected(_)
        ));
    }

    #[test]
    fn serialization_roundtrip() {
        let s = subnet();
        let resp = s.execute(1, CallKind::Query, "len", b"").unwrap();
        let decoded = CertifiedResponse::from_bytes(&resp.to_bytes()).unwrap();
        assert_eq!(decoded, resp);
        decoded.verify(s.public_keys(), s.threshold()).unwrap();
    }

    #[test]
    fn updates_replicate_to_all() {
        let s = subnet();
        s.execute(1, CallKind::Update, "put", &encode_put(b"a", b"1"))
            .unwrap();
        // Silence one replica; the remaining three still agree on state.
        s.set_fault(0, ReplicaFault::Silent);
        let resp = s.execute(1, CallKind::Query, "get", b"a").unwrap();
        assert_eq!(resp.payload, b"1");
    }
}

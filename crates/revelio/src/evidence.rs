//! The attestation evidence bundle a Revelio VM serves at its well-known
//! URL (§5.3.2): the VCEK-signed report (with the TLS public key's hash in
//! `REPORT_DATA`) plus the endorsement chain, so verifiers need only one
//! extra fetch — the KDS query — and can skip even that with a warm cache.

use revelio_crypto::ed25519::VerifyingKey;
use revelio_crypto::sha2::Sha256;
use revelio_crypto::wire::{ByteReader, ByteWriter};
use sev_snp::kds::VcekCertChain;
use sev_snp::report::SignedReport;

use crate::RevelioError;

/// Evidence served to end-users.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvidenceBundle {
    /// Report whose `REPORT_DATA` holds SHA-256 of the service's TLS
    /// public key.
    pub report: SignedReport,
    /// The ARK→ASK→VCEK chain for the producing chip (advisory: verifiers
    /// may fetch their own from the KDS instead of trusting this copy).
    pub chain: VcekCertChain,
}

impl EvidenceBundle {
    /// Serializes the bundle.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(b"RVEV1");
        w.put_var_bytes(&self.report.to_bytes());
        w.put_var_bytes(&self.chain.to_bytes());
        w.into_bytes()
    }

    /// Decodes a bundle.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::EvidenceRejected`] for non-evidence bytes
    /// and the underlying errors for malformed contents.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RevelioError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_array::<5>().map_err(RevelioError::Wire)?;
        if &magic != b"RVEV1" {
            return Err(RevelioError::EvidenceRejected(
                "missing evidence magic".into(),
            ));
        }
        let report = SignedReport::from_bytes(r.get_var_bytes()?)?;
        let chain = VcekCertChain::from_bytes(r.get_var_bytes()?)?;
        r.finish()?;
        Ok(EvidenceBundle { report, chain })
    }

    /// Checks the TLS binding: `REPORT_DATA[..32]` must equal the SHA-256
    /// of `tls_public_key` (requirement **F3**).
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::TlsBindingMismatch`] when the connection's
    /// key is not the attested key.
    pub fn check_tls_binding(&self, tls_public_key: &VerifyingKey) -> Result<(), RevelioError> {
        let expected = Sha256::digest(tls_public_key.to_bytes());
        if revelio_crypto::ct::eq(&self.report.report.report_data.as_bytes()[..32], &expected) {
            Ok(())
        } else {
            Err(RevelioError::TlsBindingMismatch)
        }
    }
}

/// The `REPORT_DATA` a node uses to bind a TLS key into its report.
#[must_use]
pub fn tls_binding_report_data(tls_public_key: &VerifyingKey) -> [u8; 32] {
    Sha256::digest(tls_public_key.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_crypto::ed25519::SigningKey;
    use sev_snp::ids::{ChipId, GuestPolicy, TcbVersion};
    use sev_snp::kds::KeyDistributionService;
    use sev_snp::platform::{AmdRootOfTrust, SnpPlatform};
    use sev_snp::report::ReportData;
    use std::sync::Arc;

    fn bundle(tls_key: &SigningKey) -> EvidenceBundle {
        let amd = Arc::new(AmdRootOfTrust::from_seed([1; 32]));
        let platform = SnpPlatform::new(
            Arc::clone(&amd),
            ChipId::from_seed(1),
            TcbVersion::default(),
        );
        let guest = platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let report = guest.attestation_report(ReportData::from_slice(&tls_binding_report_data(
            &tls_key.verifying_key(),
        )));
        let chain = KeyDistributionService::new(amd)
            .vcek_chain(&platform.chip_id(), &platform.tcb_version())
            .unwrap();
        EvidenceBundle { report, chain }
    }

    #[test]
    fn roundtrip() {
        let key = SigningKey::from_seed(&[2; 32]);
        let b = bundle(&key);
        assert_eq!(EvidenceBundle::from_bytes(&b.to_bytes()).unwrap(), b);
    }

    #[test]
    fn tls_binding_accepts_bound_key() {
        let key = SigningKey::from_seed(&[2; 32]);
        bundle(&key)
            .check_tls_binding(&key.verifying_key())
            .unwrap();
    }

    #[test]
    fn tls_binding_rejects_other_key() {
        let key = SigningKey::from_seed(&[2; 32]);
        let attacker = SigningKey::from_seed(&[3; 32]);
        assert_eq!(
            bundle(&key).check_tls_binding(&attacker.verifying_key()),
            Err(RevelioError::TlsBindingMismatch)
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(EvidenceBundle::from_bytes(b"not evidence").is_err());
        assert!(matches!(
            EvidenceBundle::from_bytes(b"XXXXXYYYY"),
            Err(RevelioError::EvidenceRejected(_))
        ));
    }
}

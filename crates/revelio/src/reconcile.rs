//! Desired-state reconciliation for a Revelio fleet — the control plane.
//!
//! Provisioning (`sp`) is imperative: one shot, one fleet, one
//! certificate. Operating a fleet is not — certificates age toward
//! `not_after_ms`, partitioned racks heal and their nodes want back in,
//! and the operator ships a new image that has to roll out without ever
//! serving an unattested byte. The [`Reconciler`] owns a declared
//! [`FleetSpec`] and drives the observed fleet toward it on the sim
//! clock: each [`Reconciler::tick`] diffs observation against spec and
//! schedules a **bounded** amount of work —
//!
//! * **re-admission**: quarantined nodes whose partitions healed are
//!   re-attested ([`ServiceProviderNode::observe_node`]), re-issued the
//!   fleet certificate and rejoin the serving roster;
//! * **renewal**: the shared certificate is re-ordered ahead of its
//!   `not_after_ms` (inside [`FleetSpec::renewal_lead_ms`]) under the
//!   CA's usual rate-limit and retry machinery — an expired certificate
//!   is an outage the paper's verifier cannot distinguish from attack;
//! * **rolling upgrade**: a canary-first attestation wave moves the
//!   fleet to [`FleetSpec::target_measurement`]. Canaries are upgraded
//!   and *attestation-verified* while the rest of the fleet keeps
//!   serving the old image; any canary whose measured launch differs
//!   from the target (a diverging build pipeline, a tampered image)
//!   **halts** the rollout and names the diverging node set. Only a
//!   fully verified fleet is re-provisioned onto the new golden value.
//!
//! Every decision is a pure function of observed state, the spec and the
//! deterministic sim — the reconciler keeps an append-only transcript of
//! its transitions whose digest is byte-identical across thread counts
//! and fabric modes (the determinism suites pin this).
//!
//! Mutual attestation shapes the rollout: nodes only exchange the fleet
//! TLS key with peers measuring *identically* (`node::validate_peer_report`),
//! so an upgraded node cannot fetch the key from an old-image leader.
//! Canaries therefore stay dark (verified but not serving) until the
//! whole fleet measures the target, and the final step is a full
//! re-provision that re-establishes certificate and key distribution
//! among now-identical peers.

use std::collections::{BTreeMap, BTreeSet};

use revelio_crypto::sha2::Sha256;
use revelio_net::dns::DnsZone;
use revelio_net::net::SimNet;
use revelio_net::DomainEffect;
use revelio_pki::cert::CertificateChain;
use revelio_telemetry::Telemetry;
use sev_snp::measurement::Measurement;

use crate::registry::GoldenSet;
use crate::sp::{ProvisionReport, ServiceProviderNode};
use crate::RevelioError;

/// The fleet's declared desired state — what the operator wants true,
/// independent of what currently is.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// The service domain (DNS is re-pointed at the leader on topology
    /// changes when the reconciler holds the zone).
    pub domain: String,
    /// The launch measurement every node should be running.
    pub target_measurement: Measurement,
    /// Minimum acceptable platform TCB, in the on-report packed `u64`
    /// form ([`sev_snp::ids::TcbVersion::to_u64`]). Nodes observed below
    /// the floor are out of spec.
    pub tcb_floor: u64,
    /// Renew the shared certificate once it enters its final
    /// `renewal_lead_ms` of validity.
    pub renewal_lead_ms: u64,
    /// Fraction of the fleet upgraded (and attestation-verified) as
    /// canaries before the wave. The serving leader is never a canary —
    /// the site must keep serving the old image until the wave commits.
    pub canary_fraction: f64,
    /// Virtual time that passes per [`Reconciler::tick`], ms.
    pub tick_interval_ms: u64,
    /// Upper bound on upgrade actuations per tick — the "bounded work"
    /// knob that keeps one tick from redeploying the whole fleet.
    pub wave_batch: usize,
}

impl FleetSpec {
    /// A spec with operational defaults: no TCB floor, a 7-day renewal
    /// lead (Let's Encrypt's recommended window relative to the sim CA's
    /// 90-day lifetime), 25% canaries, hourly ticks, two upgrades per
    /// tick.
    #[must_use]
    pub fn new(domain: &str, target_measurement: Measurement) -> Self {
        FleetSpec {
            domain: domain.to_owned(),
            target_measurement,
            tcb_floor: 0,
            renewal_lead_ms: 7 * 24 * 3_600_000,
            canary_fraction: 0.25,
            tick_interval_ms: 3_600_000,
            wave_batch: 2,
        }
    }
}

/// Where the rolling upgrade currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutPhase {
    /// A rollout is pending (spec target differs from the fleet) but no
    /// canaries have been planned yet.
    Idle,
    /// Canaries are being upgraded and attestation-verified; the rest of
    /// the fleet serves the old image.
    Canary,
    /// Canaries passed; the remaining nodes are upgraded in bounded
    /// batches, the serving leader last.
    Wave,
    /// A node's measured launch diverged from the target: the rollout is
    /// frozen, the diverging set reported, the old image keeps serving.
    /// Only a new [`Reconciler::set_spec`] resumes.
    Halted,
    /// The fleet measures the target and was re-provisioned onto it.
    Complete,
}

impl RolloutPhase {
    /// Stable lowercase name for transcripts and metric labels.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RolloutPhase::Idle => "idle",
            RolloutPhase::Canary => "canary",
            RolloutPhase::Wave => "wave",
            RolloutPhase::Halted => "halted",
            RolloutPhase::Complete => "complete",
        }
    }

    /// Stable numeric encoding for the `revelio_reconcile_phase` gauge.
    #[must_use]
    pub fn gauge_value(self) -> f64 {
        match self {
            RolloutPhase::Idle => 0.0,
            RolloutPhase::Canary => 1.0,
            RolloutPhase::Wave => 2.0,
            RolloutPhase::Halted => 3.0,
            RolloutPhase::Complete => 4.0,
        }
    }
}

/// The reconciler's lever on the machines themselves: tear a node down
/// and redeploy it — same chip, same addresses, same identity seed —
/// booted from the operator's *current build* of the target image. The
/// reconciler never trusts the actuator's claim of success; it verifies
/// by re-attestation ([`ServiceProviderNode::observe_node`]), which is
/// exactly where build-pipeline drift is caught.
pub trait NodeActuator {
    /// Redeploys `bootstrap` from the current target build.
    ///
    /// # Errors
    ///
    /// Any boot/bind failure; the reconciler quarantines the node.
    fn upgrade(&mut self, bootstrap: &str) -> Result<(), RevelioError>;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeHealth {
    /// On the serving roster with the fleet certificate installed.
    Admitted,
    /// Excluded: unreachable, rejected, or out of spec; the re-admission
    /// loop owns its way back.
    Quarantined,
}

struct NodeSlot {
    bootstrap: String,
    health: NodeHealth,
}

/// The control-plane loop. See the module docs for the model.
pub struct Reconciler<A: NodeActuator> {
    sp: ServiceProviderNode,
    net: SimNet,
    spec: FleetSpec,
    actuator: A,
    telemetry: Option<Telemetry>,
    dns: Option<DnsZone>,
    /// Bootstrap → public address, for re-pointing DNS at a new leader.
    public_addresses: BTreeMap<String, String>,
    /// Fleet order is decision order — the deterministic spine.
    nodes: Vec<NodeSlot>,
    chain: CertificateChain,
    leader: String,
    /// What admitted nodes are expected to measure *now* (the old image
    /// until a rollout completes, the target afterwards).
    current_measurement: Measurement,
    phase: RolloutPhase,
    canaries: BTreeSet<String>,
    /// Actuated this rollout (may not have verified yet).
    upgraded: BTreeSet<String>,
    /// Observed at the target measurement this rollout.
    verified: BTreeSet<String>,
    diverging: BTreeMap<String, Measurement>,
    transcript: Vec<String>,
    ticks: u64,
    probe_cursor: usize,
    renewal_failing: bool,
}

impl<A: NodeActuator> Reconciler<A> {
    /// Builds a reconciler over a provisioned fleet: `bootstraps` in
    /// fleet order, `provision` naming the leader, chain and initial
    /// quarantine set, `current_measurement` what the fleet measures
    /// today.
    #[must_use]
    pub fn new(
        sp: ServiceProviderNode,
        net: SimNet,
        spec: FleetSpec,
        actuator: A,
        bootstraps: Vec<String>,
        provision: &ProvisionReport,
        current_measurement: Measurement,
    ) -> Self {
        let quarantined: BTreeSet<&str> = provision
            .quarantined
            .iter()
            .map(|q| q.node.as_str())
            .collect();
        let nodes = bootstraps
            .into_iter()
            .map(|bootstrap| {
                let health = if quarantined.contains(bootstrap.as_str()) {
                    NodeHealth::Quarantined
                } else {
                    NodeHealth::Admitted
                };
                NodeSlot { bootstrap, health }
            })
            .collect();
        let phase = if current_measurement == spec.target_measurement {
            RolloutPhase::Complete
        } else {
            RolloutPhase::Idle
        };
        Reconciler {
            sp,
            net,
            spec,
            actuator,
            telemetry: None,
            dns: None,
            public_addresses: BTreeMap::new(),
            nodes,
            chain: provision.chain.clone(),
            leader: provision.leader_bootstrap.clone(),
            current_measurement,
            phase,
            canaries: BTreeSet::new(),
            upgraded: BTreeSet::new(),
            verified: BTreeSet::new(),
            diverging: BTreeMap::new(),
            transcript: Vec::new(),
            ticks: 0,
            probe_cursor: 0,
            renewal_failing: false,
        }
    }

    /// Records reconcile spans, counters and gauges into `telemetry`.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Hands the reconciler the DNS zone plus the bootstrap → public
    /// address map, so a leader change (post-rollout re-provision)
    /// re-points the domain.
    #[must_use]
    pub fn with_dns(mut self, dns: DnsZone, public_addresses: BTreeMap<String, String>) -> Self {
        self.dns = Some(dns);
        self.public_addresses = public_addresses;
        self
    }

    /// Replaces the spec — the operator's only lever. Rollout state is
    /// re-planned from scratch (this is also how a [`RolloutPhase::Halted`]
    /// rollout resumes once the build pipeline is fixed).
    pub fn set_spec(&mut self, spec: FleetSpec) {
        self.spec = spec;
        self.canaries.clear();
        self.upgraded.clear();
        self.verified.clear();
        self.diverging.clear();
        self.phase = if self.current_measurement == self.spec.target_measurement {
            RolloutPhase::Complete
        } else {
            RolloutPhase::Idle
        };
        self.event(&format!(
            "spec-updated target={} phase={}",
            self.spec.target_measurement,
            self.phase.as_str()
        ));
    }

    /// One control-loop iteration: advance the clock by the tick
    /// interval, then re-admit, renew, roll out and probe — each step
    /// bounded.
    pub fn tick(&mut self) {
        self.ticks += 1;
        self.net
            .clock()
            .advance_ms(self.spec.tick_interval_ms as f64);
        let span = self
            .telemetry
            .as_ref()
            .map(|t| t.span_with("reconcile.tick", &[("phase", self.phase.as_str())]));
        self.step_partition_watch();
        self.step_readmission();
        self.step_renewal();
        self.step_rollout();
        self.step_probe();
        if let Some(telemetry) = &self.telemetry {
            telemetry.counter_add("revelio_reconcile_ticks_total", 1);
            telemetry.gauge_set("revelio_reconcile_phase", self.phase.gauge_value());
            telemetry.gauge_set(
                "revelio_reconcile_out_of_spec_nodes",
                self.out_of_spec() as f64,
            );
        }
        if let Some(span) = span {
            span.finish_ms();
        }
    }

    /// Runs ticks until [`Reconciler::is_converged`] or `max_ticks`;
    /// returns whether convergence was reached.
    pub fn run_until_converged(&mut self, max_ticks: u64) -> bool {
        for _ in 0..max_ticks {
            if self.is_converged() {
                return true;
            }
            self.tick();
        }
        self.is_converged()
    }

    /// Runs exactly `n` ticks (soak driver; halted rollouts never
    /// converge, but their steady state is still worth exercising).
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Converged: every node admitted at the current measurement, the
    /// rollout complete, and the certificate outside its renewal window.
    #[must_use]
    pub fn is_converged(&self) -> bool {
        let now_ms = self.net.clock().now_us() / 1000;
        self.phase == RolloutPhase::Complete
            && self
                .nodes
                .iter()
                .all(|slot| slot.health == NodeHealth::Admitted)
            && !self
                .chain
                .leaf()
                .expires_within(now_ms, self.spec.renewal_lead_ms)
    }

    /// The rollout phase.
    #[must_use]
    pub fn phase(&self) -> RolloutPhase {
        self.phase
    }

    /// Nodes whose measured launch diverged from the rollout target,
    /// with what they actually measured.
    #[must_use]
    pub fn diverging(&self) -> &BTreeMap<String, Measurement> {
        &self.diverging
    }

    /// The current shared certificate chain.
    #[must_use]
    pub fn chain(&self) -> &CertificateChain {
        &self.chain
    }

    /// The current leader's bootstrap address.
    #[must_use]
    pub fn leader(&self) -> &str {
        &self.leader
    }

    /// Quarantined nodes, in fleet order.
    #[must_use]
    pub fn quarantined(&self) -> Vec<String> {
        self.nodes_with(NodeHealth::Quarantined)
    }

    /// Admitted nodes, in fleet order.
    #[must_use]
    pub fn admitted(&self) -> Vec<String> {
        self.nodes_with(NodeHealth::Admitted)
    }

    /// Ticks run so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The decision transcript: one line per state transition, in order.
    #[must_use]
    pub fn transcript(&self) -> &[String] {
        &self.transcript
    }

    /// SHA-256 of the transcript — the byte-identity handle the
    /// determinism suites compare across threads and fabric modes.
    #[must_use]
    pub fn transcript_digest(&self) -> String {
        let mut joined = Vec::new();
        for line in &self.transcript {
            joined.extend_from_slice(line.as_bytes());
            joined.push(b'\n');
        }
        revelio_crypto::hex::encode(Sha256::digest(&joined))
    }

    /// The actuator, for scenario drivers that need to reach through
    /// (e.g. injecting or clearing build drift between specs).
    pub fn actuator_mut(&mut self) -> &mut A {
        &mut self.actuator
    }

    fn nodes_with(&self, health: NodeHealth) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|slot| slot.health == health)
            .map(|slot| slot.bootstrap.clone())
            .collect()
    }

    fn out_of_spec(&self) -> usize {
        let quarantined = self
            .nodes
            .iter()
            .filter(|s| s.health == NodeHealth::Quarantined)
            .count();
        let pending_upgrade = match self.phase {
            RolloutPhase::Canary | RolloutPhase::Wave | RolloutPhase::Halted => self
                .nodes
                .iter()
                .filter(|s| {
                    s.health == NodeHealth::Admitted && !self.verified.contains(&s.bootstrap)
                })
                .count(),
            RolloutPhase::Idle | RolloutPhase::Complete => 0,
        };
        quarantined + pending_upgrade
    }

    fn set_health(&mut self, bootstrap: &str, health: NodeHealth) {
        if let Some(slot) = self.nodes.iter_mut().find(|s| s.bootstrap == bootstrap) {
            slot.health = health;
        }
    }

    fn event(&mut self, message: &str) {
        self.transcript.push(format!("[{}] {message}", self.ticks));
    }

    fn count(&self, name: &str) {
        if let Some(telemetry) = &self.telemetry {
            telemetry.counter_add(name, 1);
        }
    }

    /// Whether an active partition domain currently blackholes traffic
    /// toward `address` — the reconciler's "the heal is scheduled, don't
    /// burn retries into it" signal.
    fn is_partitioned(&self, address: &str) -> bool {
        let now_us = self.net.clock().now_us();
        self.net.fault_domains().iter().any(|d| {
            matches!(d.effect, DomainEffect::Partition)
                && d.is_active_at(now_us)
                && d.matches(None, address)
        })
    }

    /// Roster watch: an admitted node inside an **active partition
    /// domain** leaves the serving roster now — deterministically, from
    /// the fabric's installed domains, without burning a probe into the
    /// blackout. This is *not* an attestation verdict (transient faults
    /// never are); it is roster bookkeeping, and re-admission re-attests
    /// the node the moment its scheduled heal lifts.
    fn step_partition_watch(&mut self) {
        for bootstrap in self.nodes_with(NodeHealth::Admitted) {
            if self.is_partitioned(&bootstrap) {
                self.set_health(&bootstrap, NodeHealth::Quarantined);
                self.count("revelio_reconcile_quarantines_total");
                self.event(&format!("partitioned {bootstrap}"));
            }
        }
    }

    /// Re-admission: quarantined nodes whose partitions lifted are
    /// re-attested and, when they measure what the fleet measures,
    /// re-issued the certificate and returned to the roster. Nodes on a
    /// stale image after a completed rollout are upgraded first.
    fn step_readmission(&mut self) {
        for bootstrap in self.nodes_with(NodeHealth::Quarantined) {
            if self.is_partitioned(&bootstrap) {
                continue;
            }
            let Ok(observed) = self.sp.observe_node(&bootstrap) else {
                // Unreachable or rejected: not a transition, stay
                // quarantined and retry next tick.
                continue;
            };
            if observed.tcb.to_u64() < self.spec.tcb_floor {
                continue;
            }
            if observed.measurement != self.current_measurement {
                // A healed node on a stale image: once the fleet itself
                // is settled on the target, upgrade it in place and let
                // the re-observation below decide. Mid-rollout the wave
                // machinery owns upgrades — admit only exact matches.
                if self.phase != RolloutPhase::Complete
                    || self.actuator.upgrade(&bootstrap).is_err()
                {
                    continue;
                }
                self.count("revelio_reconcile_upgrades_total");
                self.event(&format!(
                    "upgrade {bootstrap} (stale image on re-admission)"
                ));
                let Ok(reobserved) = self.sp.observe_node(&bootstrap) else {
                    continue;
                };
                if reobserved.measurement != self.current_measurement
                    || reobserved.tcb.to_u64() < self.spec.tcb_floor
                {
                    continue;
                }
            }
            if self
                .sp
                .install_certificate(&bootstrap, &self.chain, &self.leader)
                .is_ok()
            {
                self.set_health(&bootstrap, NodeHealth::Admitted);
                self.count("revelio_reconcile_readmissions_total");
                self.event(&format!("readmit {bootstrap}"));
            }
        }
    }

    /// Renewal: once the chain enters its lead window, re-order for the
    /// leader's (unchanged) key and push the fresh chain to the serving
    /// roster. Nodes reuse their held key (`install_cert` fast path), so
    /// a renewal never redistributes key material.
    fn step_renewal(&mut self) {
        let now_ms = self.net.clock().now_us() / 1000;
        if !self
            .chain
            .leaf()
            .expires_within(now_ms, self.spec.renewal_lead_ms)
        {
            return;
        }
        match self.sp.renew_certificate(&self.leader, &self.chain) {
            Ok(new_chain) => {
                self.renewal_failing = false;
                self.count("revelio_reconcile_renewals_total");
                self.event(&format!(
                    "renew not_after_ms={}",
                    new_chain.leaf().not_after_ms
                ));
                for bootstrap in self.nodes_with(NodeHealth::Admitted) {
                    // Mid-wave upgraded nodes measure the target and
                    // cannot key-exchange with the old-image leader; the
                    // completion re-provision hands them the fresh chain.
                    if self.upgraded.contains(&bootstrap) {
                        continue;
                    }
                    if self
                        .sp
                        .install_certificate(&bootstrap, &new_chain, &self.leader)
                        .is_err()
                    {
                        self.set_health(&bootstrap, NodeHealth::Quarantined);
                        self.event(&format!("renew-install-fail {bootstrap}"));
                    }
                }
                self.chain = new_chain;
            }
            Err(_) => {
                // Rate limits and transient faults retry next tick; the
                // lead window exists precisely to absorb them. Record
                // only the transition into the failing state.
                if !self.renewal_failing {
                    self.renewal_failing = true;
                    self.event("renew-deferred");
                }
            }
        }
    }

    fn step_rollout(&mut self) {
        match self.phase {
            RolloutPhase::Complete | RolloutPhase::Halted => {}
            RolloutPhase::Idle => self.plan_canaries(),
            RolloutPhase::Canary => {
                let targets: Vec<String> = self
                    .nodes_with(NodeHealth::Admitted)
                    .into_iter()
                    .filter(|b| self.canaries.contains(b))
                    .collect();
                self.rollout_step(&targets);
                // The wave starts only on a verified canary signal: every
                // *reachable* canary proved the target measurement, and at
                // least one did (all-canaries-partitioned pauses here
                // until the heal).
                if self.phase == RolloutPhase::Canary
                    && !targets.is_empty()
                    && targets.iter().all(|b| self.verified.contains(b))
                {
                    self.phase = RolloutPhase::Wave;
                    self.event("canary-pass");
                }
            }
            RolloutPhase::Wave => {
                // Fleet order, serving leader strictly last: the site
                // keeps answering on the old image until the final
                // actuation, and the completing re-provision brings the
                // whole fleet back up on the target.
                let mut targets: Vec<String> = self
                    .nodes_with(NodeHealth::Admitted)
                    .into_iter()
                    .filter(|b| *b != self.leader)
                    .collect();
                let leader_pending = targets.len()
                    == targets
                        .iter()
                        .filter(|b| self.verified.contains(*b))
                        .count();
                if leader_pending
                    && self
                        .nodes
                        .iter()
                        .any(|s| s.bootstrap == self.leader && s.health == NodeHealth::Admitted)
                {
                    targets.push(self.leader.clone());
                }
                self.rollout_step(&targets);
                self.try_complete();
            }
        }
    }

    fn plan_canaries(&mut self) {
        if self.current_measurement == self.spec.target_measurement {
            self.phase = RolloutPhase::Complete;
            return;
        }
        let admitted = self.nodes_with(NodeHealth::Admitted);
        if admitted.is_empty() {
            return; // nothing to canary against yet; wait for re-admissions
        }
        let candidates: Vec<&String> = admitted.iter().filter(|b| **b != self.leader).collect();
        let wanted = ((admitted.len() as f64) * self.spec.canary_fraction)
            .ceil()
            .max(1.0) as usize;
        let count = wanted.min(candidates.len());
        self.canaries = candidates.into_iter().take(count).cloned().collect();
        let named: Vec<&str> = self.canaries.iter().map(String::as_str).collect();
        self.event(&format!(
            "rollout-start target={} canaries=[{}]",
            self.spec.target_measurement,
            named.join(", ")
        ));
        // A single-node fleet has no canary candidates (the leader is
        // the site): the wave owns the whole rollout.
        self.phase = if self.canaries.is_empty() {
            RolloutPhase::Wave
        } else {
            RolloutPhase::Canary
        };
    }

    /// One bounded rollout step over `targets` (fleet order): verify
    /// what was actuated, halt on divergence, then actuate up to
    /// `wave_batch` more.
    fn rollout_step(&mut self, targets: &[String]) {
        // Verify-before-actuate: an upgraded node must prove its
        // measured launch before the rollout spends budget on the next.
        for bootstrap in targets {
            if !self.upgraded.contains(bootstrap) || self.verified.contains(bootstrap) {
                continue;
            }
            match self.sp.observe_node(bootstrap) {
                Ok(observed)
                    if observed.measurement == self.spec.target_measurement
                        && observed.tcb.to_u64() >= self.spec.tcb_floor =>
                {
                    self.verified.insert(bootstrap.clone());
                    self.event(&format!("verify {bootstrap}"));
                }
                Ok(observed) => {
                    self.diverging
                        .insert(bootstrap.clone(), observed.measurement);
                }
                Err(_) => {} // transient; re-observe next tick
            }
        }
        if !self.diverging.is_empty() {
            self.phase = RolloutPhase::Halted;
            self.count("revelio_reconcile_drift_halts_total");
            let named: Vec<String> = self
                .diverging
                .iter()
                .map(|(node, measurement)| format!("{node}={measurement}"))
                .collect();
            self.event(&format!("rollout-halt diverging=[{}]", named.join(", ")));
            return;
        }
        let pending: Vec<String> = targets
            .iter()
            .filter(|b| !self.upgraded.contains(*b))
            .take(self.spec.wave_batch)
            .cloned()
            .collect();
        for bootstrap in pending {
            match self.actuator.upgrade(&bootstrap) {
                Ok(()) => {
                    self.upgraded.insert(bootstrap.clone());
                    self.count("revelio_reconcile_upgrades_total");
                    self.event(&format!("upgrade {bootstrap}"));
                }
                Err(_) => {
                    self.set_health(&bootstrap, NodeHealth::Quarantined);
                    self.event(&format!("upgrade-fail {bootstrap}"));
                }
            }
        }
    }

    /// Wave completion: every admitted node verified at the target ⇒
    /// rotate the golden set and re-provision the fleet onto the new
    /// image (fresh certificate, key distribution among now-identical
    /// peers, DNS at the new leader).
    fn try_complete(&mut self) {
        let admitted = self.nodes_with(NodeHealth::Admitted);
        if admitted.is_empty() || !admitted.iter().all(|b| self.verified.contains(b)) {
            return;
        }
        self.sp
            .set_golden(GoldenSet::from_measurements([self.spec.target_measurement]));
        match self.sp.provision(&admitted) {
            Ok(report) => {
                self.chain = report.chain.clone();
                self.leader = report.leader_bootstrap.clone();
                for q in &report.quarantined {
                    self.set_health(&q.node, NodeHealth::Quarantined);
                    self.event(&format!("provision-quarantine {}", q.node));
                }
                if let Some(dns) = &self.dns {
                    if let Some(public) = self.public_addresses.get(&self.leader) {
                        dns.set_address(&self.spec.domain, public);
                    }
                }
                self.current_measurement = self.spec.target_measurement;
                self.phase = RolloutPhase::Complete;
                self.upgraded.clear();
                self.verified.clear();
                self.canaries.clear();
                self.event(&format!("rollout-complete leader={}", self.leader));
            }
            Err(_) => {
                // Transient (CA outage, dropped packets): the fleet is
                // verified, re-provision retries next tick.
            }
        }
    }

    /// Steady-state drift watch: outside a rollout, re-attest one
    /// admitted node per tick (round-robin). A node measuring off-spec
    /// or below the TCB floor leaves the roster; re-admission owns the
    /// remediation.
    fn step_probe(&mut self) {
        if !matches!(self.phase, RolloutPhase::Idle | RolloutPhase::Complete) {
            return;
        }
        let admitted = self.nodes_with(NodeHealth::Admitted);
        if admitted.is_empty() {
            return;
        }
        let bootstrap = admitted[self.probe_cursor % admitted.len()].clone();
        self.probe_cursor += 1;
        if self.is_partitioned(&bootstrap) {
            return;
        }
        let Ok(observed) = self.sp.observe_node(&bootstrap) else {
            return; // transient: innocent until attested otherwise next lap
        };
        if observed.measurement != self.current_measurement {
            self.set_health(&bootstrap, NodeHealth::Quarantined);
            self.event(&format!(
                "out-of-spec {bootstrap} measurement={}",
                observed.measurement
            ));
        } else if observed.tcb.to_u64() < self.spec.tcb_floor {
            self.set_health(&bootstrap, NodeHealth::Quarantined);
            self.event(&format!(
                "out-of-spec {bootstrap} tcb={:#x} floor={:#x}",
                observed.tcb.to_u64(),
                self.spec.tcb_floor
            ));
        }
    }
}

impl<A: NodeActuator> std::fmt::Debug for Reconciler<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reconciler")
            .field("phase", &self.phase.as_str())
            .field("nodes", &self.nodes.len())
            .field("ticks", &self.ticks)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_are_operational() {
        let spec = FleetSpec::new("pad.example.org", Measurement::of_launch_context(b"img"));
        assert_eq!(spec.renewal_lead_ms, 604_800_000);
        assert!(spec.canary_fraction > 0.0 && spec.canary_fraction < 1.0);
        assert!(spec.wave_batch >= 1);
    }

    #[test]
    fn phase_names_and_gauge_values_are_stable() {
        let phases = [
            RolloutPhase::Idle,
            RolloutPhase::Canary,
            RolloutPhase::Wave,
            RolloutPhase::Halted,
            RolloutPhase::Complete,
        ];
        let names: Vec<&str> = phases.iter().map(|p| p.as_str()).collect();
        assert_eq!(names, ["idle", "canary", "wave", "halted", "complete"]);
        for (i, phase) in phases.iter().enumerate() {
            assert!((phase.gauge_value() - i as f64).abs() < f64::EPSILON);
        }
    }
}

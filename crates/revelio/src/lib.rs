//! **Revelio**: trustworthy confidential virtual machines for the masses.
//!
//! This crate is the reproduction's core — the paper's actual contribution
//! (Galanou et al., Middleware 2023), built on the simulated substrates in
//! the sibling crates. It lets a *service provider* deploy web-facing
//! services inside (simulated) SEV-SNP VMs such that even the provider
//! cannot tamper with them, and lets *end-users* verify exactly that from
//! their browser:
//!
//! * [`node`] — a **Revelio VM**: measured-direct-boot guest, verity
//!   rootfs, sealed data volume, no inbound management connections; serves
//!   its application over HTTPS plus its attestation evidence at the
//!   well-known URL.
//! * [`sp`] — the **SP node** (provider premises): attests the fleet,
//!   picks a leader, obtains one ACME certificate for the leader's CSR
//!   (rate limits forbid per-node certificates, §3.4.6), and coordinates
//!   encrypted distribution of the TLS private key to mutually-attested
//!   peers (§5.3.1, Fig. 4).
//! * [`extension`] — the **web extension**: intercepts requests to
//!   registered domains, fetches and validates the evidence (VCEK chain
//!   via the KDS, measurement against golden values, TLS-key binding via
//!   `REPORT_DATA`), and keeps monitoring the connection afterwards
//!   (§5.3.2).
//! * [`reconcile`] — the **control plane**: a declared [`reconcile::FleetSpec`]
//!   and a reconciler loop driving the fleet toward it — canary-first
//!   rolling upgrades with measurement-drift halts, automatic
//!   re-admission of healed quarantined nodes, and certificate renewal
//!   ahead of expiry.
//! * [`registry`] — golden-value distribution: a static set for
//!   self-verifying users and a quorum-voted registry for delegation to a
//!   community (§3.4.7), with revocation for rollback protection (§6.1.4).
//! * [`evidence`] / [`kds_http`] — the evidence bundle served by VMs and
//!   the AMD KDS mounted on the simulated network.
//! * [`world`] — a one-call simulation harness wiring AMD, KDS, CA, DNS
//!   and network together for tests, examples and benches.
//!
//! # End-to-end example
//!
//! ```
//! use revelio::world::SimWorld;
//!
//! // A world with AMD's root of trust, a KDS, an ACME CA, DNS and a
//! // network; then a provider deploys a 2-node fleet for a domain.
//! let mut world = SimWorld::new(7);
//! let fleet = world.deploy_fleet("pad.example.org", 2, revelio::node::demo_app())?;
//!
//! // An end-user with the Revelio extension browses the site: the
//! // extension attests the VM before the page is trusted.
//! let extension = world.extension();
//! extension.register_site("pad.example.org", vec![fleet.golden_measurement]);
//! let outcome = extension.browse("pad.example.org", "/")?;
//! assert!(outcome.response.is_success());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod error;
pub mod evidence;
pub mod extension;
pub mod kds_http;
pub mod node;
pub mod reconcile;
pub mod registry;
pub mod sp;
pub mod world;

pub use error::RevelioError;

//! The service provider's SP node (paper §5.3.1, Fig. 4).
//!
//! An isolated machine on the provider's premises holding the DNS API
//! credentials and the ACME account. It attests the whole fleet, rejects
//! impostors (allowlisted chip↔address pairs), picks a leader among the
//! validated nodes, obtains **one** certificate for the leader's CSR
//! (respecting the CA's rate limits, §3.4.6) and triggers the encrypted
//! key distribution. Every phase's simulated latency is recorded — the
//! raw material of the paper's Table 2.

use revelio_crypto::ed25519::VerifyingKey;
use revelio_http::message::{Request, Response};
use revelio_http::server::plain_request;
use revelio_http::HttpError;
use revelio_net::net::SimNet;
use revelio_net::retry::RetryPolicy;
use revelio_pki::acme::AcmeCa;
use revelio_pki::cert::CertificateChain;
use revelio_telemetry::{retry_with_telemetry, Telemetry};
use sev_snp::ids::ChipId;
use sev_snp::verify::ReportVerifier;

use crate::kds_http::KdsHttpClient;
use crate::node::CsrBundle;
use crate::registry::GoldenSet;
use crate::RevelioError;

/// SP-node policy and modelled costs.
#[derive(Debug, Clone)]
pub struct SpConfig {
    /// Pinned AMD root key.
    pub trusted_ark: VerifyingKey,
    /// The service domain every node's CSR must name — the SP's ACME
    /// account must never be tricked into ordering a certificate for a
    /// domain smuggled into a node's configuration.
    pub expected_domain: String,
    /// Acceptable launch measurements (from the registry or own build).
    pub golden: GoldenSet,
    /// Approved `(chip id, bootstrap address)` pairs — an impostor with a
    /// *valid* report on the wrong machine or address is rejected
    /// (§5.3.1).
    pub allowlist: Vec<(ChipId, String)>,
    /// Modelled cryptographic-validation cost per node, ms (Table 2:
    /// 13 ms).
    pub validation_ms: f64,
    /// Modelled CA-side processing for certificate issuance, ms (the bulk
    /// of Table 2's 2996 ms generation row).
    pub ca_processing_ms: f64,
}

/// Per-phase simulated latencies (Table 2's rows).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpTimings {
    /// Average per-node evidence retrieval, ms.
    pub evidence_retrieval_ms: f64,
    /// Average per-node evidence validation, ms.
    pub evidence_validation_ms: f64,
    /// Certificate generation (ACME order), ms.
    pub certificate_generation_ms: f64,
    /// Average per-node certificate distribution, ms.
    pub certificate_distribution_ms: f64,
}

/// Outcome of a fleet provisioning run.
#[derive(Debug, Clone)]
pub struct ProvisionReport {
    /// Bootstrap address of the chosen leader.
    pub leader_bootstrap: String,
    /// The shared certificate chain.
    pub chain: CertificateChain,
    /// Phase latencies.
    pub timings: SpTimings,
}

/// Decorrelates the SP retry jitter stream from other components.
const SP_JITTER_SEED: u64 = 0x7370; // "sp"

/// The SP node.
pub struct ServiceProviderNode {
    net: SimNet,
    kds: KdsHttpClient,
    acme: AcmeCa,
    config: SpConfig,
    telemetry: Option<Telemetry>,
    retry: RetryPolicy,
}

impl std::fmt::Debug for ServiceProviderNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceProviderNode")
            .field("allowlist", &self.config.allowlist.len())
            .finish_non_exhaustive()
    }
}

impl ServiceProviderNode {
    /// Creates an SP node.
    #[must_use]
    pub fn new(net: SimNet, kds: KdsHttpClient, acme: AcmeCa, config: SpConfig) -> Self {
        ServiceProviderNode {
            net,
            kds,
            acme,
            config,
            telemetry: None,
            retry: Self::default_retry_policy(),
        }
    }

    /// The retry policy new SP nodes start with: the crate-wide default
    /// budget on the SP-specific jitter stream.
    #[must_use]
    pub fn default_retry_policy() -> RetryPolicy {
        RetryPolicy::default().with_jitter_seed(SP_JITTER_SEED)
    }

    /// Records provisioning spans into `telemetry` instead of a private
    /// registry, so they join the world's span tree.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Replaces the retry policy applied to transient transport failures
    /// on the evidence-retrieval and distribution paths.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// A bootstrap-port request with transient faults retried: a dropped
    /// packet on the provider-internal network must not abort a whole
    /// fleet provisioning run.
    fn retried_request(&self, address: &str, request: &Request) -> Result<Response, RevelioError> {
        let attempt = |_attempt: u32| plain_request(&self.net, address, request);
        let response = match &self.telemetry {
            Some(telemetry) => retry_with_telemetry(
                &self.retry,
                telemetry,
                "sp",
                HttpError::is_transient,
                attempt,
            ),
            None => {
                self.retry
                    .run(self.net.clock(), HttpError::is_transient, attempt)
                    .0
            }
        }?;
        Ok(response)
    }

    fn fetch_bundle(&self, bootstrap: &str) -> Result<CsrBundle, RevelioError> {
        let response = self.retried_request(bootstrap, &Request::get("/revelio/csr-bundle"))?;
        if !response.is_success() {
            return Err(RevelioError::NodeRejected {
                node: bootstrap.to_owned(),
                reason: format!("csr-bundle fetch returned {}", response.status),
            });
        }
        CsrBundle::from_bytes(&response.body)
    }

    /// Validates one node's bundle (§5.3.1): VCEK chain, report signature,
    /// golden measurement, CSR binding, proof of possession, and the
    /// chip↔address allowlist.
    fn validate_bundle(&self, bootstrap: &str, bundle: &CsrBundle) -> Result<(), RevelioError> {
        let reject = |reason: &str| RevelioError::NodeRejected {
            node: bootstrap.to_owned(),
            reason: reason.to_owned(),
        };

        let chain = self.kds.vcek_chain(
            &bundle.report.report.chip_id,
            &bundle.report.report.reported_tcb,
        )?;
        ReportVerifier::new(self.config.trusted_ark)
            .verify(&bundle.report, &chain)
            .map_err(|e| reject(&format!("report verification: {e}")))?;

        if !self
            .config
            .golden
            .is_trusted(&bundle.report.report.measurement)
        {
            return Err(reject(&format!(
                "measurement {} not golden",
                bundle.report.report.measurement
            )));
        }

        if bundle.csr.domain != self.config.expected_domain {
            return Err(reject(&format!(
                "csr names domain {:?}, expected {:?}",
                bundle.csr.domain, self.config.expected_domain
            )));
        }
        let csr_digest = bundle.csr.digest();
        if !revelio_crypto::ct::eq(
            &bundle.report.report.report_data.as_bytes()[..32],
            &csr_digest,
        ) {
            return Err(reject("report does not bind the csr"));
        }
        bundle
            .csr
            .verify()
            .map_err(|_| reject("csr proof of possession"))?;

        let allowed = self
            .config
            .allowlist
            .iter()
            .any(|(chip, addr)| *chip == bundle.report.report.chip_id && addr == bootstrap);
        if !allowed {
            return Err(reject("chip or address not in allowlist"));
        }
        // Modelled crypto cost of the above (Table 2's validation row).
        self.net.clock().advance_ms(self.config.validation_ms);
        Ok(())
    }

    /// Runs the full provisioning protocol over the fleet's bootstrap
    /// addresses: retrieve → validate → issue (leader = first valid) →
    /// distribute. The leader receives its certificate first so peers'
    /// key requests find it ready.
    ///
    /// # Errors
    ///
    /// Fails on the first rejected node (a production SP would quarantine
    /// and continue; the strictness keeps the security tests sharp), on CA
    /// refusal (rate limits!), or on any transport error.
    pub fn provision(&self, bootstrap_addrs: &[String]) -> Result<ProvisionReport, RevelioError> {
        if bootstrap_addrs.is_empty() {
            return Err(RevelioError::NodeRejected {
                node: String::new(),
                reason: "empty fleet".into(),
            });
        }
        // Phase timings are *derived from recorded spans*: every phase
        // opens a span per node and `SpTimings` sums the measured span
        // durations. Without an attached registry a private one keeps the
        // derivation identical.
        let telemetry = self
            .telemetry
            .clone()
            .unwrap_or_else(|| Telemetry::new(self.net.clock().clone()));
        let fleet_size = bootstrap_addrs.len().to_string();
        let provision_span = telemetry.span_with(
            "sp.provision",
            &[
                ("domain", &self.config.expected_domain),
                ("fleet", &fleet_size),
            ],
        );
        let n = bootstrap_addrs.len() as f64;

        // Phase 1: retrieval, per node.
        let mut bundles = Vec::with_capacity(bootstrap_addrs.len());
        let mut retrieval_total = 0.0;
        for addr in bootstrap_addrs {
            let span = telemetry.span_with("sp.evidence_retrieval", &[("node", addr)]);
            bundles.push(self.fetch_bundle(addr)?);
            retrieval_total += span.finish_ms();
        }

        // Endorsement prefetch: the SP keeps a warm VCEK mirror for its
        // own fleet (the chips are known in advance), so KDS round trips
        // are not part of the per-node validation cost the paper reports.
        for bundle in &bundles {
            let _ = self.kds.vcek_chain(
                &bundle.report.report.chip_id,
                &bundle.report.report.reported_tcb,
            )?;
        }

        // Phase 2: validation, per node (pure crypto + policy checks).
        let mut validation_total = 0.0;
        for (addr, bundle) in bootstrap_addrs.iter().zip(&bundles) {
            let span = telemetry.span_with("sp.evidence_validation", &[("node", addr)]);
            self.validate_bundle(addr, bundle)?;
            validation_total += span.finish_ms();
        }

        // Phase 3: one certificate for the leader's CSR.
        let leader_bootstrap = bootstrap_addrs[0].clone();
        let leader_csr = &bundles[0].csr;
        let span = telemetry.span("sp.certificate_generation");
        self.net.clock().advance_ms(self.config.ca_processing_ms);
        let chain = self.acme.order_certificate(leader_csr)?;
        let certificate_generation_ms = span.finish_ms();

        // Phase 4: distribute, leader first.
        let mut distribution_total = 0.0;
        let approved_chips: Vec<ChipId> = self
            .config
            .allowlist
            .iter()
            .map(|(chip, _)| *chip)
            .collect();
        let payload = crate::node::encode_install_cert(&chain, &leader_bootstrap, &approved_chips);
        for addr in bootstrap_addrs {
            let span = telemetry.span_with("sp.certificate_distribution", &[("node", addr)]);
            let response = self.retried_request(
                addr,
                &Request::post("/revelio/install-cert", payload.clone()),
            )?;
            if !response.is_success() {
                return Err(RevelioError::NodeRejected {
                    node: addr.clone(),
                    reason: format!(
                        "install-cert returned {} ({})",
                        response.status,
                        response.header("X-Revelio-Error").unwrap_or("no detail")
                    ),
                });
            }
            distribution_total += span.finish_ms();
        }

        let total_ms = provision_span.finish_ms();
        telemetry.observe("revelio_sp_provision_ms", total_ms);
        telemetry.counter_add("revelio_sp_provisions_total", 1);
        telemetry.gauge_set("revelio_sp_fleet_size", n);

        Ok(ProvisionReport {
            leader_bootstrap,
            chain,
            timings: SpTimings {
                evidence_retrieval_ms: retrieval_total / n,
                evidence_validation_ms: validation_total / n,
                certificate_generation_ms,
                certificate_distribution_ms: distribution_total / n,
            },
        })
    }
}

//! The service provider's SP node (paper §5.3.1, Fig. 4).
//!
//! An isolated machine on the provider's premises holding the DNS API
//! credentials and the ACME account. It attests the whole fleet, rejects
//! impostors (allowlisted chip↔address pairs), picks a leader among the
//! validated nodes, obtains **one** certificate for the leader's CSR
//! (respecting the CA's rate limits, §3.4.6) and triggers the encrypted
//! key distribution. Every phase's simulated latency is recorded — the
//! raw material of the paper's Table 2.

use std::collections::HashMap;

use revelio_crypto::ed25519::VerifyingKey;
use revelio_http::message::{Request, Response};
use revelio_http::server::plain_request_traced;
use revelio_http::HttpError;
use revelio_net::net::SimNet;
use revelio_net::retry::RetryPolicy;
use revelio_pki::acme::AcmeCa;
use revelio_pki::cert::CertificateChain;
use revelio_telemetry::{retry_with_telemetry, FlightDirectory, FlightDump, Telemetry};
use sev_snp::ids::ChipId;
use sev_snp::verify::ReportVerifier;

use revelio_pki::cert::CertificateSigningRequest;
use sev_snp::measurement::Measurement;

use crate::kds_http::KdsHttpClient;
use crate::node::CsrBundle;
use crate::registry::GoldenSet;
use crate::RevelioError;

/// SP-node policy and modelled costs.
#[derive(Debug, Clone)]
pub struct SpConfig {
    /// Pinned AMD root key.
    pub trusted_ark: VerifyingKey,
    /// The service domain every node's CSR must name — the SP's ACME
    /// account must never be tricked into ordering a certificate for a
    /// domain smuggled into a node's configuration.
    pub expected_domain: String,
    /// Acceptable launch measurements (from the registry or own build).
    pub golden: GoldenSet,
    /// Approved `(chip id, bootstrap address)` pairs — an impostor with a
    /// *valid* report on the wrong machine or address is rejected
    /// (§5.3.1).
    pub allowlist: Vec<(ChipId, String)>,
    /// Modelled cryptographic-validation cost per node, ms (Table 2:
    /// 13 ms).
    pub validation_ms: f64,
    /// Modelled CA-side processing for certificate issuance, ms (the bulk
    /// of Table 2's 2996 ms generation row).
    pub ca_processing_ms: f64,
}

/// Per-phase simulated latencies (Table 2's rows).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpTimings {
    /// Average per-node evidence retrieval, ms.
    pub evidence_retrieval_ms: f64,
    /// Average per-node evidence validation, ms.
    pub evidence_validation_ms: f64,
    /// Certificate generation (ACME order), ms.
    pub certificate_generation_ms: f64,
    /// Average per-node certificate distribution, ms.
    pub certificate_distribution_ms: f64,
}

/// The provisioning phase in which a node was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvisionPhase {
    /// Fetching the node's CSR bundle from its bootstrap port.
    Retrieval,
    /// Verifying the bundle (VCEK chain, report, policy checks).
    Validation,
    /// Installing the shared certificate.
    Distribution,
}

impl ProvisionPhase {
    /// Stable lowercase name, for logs and metrics labels.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ProvisionPhase::Retrieval => "retrieval",
            ProvisionPhase::Validation => "validation",
            ProvisionPhase::Distribution => "distribution",
        }
    }
}

/// A node excluded from a provisioning run: which node, at which phase,
/// and why. Quarantined nodes receive no certificate and are never
/// eligible for leadership; the run continues with the survivors.
#[derive(Debug, Clone)]
pub struct QuarantinedNode {
    /// Bootstrap address of the quarantined node.
    pub node: String,
    /// The phase that excluded it.
    pub phase: ProvisionPhase,
    /// The error that triggered the quarantine.
    pub error: RevelioError,
    /// The node's flight-recorder dump at quarantine time — its recent
    /// fault/retry/verdict timeline, for forensics. `None` when the SP
    /// runs without a flight directory (or the node has no ring).
    pub flight: Option<FlightDump>,
}

impl QuarantinedNode {
    /// Human-readable reason (the rendered error).
    #[must_use]
    pub fn reason(&self) -> String {
        self.error.to_string()
    }
}

/// Outcome of a fleet provisioning run.
#[derive(Debug, Clone)]
pub struct ProvisionReport {
    /// Bootstrap address of the chosen leader — the first node that
    /// survived retrieval and validation, in fleet order.
    pub leader_bootstrap: String,
    /// The shared certificate chain.
    pub chain: CertificateChain,
    /// Phase latencies, averaged over the nodes that completed each
    /// phase (quarantined nodes do not dilute the figures).
    pub timings: SpTimings,
    /// Nodes excluded from the run, in the order they were quarantined
    /// (fleet order within each phase) — deterministic for a fixed
    /// fault seed.
    pub quarantined: Vec<QuarantinedNode>,
}

/// An integrity-verified observation of one node — the reconciler's raw
/// input. Everything here has been checked *except* golden-set
/// membership: the chain verifies, the report signature holds, the CSR
/// is bound and possessed, the chip↔address pair is allowlisted. The
/// **measurement is reported, not judged** — the observer (the
/// reconciler diffing a fleet against its spec) decides whether it is
/// the target image, the old image, or drift.
#[derive(Debug, Clone)]
pub struct NodeObservation {
    /// Bootstrap address the observation was fetched from.
    pub bootstrap: String,
    /// The attested launch measurement the node is actually running.
    pub measurement: Measurement,
    /// The attested TCB the node's platform reports — diffed against the
    /// spec's floor by the reconciler.
    pub tcb: sev_snp::ids::TcbVersion,
    /// The node's chip.
    pub chip_id: ChipId,
    /// The node's CSR (renewal input: the leader's CSR is re-ordered).
    pub csr: CertificateSigningRequest,
}

/// Decorrelates the SP retry jitter stream from other components.
const SP_JITTER_SEED: u64 = 0x7370; // "sp"

/// The SP node.
pub struct ServiceProviderNode {
    net: SimNet,
    kds: KdsHttpClient,
    acme: AcmeCa,
    config: SpConfig,
    /// The allowlist indexed by bootstrap address, built once at
    /// construction: validation consults it per node, and a linear scan
    /// of `config.allowlist` there would make fleet provisioning
    /// quadratic in the fleet size.
    allowlist_index: HashMap<String, Vec<ChipId>>,
    telemetry: Option<Telemetry>,
    retry: RetryPolicy,
    flight: Option<FlightDirectory>,
}

impl std::fmt::Debug for ServiceProviderNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceProviderNode")
            .field("allowlist", &self.config.allowlist.len())
            .finish_non_exhaustive()
    }
}

impl ServiceProviderNode {
    /// Creates an SP node.
    #[must_use]
    pub fn new(net: SimNet, kds: KdsHttpClient, acme: AcmeCa, config: SpConfig) -> Self {
        let mut allowlist_index: HashMap<String, Vec<ChipId>> = HashMap::new();
        for (chip, address) in &config.allowlist {
            allowlist_index
                .entry(address.clone())
                .or_default()
                .push(*chip);
        }
        ServiceProviderNode {
            net,
            kds,
            acme,
            config,
            allowlist_index,
            telemetry: None,
            retry: Self::default_retry_policy(),
            flight: None,
        }
    }

    /// The retry policy new SP nodes start with: the crate-wide default
    /// budget on the SP-specific jitter stream.
    #[must_use]
    pub fn default_retry_policy() -> RetryPolicy {
        RetryPolicy::default().with_jitter_seed(SP_JITTER_SEED)
    }

    /// Records provisioning spans into `telemetry` instead of a private
    /// registry, so they join the world's span tree.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Replaces the retry policy applied to transient transport failures
    /// on the evidence-retrieval and distribution paths.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches the world's flight-recorder directory: every quarantine
    /// entry then carries the victim node's recent event timeline
    /// ([`QuarantinedNode::flight`]), and the SP's own retries are
    /// recorded into the dialed node's ring.
    #[must_use]
    pub fn with_flight_directory(mut self, flight: FlightDirectory) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Builds a quarantine record, snapshotting the node's flight ring
    /// (with the quarantine verdict itself as the final event).
    fn quarantine(
        &self,
        node: String,
        phase: ProvisionPhase,
        error: RevelioError,
    ) -> QuarantinedNode {
        let flight = self.flight.as_ref().and_then(|directory| {
            let recorder = directory.get(&node)?;
            recorder.record(
                "verdict",
                &format!("quarantined at {}: {error}", phase.as_str()),
            );
            Some(recorder.dump())
        });
        QuarantinedNode {
            node,
            phase,
            error,
            flight,
        }
    }

    /// A bootstrap-port request with transient faults retried: a dropped
    /// packet on the provider-internal network must not abort a whole
    /// fleet provisioning run.
    fn retried_request(&self, address: &str, request: &Request) -> Result<Response, RevelioError> {
        let attempt = |attempt: u32| {
            if attempt > 0 {
                if let Some(flight) = &self.flight {
                    flight.record(
                        address,
                        "retry",
                        &format!("sp {} attempt {attempt}", request.path),
                    );
                }
            }
            plain_request_traced(&self.net, address, request, self.telemetry.as_ref())
        };
        let response = match &self.telemetry {
            Some(telemetry) => retry_with_telemetry(
                &self.retry,
                telemetry,
                "sp",
                HttpError::is_transient,
                attempt,
            ),
            None => {
                self.retry
                    .run(self.net.clock(), HttpError::is_transient, attempt)
                    .0
            }
        }?;
        Ok(response)
    }

    fn fetch_bundle(&self, bootstrap: &str) -> Result<CsrBundle, RevelioError> {
        let response = self.retried_request(bootstrap, &Request::get("/revelio/csr-bundle"))?;
        if !response.is_success() {
            return Err(RevelioError::NodeRejected {
                node: bootstrap.to_owned(),
                reason: format!("csr-bundle fetch returned {}", response.status),
            });
        }
        CsrBundle::from_bytes(&response.body)
    }

    /// Validates one node's bundle (§5.3.1): VCEK chain, report signature,
    /// golden measurement, CSR binding, proof of possession, and the
    /// chip↔address allowlist.
    fn validate_bundle(&self, bootstrap: &str, bundle: &CsrBundle) -> Result<(), RevelioError> {
        self.validate_bundle_inner(bootstrap, bundle, Some(&self.config.golden))
    }

    /// The bundle checks, with golden-set membership optional: the
    /// provisioning path judges the measurement (`Some`), the reconciler's
    /// observation path reports it unjudged (`None`) so drift can be
    /// *named*, not just rejected.
    fn validate_bundle_inner(
        &self,
        bootstrap: &str,
        bundle: &CsrBundle,
        golden: Option<&GoldenSet>,
    ) -> Result<(), RevelioError> {
        let reject = |reason: &str| RevelioError::NodeRejected {
            node: bootstrap.to_owned(),
            reason: reason.to_owned(),
        };

        let chain = self.kds.vcek_chain(
            &bundle.report.report.chip_id,
            &bundle.report.report.reported_tcb,
        )?;
        ReportVerifier::new(self.config.trusted_ark)
            .verify(&bundle.report, &chain)
            .map_err(|e| reject(&format!("report verification: {e}")))?;

        if let Some(golden) = golden {
            if !golden.is_trusted(&bundle.report.report.measurement) {
                return Err(reject(&format!(
                    "measurement {} not golden",
                    bundle.report.report.measurement
                )));
            }
        }

        if bundle.csr.domain != self.config.expected_domain {
            return Err(reject(&format!(
                "csr names domain {:?}, expected {:?}",
                bundle.csr.domain, self.config.expected_domain
            )));
        }
        let csr_digest = bundle.csr.digest();
        if !revelio_crypto::ct::eq(
            &bundle.report.report.report_data.as_bytes()[..32],
            &csr_digest,
        ) {
            return Err(reject("report does not bind the csr"));
        }
        bundle
            .csr
            .verify()
            .map_err(|_| reject("csr proof of possession"))?;

        let allowed = self
            .allowlist_index
            .get(bootstrap)
            .is_some_and(|chips| chips.contains(&bundle.report.report.chip_id));
        if !allowed {
            return Err(reject("chip or address not in allowlist"));
        }
        // Modelled crypto cost of the above (Table 2's validation row).
        self.net.clock().advance_ms(self.config.validation_ms);
        Ok(())
    }

    /// Runs the full provisioning protocol over the fleet's bootstrap
    /// addresses: retrieve → validate → issue (leader = first survivor)
    /// → distribute. The leader receives its certificate first so peers'
    /// key requests find it ready.
    ///
    /// The run is **partition tolerant**: a node that is unreachable or
    /// rejected at any phase is quarantined (recorded in
    /// [`ProvisionReport::quarantined`] with the phase and reason) and
    /// the protocol continues with the survivors. Leadership goes to the
    /// first node, in fleet order, that survives retrieval and
    /// validation — not blindly to `bootstrap_addrs[0]`.
    ///
    /// # Errors
    ///
    /// Fails only when the fleet is empty ([`RevelioError::EmptyFleet`]),
    /// when *no* node survives a phase (the first quarantine's error is
    /// surfaced — so single-node security tests still see the precise
    /// rejection), or when the CA refuses issuance (rate limits!).
    pub fn provision(&self, bootstrap_addrs: &[String]) -> Result<ProvisionReport, RevelioError> {
        // Phase timings are *derived from recorded spans*: every phase
        // opens a span per node and `SpTimings` sums the measured span
        // durations. Without an attached registry a private one keeps the
        // derivation identical.
        let telemetry = self
            .telemetry
            .clone()
            .unwrap_or_else(|| Telemetry::new(self.net.clock().clone()));
        let fleet_size = bootstrap_addrs.len().to_string();
        let provision_span = telemetry.span_with(
            "sp.provision",
            &[
                ("domain", &self.config.expected_domain),
                ("fleet", &fleet_size),
            ],
        );
        let result = self.provision_fleet(&telemetry, bootstrap_addrs);
        // The root span is finished on *every* path — early returns must
        // not leak an open span into the breakdown exporter.
        let total_ms = provision_span.finish_ms();
        match &result {
            Ok(report) => {
                telemetry.observe("revelio_sp_provision_ms", total_ms);
                telemetry.counter_add("revelio_sp_provisions_total", 1);
                telemetry.gauge_set("revelio_sp_fleet_size", bootstrap_addrs.len() as f64);
                telemetry.gauge_set(
                    "revelio_sp_quarantined_nodes",
                    report.quarantined.len() as f64,
                );
            }
            Err(_) => {
                telemetry.counter_add("revelio_sp_provision_failures_total", 1);
            }
        }
        result
    }

    /// The provisioning protocol proper; the caller owns the root span
    /// and the success/failure metrics.
    fn provision_fleet(
        &self,
        telemetry: &Telemetry,
        bootstrap_addrs: &[String],
    ) -> Result<ProvisionReport, RevelioError> {
        if bootstrap_addrs.is_empty() {
            return Err(RevelioError::EmptyFleet);
        }
        let mut quarantined: Vec<QuarantinedNode> = Vec::new();

        // Phase 1: retrieval, per node. Unreachable nodes (a partitioned
        // subnet, an exhausted retry budget) are quarantined here.
        let mut survivors: Vec<(String, CsrBundle)> = Vec::new();
        let mut retrieval_total = 0.0;
        for addr in bootstrap_addrs {
            let span = telemetry.span_with("sp.evidence_retrieval", &[("node", addr)]);
            match self.fetch_bundle(addr) {
                Ok(bundle) => {
                    retrieval_total += span.finish_ms();
                    survivors.push((addr.clone(), bundle));
                }
                Err(error) => {
                    span.finish_ms();
                    quarantined.push(self.quarantine(
                        addr.clone(),
                        ProvisionPhase::Retrieval,
                        error,
                    ));
                }
            }
        }
        let retrieved = survivors.len();

        // Endorsement prefetch: the SP keeps a warm VCEK mirror for its
        // own fleet (the chips are known in advance), so KDS round trips
        // are not part of the per-node validation cost the paper reports.
        // A node whose endorsement cannot be fetched cannot be validated.
        let mut prefetched: Vec<(String, CsrBundle)> = Vec::with_capacity(survivors.len());
        for (addr, bundle) in survivors {
            match self.kds.vcek_chain(
                &bundle.report.report.chip_id,
                &bundle.report.report.reported_tcb,
            ) {
                Ok(_) => prefetched.push((addr, bundle)),
                Err(error) => {
                    quarantined.push(self.quarantine(addr, ProvisionPhase::Validation, error));
                }
            }
        }

        // Phase 2: validation, per node (pure crypto + policy checks).
        let mut validated: Vec<(String, CsrBundle)> = Vec::with_capacity(prefetched.len());
        let mut validation_total = 0.0;
        for (addr, bundle) in prefetched {
            let span = telemetry.span_with("sp.evidence_validation", &[("node", &addr)]);
            match self.validate_bundle(&addr, &bundle) {
                Ok(()) => {
                    validation_total += span.finish_ms();
                    validated.push((addr, bundle));
                }
                Err(error) => {
                    span.finish_ms();
                    quarantined.push(self.quarantine(addr, ProvisionPhase::Validation, error));
                }
            }
        }
        if validated.is_empty() {
            // No survivors: surface the earliest quarantine's error, so a
            // single rejected node reports its precise rejection.
            return Err(quarantined[0].error.clone());
        }

        // Phase 3: one certificate for the leader's CSR. The leader is
        // the first *surviving* node in fleet order.
        let leader_bootstrap = validated[0].0.clone();
        let leader_csr = &validated[0].1.csr;
        let span = telemetry.span("sp.certificate_generation");
        self.net.clock().advance_ms(self.config.ca_processing_ms);
        let order = self.acme.order_certificate(leader_csr);
        let certificate_generation_ms = span.finish_ms();
        let chain = order?;

        // Phase 4: distribute to the survivors, leader first.
        let mut distribution_total = 0.0;
        let mut distributed = 0usize;
        let approved_chips: Vec<ChipId> = self
            .config
            .allowlist
            .iter()
            .map(|(chip, _)| *chip)
            .collect();
        let payload = crate::node::encode_install_cert(&chain, &leader_bootstrap, &approved_chips);
        for (addr, _) in &validated {
            let span = telemetry.span_with("sp.certificate_distribution", &[("node", addr)]);
            let outcome = self
                .retried_request(
                    addr,
                    &Request::post("/revelio/install-cert", payload.clone()),
                )
                .and_then(|response| {
                    if response.is_success() {
                        Ok(())
                    } else {
                        Err(RevelioError::NodeRejected {
                            node: addr.clone(),
                            reason: format!(
                                "install-cert returned {} ({})",
                                response.status,
                                response.header("X-Revelio-Error").unwrap_or("no detail")
                            ),
                        })
                    }
                });
            match outcome {
                Ok(()) => {
                    distribution_total += span.finish_ms();
                    distributed += 1;
                }
                Err(error) => {
                    span.finish_ms();
                    quarantined.push(self.quarantine(
                        addr.clone(),
                        ProvisionPhase::Distribution,
                        error,
                    ));
                }
            }
        }
        if distributed == 0 {
            return Err(quarantined[0].error.clone());
        }

        Ok(ProvisionReport {
            leader_bootstrap,
            chain,
            quarantined,
            timings: SpTimings {
                evidence_retrieval_ms: retrieval_total / retrieved as f64,
                evidence_validation_ms: validation_total / validated.len() as f64,
                certificate_generation_ms,
                certificate_distribution_ms: distribution_total / distributed as f64,
            },
        })
    }

    /// Replaces the golden set the SP judges measurements against — the
    /// reconciler rotates it when a rolling upgrade changes the fleet's
    /// target image (the old image's measurement stops being golden the
    /// moment the rollout completes).
    pub fn set_golden(&mut self, golden: GoldenSet) {
        self.config.golden = golden;
    }

    /// Fetches and integrity-verifies one node's bundle **without**
    /// judging the measurement: chain, report signature, CSR binding,
    /// proof of possession, and the chip↔address allowlist all hold, and
    /// the attested measurement is *reported* for the caller to diff
    /// against its spec. This is how the reconciler sees drift as a named
    /// measurement instead of a bare rejection, and how a healed
    /// quarantined node proves it is re-admissible.
    ///
    /// # Errors
    ///
    /// Transport failures surface transient; any integrity failure is
    /// [`RevelioError::NodeRejected`].
    pub fn observe_node(&self, bootstrap: &str) -> Result<NodeObservation, RevelioError> {
        let telemetry = self.telemetry.clone();
        let span = telemetry.map(|t| t.span_with("sp.observe_node", &[("node", bootstrap)]));
        let result = (|| {
            let bundle = self.fetch_bundle(bootstrap)?;
            self.validate_bundle_inner(bootstrap, &bundle, None)?;
            Ok(NodeObservation {
                bootstrap: bootstrap.to_owned(),
                measurement: bundle.report.report.measurement,
                tcb: bundle.report.report.reported_tcb,
                chip_id: bundle.report.report.chip_id,
                csr: bundle.csr,
            })
        })();
        if let Some(span) = span {
            if result.is_err() {
                span.attr("outcome", "failure");
            }
            span.finish_ms();
        }
        result
    }

    /// Installs `chain` on a single node over its bootstrap port — the
    /// re-admission and renewal-distribution primitive (provisioning's
    /// Phase 4, for one node). The node re-validates the chain against
    /// its pinned roots and fetches the key from `leader_bootstrap`
    /// unless it already holds the matching key.
    ///
    /// # Errors
    ///
    /// Transport failures surface transient; a node-side refusal is
    /// [`RevelioError::NodeRejected`] carrying the node's own reason.
    pub fn install_certificate(
        &self,
        bootstrap: &str,
        chain: &CertificateChain,
        leader_bootstrap: &str,
    ) -> Result<(), RevelioError> {
        let approved_chips: Vec<ChipId> = self
            .config
            .allowlist
            .iter()
            .map(|(chip, _)| *chip)
            .collect();
        let payload = crate::node::encode_install_cert(chain, leader_bootstrap, &approved_chips);
        let response =
            self.retried_request(bootstrap, &Request::post("/revelio/install-cert", payload))?;
        if !response.is_success() {
            return Err(RevelioError::NodeRejected {
                node: bootstrap.to_owned(),
                reason: format!(
                    "install-cert returned {} ({})",
                    response.status,
                    response.header("X-Revelio-Error").unwrap_or("no detail")
                ),
            });
        }
        Ok(())
    }

    /// Orders a renewal chain for the fleet ahead of `not_after_ms`: the
    /// leader is re-observed (fresh integrity proof **and** a golden
    /// measurement — an out-of-spec leader must not anchor a renewed
    /// certificate), its CSR must still carry the public key the current
    /// chain binds (the shared fleet key must survive a renewal
    /// unchanged), and the ACME order runs under the CA's usual
    /// rate-limit and retry machinery.
    ///
    /// # Errors
    ///
    /// [`RevelioError::KeyCertificateMismatch`] when the leader's key
    /// rotated (a renewal cannot re-key the fleet — that is a full
    /// re-provision), plus every observation and ACME failure mode.
    pub fn renew_certificate(
        &self,
        leader_bootstrap: &str,
        current: &CertificateChain,
    ) -> Result<CertificateChain, RevelioError> {
        let observed = self.observe_node(leader_bootstrap)?;
        if !self.config.golden.is_trusted(&observed.measurement) {
            return Err(RevelioError::NodeRejected {
                node: leader_bootstrap.to_owned(),
                reason: format!(
                    "renewal leader runs non-golden measurement {}",
                    observed.measurement
                ),
            });
        }
        if observed.csr.public_key != current.leaf().public_key {
            return Err(RevelioError::KeyCertificateMismatch);
        }
        self.net.clock().advance_ms(self.config.ca_processing_ms);
        let chain = self.acme.renew_certificate(&observed.csr)?;
        if let Some(telemetry) = &self.telemetry {
            telemetry.counter_add("revelio_sp_certificate_renewals_total", 1);
        }
        Ok(chain)
    }
}

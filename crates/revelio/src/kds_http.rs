//! The AMD Key Distribution Service mounted on the simulated network, and
//! the caching client verifiers use.
//!
//! Table 3's dominant cost is the KDS round trip (427.3 ms of the 778.9 ms
//! attestation path); "since the VCEK is the same until the SEV-SNP
//! firmware is updated, it can be cached" (§6.4). The client's cache is
//! therefore explicit and shareable, and the bench harness toggles it.

use std::collections::HashMap;
use std::sync::Arc;

use revelio_crypto::wire::{ByteReader, ByteWriter};
use revelio_http::message::{Request, Response};
use revelio_http::router::Router;
use revelio_http::server::{plain_request_traced, serve_http};
use revelio_http::HttpError;
use revelio_net::net::SimNet;
use revelio_net::retry::RetryPolicy;
use revelio_net::snapshot::Snapshot;
use revelio_telemetry::{retry_with_telemetry, Telemetry};
use sev_snp::ids::{ChipId, TcbVersion};
use sev_snp::kds::{AmdCert, KeyDistributionService, VcekCertChain};

use crate::RevelioError;

/// Conventional address the simulated KDS is mounted at.
pub const KDS_ADDRESS: &str = "kds.amd.test:443";

fn encode_query(chip_id: &ChipId, tcb: &TcbVersion) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(chip_id.as_bytes());
    w.put_u64(tcb.to_u64());
    w.into_bytes()
}

fn decode_query(bytes: &[u8]) -> Result<(ChipId, TcbVersion), RevelioError> {
    let mut r = ByteReader::new(bytes);
    let chip = ChipId::from_bytes(r.get_array::<64>()?);
    let tcb = TcbVersion::from_u64(r.get_u64()?);
    r.finish()?;
    Ok((chip, tcb))
}

/// Mounts `kds` at `address` on `net` (plain HTTP; the real KDS is public
/// data over HTTPS — confidentiality is irrelevant, the chain is
/// self-authenticating).
///
/// # Errors
///
/// Returns [`RevelioError::Http`] when the address is taken.
pub fn serve_kds(
    net: &SimNet,
    address: &str,
    kds: KeyDistributionService,
) -> Result<(), RevelioError> {
    serve_kds_with_telemetry(net, address, kds, None)
}

/// [`serve_kds`] with trace extraction: incoming `traceparent` contexts
/// are re-opened as `http.server` spans labelled `kds`, so the KDS hop
/// appears in assembled cross-node traces.
///
/// # Errors
///
/// Returns [`RevelioError::Http`] when the address is taken.
pub fn serve_kds_with_telemetry(
    net: &SimNet,
    address: &str,
    kds: KeyDistributionService,
    telemetry: Option<Telemetry>,
) -> Result<(), RevelioError> {
    let chain_kds = kds.clone();
    let mut router = Router::new()
        .post("/vcek", move |req: &Request| {
            match decode_query(&req.body)
                .and_then(|(chip, tcb)| kds.vcek_chain(&chip, &tcb).map_err(RevelioError::Snp))
            {
                Ok(chain) => Response::ok(chain.to_bytes()),
                Err(_) => Response::status(400),
            }
        })
        .get("/cert_chain", move |_req: &Request| {
            // The real KDS serves the chip-independent ARK → ASK prefix at
            // its own route; having the sibling here lets chaos tests make
            // `/vcek` lossy while `/cert_chain` stays healthy.
            let (ark, ask) = chain_kds.cert_chain();
            let mut w = ByteWriter::new();
            w.put_var_bytes(&ark.to_bytes());
            w.put_var_bytes(&ask.to_bytes());
            Response::ok(w.into_bytes())
        });
    if let Some(telemetry) = telemetry {
        router = router.with_tracing(telemetry, "kds");
    }
    serve_http(net, address, router)?;
    Ok(())
}

/// Cache of fetched VCEK chains, keyed by (chip id, packed TCB), stamped
/// with the generation it was filled under.
///
/// Reads vastly outnumber writes — a chain is fetched once per firmware
/// TCB and then served to every warm-cache browse — so the state sits
/// behind the same lock-free [`Snapshot`] cell the fabric's dial fast
/// path uses: hits cost one atomic load, and the rare insert republishes
/// a copied map under the cell's writer lock (concurrent inserts of
/// distinct keys compose; racing fetches of the *same* key insert the
/// same chain, so last-writer-wins is harmless).
///
/// The generation is the invalidation path the verdict cache already
/// has: [`KdsHttpClient::flush_cache`] bumps it and clears the map, and
/// a fetch that began under the old generation skips its insert — a
/// revoked chain can never be re-filed into the new generation by an
/// in-flight fetch.
#[derive(Debug, Clone, Default)]
struct VcekCacheState {
    generation: u64,
    chains: HashMap<(ChipId, u64), VcekCertChain>,
}

type VcekCache = Arc<Snapshot<VcekCacheState>>;

/// Decorrelates the KDS retry jitter stream from other components.
const KDS_JITTER_SEED: u64 = 0x006b_6473; // "kds"

/// A KDS client with an optional shared VCEK-chain cache.
#[derive(Clone)]
pub struct KdsHttpClient {
    net: SimNet,
    address: String,
    cache: Option<VcekCache>,
    telemetry: Option<Telemetry>,
    retry: RetryPolicy,
}

impl std::fmt::Debug for KdsHttpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KdsHttpClient")
            .field("address", &self.address)
            .field("caching", &self.cache.is_some())
            .finish_non_exhaustive()
    }
}

impl KdsHttpClient {
    /// The retry policy new clients start with: the crate-wide default
    /// budget on the KDS-specific jitter stream. [`crate::world::RetryTuning`]
    /// uses this as its `kds` default.
    #[must_use]
    pub fn default_retry_policy() -> RetryPolicy {
        RetryPolicy::default().with_jitter_seed(KDS_JITTER_SEED)
    }

    /// A caching client (the recommended configuration).
    #[must_use]
    pub fn new(net: SimNet, address: &str) -> Self {
        KdsHttpClient {
            net,
            address: address.to_owned(),
            cache: Some(Arc::new(Snapshot::new(Arc::new(VcekCacheState::default())))),
            telemetry: None,
            retry: Self::default_retry_policy(),
        }
    }

    /// A cache-less client (every verification pays the KDS round trip —
    /// Table 3's worst case).
    #[must_use]
    pub fn without_cache(net: SimNet, address: &str) -> Self {
        KdsHttpClient {
            net,
            address: address.to_owned(),
            cache: None,
            telemetry: None,
            retry: Self::default_retry_policy(),
        }
    }

    /// Records a `kds.fetch` span per network fetch plus cache hit/miss
    /// counters and a fetch-latency histogram.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Replaces the retry policy applied to transient transport failures
    /// on the KDS fetch path.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Fetches (or serves from cache) the VCEK chain for `(chip, tcb)`.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError`] on transport failure or a malformed
    /// response.
    pub fn vcek_chain(
        &self,
        chip_id: &ChipId,
        tcb: &TcbVersion,
    ) -> Result<VcekCertChain, RevelioError> {
        // Capture the generation *before* the fetch: the insert below is
        // valid only for the cache state the miss was observed under.
        let mut fetch_generation = 0u64;
        if let Some(cache) = &self.cache {
            let state = cache.load();
            fetch_generation = state.generation;
            if let Some(chain) = state.chains.get(&(*chip_id, tcb.to_u64())) {
                if let Some(telemetry) = &self.telemetry {
                    telemetry.counter_add("revelio_kds_client_cache_hits_total", 1);
                }
                return Ok(chain.clone());
            }
        }
        let span = self.telemetry.as_ref().map(|t| {
            t.counter_add("revelio_kds_client_cache_misses_total", 1);
            t.span_with("kds.fetch", &[("address", &self.address)])
        });
        let result = (|| {
            // The 427 ms KDS round trip crosses the public internet —
            // transient drops are retried under the same kds.fetch span.
            let fetch = |_attempt: u32| {
                plain_request_traced(
                    &self.net,
                    &self.address,
                    &Request::post("/vcek", encode_query(chip_id, tcb)),
                    self.telemetry.as_ref(),
                )
            };
            let response = match &self.telemetry {
                Some(telemetry) => retry_with_telemetry(
                    &self.retry,
                    telemetry,
                    "kds",
                    HttpError::is_transient,
                    fetch,
                ),
                None => {
                    self.retry
                        .run(self.net.clock(), HttpError::is_transient, fetch)
                        .0
                }
            }?;
            if !response.is_success() {
                return Err(RevelioError::EvidenceRejected(format!(
                    "kds returned status {}",
                    response.status
                )));
            }
            Ok(VcekCertChain::from_bytes(&response.body)?)
        })();
        if let Some(telemetry) = &self.telemetry {
            let ms = span.expect("span exists when telemetry does").finish_ms();
            telemetry.observe("revelio_kds_client_fetch_ms", ms);
        }
        let chain = result?;
        if let Some(cache) = &self.cache {
            cache.update(|state| {
                // A flush moved the generation while this fetch was in
                // flight: the chain may be exactly the stale endorsement
                // the flush evicted, so the insert is skipped — the race
                // loses cleanly, never misfiles.
                let mut next = state.clone();
                if next.generation == fetch_generation {
                    next.chains.insert((*chip_id, tcb.to_u64()), chain.clone());
                }
                (Arc::new(next), ())
            });
        }
        Ok(chain)
    }

    /// Drops every cached VCEK chain and bumps the cache generation —
    /// the invalidation path for revocation and TCB-floor events
    /// ("Insecure Despite Proven Updated": a revoked endorsement must
    /// not be served from cache for even one more verification). A fetch
    /// already in flight under the old generation skips its insert.
    ///
    /// Cache-less clients are a no-op. The flush is counted as
    /// `revelio_kds_client_cache_invalidations_total` when telemetry is
    /// attached.
    pub fn flush_cache(&self) {
        let Some(cache) = &self.cache else { return };
        cache.update(|state| {
            (
                Arc::new(VcekCacheState {
                    generation: state.generation + 1,
                    chains: HashMap::new(),
                }),
                (),
            )
        });
        if let Some(telemetry) = &self.telemetry {
            telemetry.counter_add("revelio_kds_client_cache_invalidations_total", 1);
        }
    }

    /// The current cache generation (`None` for cache-less clients).
    #[must_use]
    pub fn cache_generation(&self) -> Option<u64> {
        self.cache.as_ref().map(|c| c.read(|s| s.generation))
    }

    /// Number of VCEK chains currently cached.
    #[must_use]
    pub fn cached_chains(&self) -> usize {
        self.cache
            .as_ref()
            .map_or(0, |c| c.read(|s| s.chains.len()))
    }

    /// Fetches the chip-independent ARK → ASK certificates from the KDS
    /// `/cert_chain` route. Never cached: the payload is two small
    /// certificates, and the route exists mostly so chaos runs can fault
    /// `/vcek` and `/cert_chain` independently.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError`] on transport failure or a malformed
    /// response.
    pub fn cert_chain(&self) -> Result<(AmdCert, AmdCert), RevelioError> {
        let fetch = |_attempt: u32| {
            plain_request_traced(
                &self.net,
                &self.address,
                &Request::get("/cert_chain"),
                self.telemetry.as_ref(),
            )
        };
        let response = match &self.telemetry {
            Some(telemetry) => retry_with_telemetry(
                &self.retry,
                telemetry,
                "kds",
                HttpError::is_transient,
                fetch,
            ),
            None => {
                self.retry
                    .run(self.net.clock(), HttpError::is_transient, fetch)
                    .0
            }
        }?;
        if !response.is_success() {
            return Err(RevelioError::EvidenceRejected(format!(
                "kds returned status {}",
                response.status
            )));
        }
        let mut r = ByteReader::new(&response.body);
        let ark = AmdCert::from_bytes(r.get_var_bytes()?)?;
        let ask = AmdCert::from_bytes(r.get_var_bytes()?)?;
        r.finish()?;
        Ok((ark, ask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_net::clock::SimClock;
    use revelio_net::net::NetConfig;
    use sev_snp::platform::AmdRootOfTrust;

    fn setup() -> (SimClock, SimNet, Arc<AmdRootOfTrust>) {
        let clock = SimClock::new();
        let net = SimNet::new(clock.clone(), NetConfig::default());
        let amd = Arc::new(AmdRootOfTrust::from_seed([4; 32]));
        serve_kds(
            &net,
            KDS_ADDRESS,
            KeyDistributionService::new(Arc::clone(&amd)),
        )
        .unwrap();
        (clock, net, amd)
    }

    #[test]
    fn fetch_returns_valid_chain() {
        let (_, net, amd) = setup();
        let client = KdsHttpClient::new(net, KDS_ADDRESS);
        let chip = ChipId::from_seed(1);
        let tcb = TcbVersion::new(1, 0, 8, 115);
        let chain = client.vcek_chain(&chip, &tcb).unwrap();
        chain.validate(&amd.ark_public_key()).unwrap();
    }

    #[test]
    fn cache_eliminates_second_round_trip() {
        let (clock, net, _) = setup();
        net.peer(KDS_ADDRESS).latency_us(213_650); // paper: 427.3 ms round trip
        let client = KdsHttpClient::new(net, KDS_ADDRESS);
        let chip = ChipId::from_seed(1);
        let tcb = TcbVersion::default();

        let (_, first) = clock.time_ms(|| client.vcek_chain(&chip, &tcb).unwrap());
        let (_, second) = clock.time_ms(|| client.vcek_chain(&chip, &tcb).unwrap());
        assert!(first > 400.0, "first fetch {first} ms");
        assert_eq!(second, 0.0, "cached fetch should be free");
    }

    #[test]
    fn cacheless_client_pays_every_time() {
        let (clock, net, _) = setup();
        let client = KdsHttpClient::without_cache(net, KDS_ADDRESS);
        let chip = ChipId::from_seed(1);
        let tcb = TcbVersion::default();
        let (_, first) = clock.time_ms(|| client.vcek_chain(&chip, &tcb).unwrap());
        let (_, second) = clock.time_ms(|| client.vcek_chain(&chip, &tcb).unwrap());
        assert!(first > 0.0);
        assert_eq!(first, second);
    }

    #[test]
    fn brief_kds_outage_is_retried_to_success() {
        let (clock, net, amd) = setup();
        net.peer(KDS_ADDRESS)
            .fault_plan(revelio_net::FaultPlan::fail_first(2));
        let client = KdsHttpClient::new(net, KDS_ADDRESS);
        let chip = ChipId::from_seed(1);
        let tcb = TcbVersion::default();
        let before = clock.now_us();
        let chain = client.vcek_chain(&chip, &tcb).unwrap();
        chain.validate(&amd.ark_public_key()).unwrap();
        // Two timeouts plus two backoffs were paid in virtual time.
        assert!(clock.now_us() > before + 2_000_000);
    }

    #[test]
    fn sustained_kds_outage_surfaces_a_transient_error() {
        let (_, net, _) = setup();
        net.peer(KDS_ADDRESS)
            .fault_plan(revelio_net::FaultPlan::outage());
        let telemetry = revelio_telemetry::Telemetry::new(net.clock().clone());
        let client = KdsHttpClient::new(net, KDS_ADDRESS).with_telemetry(telemetry.clone());
        let err = client
            .vcek_chain(&ChipId::from_seed(1), &TcbVersion::default())
            .unwrap_err();
        assert!(err.is_transient(), "outage must stay transient, got {err}");
        assert_eq!(telemetry.counter("revelio_kds_retry_gave_up_total"), 1);
        assert_eq!(telemetry.counter("revelio_kds_retry_attempts_total"), 3);
    }

    #[test]
    fn cert_chain_route_serves_verifiable_ark_ask() {
        let (_, net, amd) = setup();
        let client = KdsHttpClient::new(net, KDS_ADDRESS);
        let (ark, ask) = client.cert_chain().unwrap();
        assert_eq!(ark.public_key, amd.ark_public_key());
        ark.verify(&amd.ark_public_key()).unwrap();
        ask.verify(&ark.public_key).unwrap();
    }

    #[test]
    fn flush_evicts_cached_chains_and_bumps_the_generation() {
        let (clock, net, _) = setup();
        net.peer(KDS_ADDRESS).latency_us(213_650);
        let telemetry = revelio_telemetry::Telemetry::new(net.clock().clone());
        let client = KdsHttpClient::new(net, KDS_ADDRESS).with_telemetry(telemetry.clone());
        let chip = ChipId::from_seed(1);
        let tcb = TcbVersion::default();

        // Fill, then hit for free.
        let (_, first) = clock.time_ms(|| client.vcek_chain(&chip, &tcb).unwrap());
        let (_, hit) = clock.time_ms(|| client.vcek_chain(&chip, &tcb).unwrap());
        assert!(first > 400.0);
        assert_eq!(hit, 0.0);
        assert_eq!(client.cached_chains(), 1);
        assert_eq!(client.cache_generation(), Some(0));

        // A revocation/TCB-floor event flushes: generation moves, map
        // empties, and the next fetch pays the round trip again.
        client.flush_cache();
        assert_eq!(client.cache_generation(), Some(1));
        assert_eq!(client.cached_chains(), 0);
        let (_, refetch) = clock.time_ms(|| client.vcek_chain(&chip, &tcb).unwrap());
        assert!(refetch > 400.0, "flushed chain must be re-fetched");

        assert_eq!(
            telemetry.counter("revelio_kds_client_cache_invalidations_total"),
            1
        );
        assert_eq!(telemetry.counter("revelio_kds_client_cache_hits_total"), 1);
        assert_eq!(
            telemetry.counter("revelio_kds_client_cache_misses_total"),
            2
        );
    }

    #[test]
    fn flush_is_shared_across_clones_and_a_noop_without_a_cache() {
        let (_, net, _) = setup();
        let client = KdsHttpClient::new(net.clone(), KDS_ADDRESS);
        let clone = client.clone();
        clone
            .vcek_chain(&ChipId::from_seed(1), &TcbVersion::default())
            .unwrap();
        assert_eq!(client.cached_chains(), 1, "clones share the cache cell");
        client.flush_cache();
        assert_eq!(clone.cached_chains(), 0, "flush reaches every clone");
        assert_eq!(clone.cache_generation(), Some(1));

        let uncached = KdsHttpClient::without_cache(net, KDS_ADDRESS);
        uncached.flush_cache(); // must not panic
        assert_eq!(uncached.cache_generation(), None);
    }

    #[test]
    fn different_tcbs_are_distinct_cache_entries() {
        let (_, net, _) = setup();
        let client = KdsHttpClient::new(net, KDS_ADDRESS);
        let chip = ChipId::from_seed(1);
        let a = client
            .vcek_chain(&chip, &TcbVersion::new(1, 0, 7, 100))
            .unwrap();
        let b = client
            .vcek_chain(&chip, &TcbVersion::new(1, 0, 8, 100))
            .unwrap();
        assert_ne!(a.vcek.public_key, b.vcek.public_key);
    }
}

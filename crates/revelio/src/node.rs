//! A **Revelio VM**: a measured, verity-protected, sealed confidential
//! guest serving a web application plus its attestation evidence, and
//! participating in the SP node's certificate/key distribution protocol
//! (paper §5.2, §5.3.1).
//!
//! Each node exposes two network surfaces:
//!
//! * the **bootstrap port** (provider-internal): `GET /revelio/csr-bundle`,
//!   `POST /revelio/install-cert`, `POST /revelio/key-request` — the
//!   endpoints Fig. 4's protocol runs over;
//! * the **public HTTPS port**, bound only after the shared TLS identity is
//!   installed: the application routes plus the well-known evidence URL.
//!
//! No other port accepts connections — dialing the SSH port of a Revelio
//! VM gets `ConnectionRefused`, which is requirement **F4**'s
//! "no inward management connections" made literal.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use revelio_boot::vm::BootedVm;
use revelio_crypto::ed25519::{SigningKey, VerifyingKey};
use revelio_crypto::hmac::Hmac;
use revelio_crypto::sealed_box;
use revelio_crypto::sha2::Sha256;
use revelio_crypto::wire::{ByteReader, ByteWriter};
use revelio_crypto::x25519;
use revelio_http::message::{Request, Response};
use revelio_http::router::Router;
use revelio_http::server::{plain_request_traced, serve_http, serve_https};
use revelio_http::WELL_KNOWN_ATTESTATION_PATH;
use revelio_net::net::SimNet;
use revelio_net::retry::RetryPolicy;
use revelio_pki::cert::{CertificateChain, CertificateSigningRequest};
use revelio_telemetry::{retry_with_telemetry, FlightRecorder, Telemetry};
use revelio_tls::TlsServerConfig;
use sev_snp::ids::ChipId;
use sev_snp::measurement::Measurement;
use sev_snp::report::SignedReport;
use sev_snp::verify::ReportVerifier;

use crate::evidence::{tls_binding_report_data, EvidenceBundle};
use crate::kds_http::KdsHttpClient;
use crate::RevelioError;

/// Static configuration of one Revelio node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Service domain the shared certificate will cover.
    pub domain: String,
    /// Public HTTPS address, e.g. `"203.0.113.1:443"`.
    pub public_address: String,
    /// Provider-internal bootstrap address, e.g. `"203.0.113.1:8080"`.
    pub bootstrap_address: String,
    /// CSR organisation field.
    pub organization: String,
    /// CSR country field.
    pub country: String,
    /// Modelled server-side work per application request, in ms (drives
    /// the Table 3 "plain GET" row).
    pub page_processing_ms: f64,
    /// Pinned AMD root key for validating peer/leader reports.
    pub trusted_ark: VerifyingKey,
    /// Trusted web-PKI roots: the certificate chain the SP distributes is
    /// validated against these before installation (a forged self-signed
    /// chain from a bootstrap-network attacker must not be served).
    pub trusted_tls_roots: Vec<revelio_pki::cert::Certificate>,
    /// Retry budget for the node's leader-link requests (key retrieval
    /// over the provider-internal network). Start from
    /// [`NodeConfig::default_retry_policy`].
    pub retry: RetryPolicy,
}

impl NodeConfig {
    /// The retry policy node configs should start with: the crate-wide
    /// default budget on the node-specific jitter stream.
    #[must_use]
    pub fn default_retry_policy() -> RetryPolicy {
        RetryPolicy::default().with_jitter_seed(NODE_JITTER_SEED)
    }
}

/// The `{CSR, report}` bundle a node hands the SP (Fig. 4 step 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrBundle {
    /// CSR for the node's unique identity key.
    pub csr: CertificateSigningRequest,
    /// Report with `REPORT_DATA = SHA-256(csr)`.
    pub report: SignedReport,
}

impl CsrBundle {
    /// Serializes the bundle.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_var_bytes(&self.csr.to_bytes());
        w.put_var_bytes(&self.report.to_bytes());
        w.into_bytes()
    }

    /// Decodes the bundle.
    ///
    /// # Errors
    ///
    /// Returns wire/crypto errors for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RevelioError> {
        let mut r = ByteReader::new(bytes);
        let csr = CertificateSigningRequest::from_bytes(r.get_var_bytes()?)?;
        let report = SignedReport::from_bytes(r.get_var_bytes()?)?;
        r.finish()?;
        Ok(CsrBundle { csr, report })
    }
}

pub(crate) fn encode_install_cert(
    chain: &CertificateChain,
    leader_bootstrap: &str,
    approved_chips: &[ChipId],
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_var_bytes(&chain.to_bytes());
    w.put_str(leader_bootstrap);
    w.put_u32(approved_chips.len() as u32);
    for chip in approved_chips {
        w.put_bytes(chip.as_bytes());
    }
    w.into_bytes()
}

fn decode_install_cert(
    bytes: &[u8],
) -> Result<(CertificateChain, String, Vec<ChipId>), RevelioError> {
    let mut r = ByteReader::new(bytes);
    let chain = CertificateChain::from_bytes(r.get_var_bytes()?)?;
    let leader = r.get_str()?;
    let n = r.get_count(ChipId::LEN)?;
    let mut approved_chips = Vec::with_capacity(n);
    for _ in 0..n {
        approved_chips.push(ChipId::from_bytes(r.get_array::<64>()?));
    }
    r.finish()?;
    Ok((chain, leader, approved_chips))
}

fn encode_key_request(report: &SignedReport, box_public: &[u8; 32], nonce: &[u8; 32]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_var_bytes(&report.to_bytes());
    w.put_bytes(box_public);
    w.put_bytes(nonce);
    w.into_bytes()
}

fn decode_key_request(bytes: &[u8]) -> Result<(SignedReport, [u8; 32], [u8; 32]), RevelioError> {
    let mut r = ByteReader::new(bytes);
    let report = SignedReport::from_bytes(r.get_var_bytes()?)?;
    let box_public = r.get_array::<32>()?;
    let nonce = r.get_array::<32>()?;
    r.finish()?;
    Ok((report, box_public, nonce))
}

/// The `REPORT_DATA` binding of a key request: the requester's encryption
/// key and the freshness nonce, both attested.
fn key_request_binding(box_public: &[u8; 32], nonce: &[u8; 32]) -> [u8; 32] {
    Sha256::digest([&box_public[..], &nonce[..]].concat())
}

/// The `REPORT_DATA` binding of a key response: the requester's nonce plus
/// the ciphertext — a recorded response cannot be replayed against a
/// different request.
fn key_response_binding(nonce: &[u8; 32], encrypted: &[u8]) -> [u8; 32] {
    Sha256::digest([&nonce[..], encrypted].concat())
}

fn encode_key_response(leader_report: &SignedReport, encrypted_key: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_var_bytes(&leader_report.to_bytes());
    w.put_var_bytes(encrypted_key);
    w.into_bytes()
}

fn decode_key_response(bytes: &[u8]) -> Result<(SignedReport, Vec<u8>), RevelioError> {
    let mut r = ByteReader::new(bytes);
    let report = SignedReport::from_bytes(r.get_var_bytes()?)?;
    let encrypted = r.get_var_bytes()?.to_vec();
    r.finish()?;
    Ok((report, encrypted))
}

struct NodeState {
    chain: Option<CertificateChain>,
    tls_key: Option<SigningKey>,
    evidence: Option<Vec<u8>>,
    approved_chips: Vec<ChipId>,
    serving: bool,
}

/// Decorrelates the node retry jitter stream from other components.
const NODE_JITTER_SEED: u64 = 0x6e6f_6465; // "node"

struct NodeShared {
    vm: BootedVm,
    config: NodeConfig,
    net: SimNet,
    kds: KdsHttpClient,
    retry: RetryPolicy,
    state: Mutex<NodeState>,
    box_secret: [u8; 32],
    eph_counter: AtomicU64,
    /// The application router served behind the well-known endpoint.
    app: Router,
    /// When set, the node records request counters and an evidence-build
    /// span, and its public port serves `GET /metrics`.
    telemetry: Option<Telemetry>,
    /// When set, the node feeds its ring of recent protocol events (key
    /// exchanges, verdicts) and its public port serves `GET /debug/flight`.
    flight: Option<FlightRecorder>,
}

/// A deployed Revelio node.
#[derive(Clone)]
pub struct RevelioNode {
    shared: Arc<NodeShared>,
}

impl std::fmt::Debug for RevelioNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RevelioNode")
            .field("domain", &self.shared.config.domain)
            .field("public_address", &self.shared.config.public_address)
            .finish_non_exhaustive()
    }
}

impl NodeShared {
    /// Appends an event to the node's flight ring, when one is attached.
    fn flight_record(&self, kind: &str, detail: &str) {
        if let Some(flight) = &self.flight {
            flight.record(kind, detail);
        }
    }

    fn identity(&self) -> &SigningKey {
        self.vm
            .identity()
            .expect("revelio images enable identity creation")
    }

    fn box_public(&self) -> [u8; 32] {
        x25519::public_key(&self.box_secret)
    }

    fn csr(&self) -> CertificateSigningRequest {
        CertificateSigningRequest::new(
            &self.config.domain,
            self.identity(),
            &self.config.organization,
            &self.config.country,
        )
    }

    fn next_ephemeral(&self) -> [u8; 32] {
        let n = self.eph_counter.fetch_add(1, Ordering::Relaxed);
        let mut mac = Hmac::<Sha256>::new(&self.box_secret);
        mac.update(b"node-ephemeral");
        mac.update(&n.to_le_bytes());
        mac.finalize().try_into().expect("32 bytes")
    }

    /// Validates a peer/leader report for mutual attestation: chain to the
    /// pinned ARK, signature, and an *identical* launch measurement.
    fn validate_peer_report(&self, report: &SignedReport) -> Result<(), RevelioError> {
        let chain = self
            .kds
            .vcek_chain(&report.report.chip_id, &report.report.reported_tcb)?;
        ReportVerifier::new(self.config.trusted_ark)
            .verify(report, &chain)
            .map_err(|e| RevelioError::MutualAttestationFailed(e.to_string()))?;
        if report.report.measurement != self.vm.measurement() {
            return Err(RevelioError::MutualAttestationFailed(
                "peer measurement differs from ours".into(),
            ));
        }
        Ok(())
    }

    fn handle_key_request(&self, body: &[u8]) -> Result<Vec<u8>, RevelioError> {
        let (peer_report, peer_box_public, nonce) = decode_key_request(body)?;
        self.validate_peer_report(&peer_report)?;
        // REPORT_DATA must bind the encryption key we are about to use and
        // the requester's freshness nonce.
        let expected = key_request_binding(&peer_box_public, &nonce);
        if !revelio_crypto::ct::eq(&peer_report.report.report_data.as_bytes()[..32], &expected) {
            return Err(RevelioError::MutualAttestationFailed(
                "peer report does not bind its encryption key".into(),
            ));
        }
        let (tls_key, approved_chips) = {
            let state = self.state.lock();
            let key = state.tls_key.clone().ok_or_else(|| {
                RevelioError::MutualAttestationFailed("leader holds no key yet".into())
            })?;
            (key, state.approved_chips.clone())
        };
        // Enforce the SP's chip allowlist at key distribution too (§5.3.1):
        // an extra clone of the public image on an unapproved chip presents
        // a valid report with the right measurement, but must not receive
        // the fleet's TLS key.
        if !approved_chips.is_empty() && !approved_chips.contains(&peer_report.report.chip_id) {
            return Err(RevelioError::MutualAttestationFailed(
                "peer chip is not on the fleet allowlist".into(),
            ));
        }
        // Mix the request nonce into the ephemeral so a leader reboot
        // (which resets the counter) can never reuse a (key, nonce) pair
        // for a different plaintext.
        let mut eph = self.next_ephemeral();
        let mixed = Sha256::digest([&eph[..], &nonce[..]].concat());
        eph.copy_from_slice(&mixed);
        let encrypted = sealed_box::seal(&peer_box_public, tls_key.seed(), &eph);
        // The leader's own report binds nonce and payload (§5.3.1).
        let leader_report = self
            .vm
            .report_with_data(&key_response_binding(&nonce, &encrypted));
        Ok(encode_key_response(&leader_report, &encrypted))
    }

    fn fetch_key_from_leader(
        &self,
        leader_bootstrap: &str,
        chain: &CertificateChain,
    ) -> Result<SigningKey, RevelioError> {
        let box_public = self.box_public();
        // Freshness nonce: binds the leader's response to THIS request, so
        // recorded responses from earlier provisioning rounds cannot be
        // replayed after a key rotation.
        let nonce = self.next_ephemeral();
        let my_report = self
            .vm
            .report_with_data(&key_request_binding(&box_public, &nonce));
        let request = Request::post(
            "/revelio/key-request",
            encode_key_request(&my_report, &box_public, &nonce),
        );
        // Retry transient faults on the leader link: the nonce is reused
        // across attempts of ONE logical request (replay protection binds
        // the response to the request, not to the transport attempt).
        let span = self
            .telemetry
            .as_ref()
            .map(|t| t.span_with("node.key_fetch", &[("leader", leader_bootstrap)]));
        let attempt = |attempt: u32| {
            if attempt > 0 {
                self.flight_record("retry", &format!("key-fetch attempt {attempt}"));
            }
            plain_request_traced(
                &self.net,
                leader_bootstrap,
                &request,
                self.telemetry.as_ref(),
            )
        };
        let response = match &self.telemetry {
            Some(telemetry) => retry_with_telemetry(
                &self.retry,
                telemetry,
                "node",
                revelio_http::HttpError::is_transient,
                attempt,
            ),
            None => {
                self.retry
                    .run(
                        self.net.clock(),
                        revelio_http::HttpError::is_transient,
                        attempt,
                    )
                    .0
            }
        };
        if let Some(span) = span {
            if response.is_err() {
                span.attr("outcome", "failure");
            }
            span.finish_ms();
        }
        let response = response?;
        if !response.is_success() {
            return Err(RevelioError::MutualAttestationFailed(format!(
                "leader refused key request with status {}",
                response.status
            )));
        }
        let (leader_report, encrypted) = decode_key_response(&response.body)?;
        self.validate_peer_report(&leader_report)?;
        let expected = key_response_binding(&nonce, &encrypted);
        if !revelio_crypto::ct::eq(
            &leader_report.report.report_data.as_bytes()[..32],
            &expected,
        ) {
            return Err(RevelioError::MutualAttestationFailed(
                "leader report does not bind the key payload".into(),
            ));
        }
        let seed: [u8; 32] = sealed_box::open(&self.box_secret, &encrypted)?
            .try_into()
            .map_err(|_| RevelioError::KeyCertificateMismatch)?;
        let key = SigningKey::from_seed(&seed);
        if key.verifying_key() != chain.leaf().public_key {
            return Err(RevelioError::KeyCertificateMismatch);
        }
        Ok(key)
    }

    fn start_https(
        self: &Arc<Self>,
        chain: CertificateChain,
        key: SigningKey,
    ) -> Result<(), RevelioError> {
        // Build the evidence bundle binding the (shared) TLS key to this
        // node's hardware identity.
        let span = self.telemetry.as_ref().map(|t| {
            t.span_with(
                "node.evidence_build",
                &[("node", &self.config.public_address)],
            )
        });
        let binding = tls_binding_report_data(&key.verifying_key());
        let report = self.vm.report_with_data(&binding);
        let vcek_chain = self
            .kds
            .vcek_chain(&report.report.chip_id, &report.report.reported_tcb)?;
        let evidence = EvidenceBundle {
            report,
            chain: vcek_chain,
        }
        .to_bytes();
        if let Some(telemetry) = &self.telemetry {
            let ms = span.expect("span exists when telemetry does").finish_ms();
            telemetry.gauge_set("revelio_node_evidence_build_ms", ms);
        }

        let clock = self.net.clock().clone();
        let processing_ms = self.config.page_processing_ms;
        let app_shared = Arc::clone(self);
        let ratls_evidence = evidence.clone();
        let well_known_evidence = evidence.clone();
        let evidence_telemetry = self.telemetry.clone();
        let mut router = Router::new().get(WELL_KNOWN_ATTESTATION_PATH, move |_req| {
            if let Some(telemetry) = &evidence_telemetry {
                telemetry.counter_add("revelio_node_evidence_requests_total", 1);
            }
            Response::ok(well_known_evidence.clone())
        });
        if let Some(telemetry) = &self.telemetry {
            // Prometheus text exposition of the whole (shared) registry —
            // the operator-facing side of the deterministic telemetry.
            let registry = telemetry.clone();
            router = router.get("/metrics", move |_req| {
                Response::ok(registry.export_prometheus().into_bytes())
                    .with_header("Content-Type", "text/plain; version=0.0.4")
            });
        }
        if let Some(flight) = &self.flight {
            // Read-only forensic window: the ring is capacity-bounded, so
            // the response body is too.
            let ring = flight.clone();
            router = router.get("/debug/flight", move |_req| {
                Response::ok(ring.dump().to_json().into_bytes())
                    .with_header("Content-Type", "application/json")
            });
        }
        let request_telemetry = self.telemetry.clone();
        let mut router = router.with_fallback(move |req| {
            if let Some(telemetry) = &request_telemetry {
                telemetry.counter_add("revelio_node_requests_total", 1);
            }
            clock.advance_ms(processing_ms);
            app_shared.vm_app_dispatch(req)
        });
        if let Some(telemetry) = &self.telemetry {
            router = router.with_tracing(telemetry.clone(), "node");
        }

        let mut entropy_seed = [0u8; 32];
        entropy_seed.copy_from_slice(&Sha256::digest(
            [&self.box_secret[..], b"tls-entropy"].concat(),
        ));
        // A certificate renewal re-installs over a live service: release
        // the public binding first so the bind below swaps the TLS config
        // instead of failing with AddressInUse. First-time installs skip
        // this (the address was never bound).
        if self.state.lock().serving {
            self.net.unbind(&self.config.public_address);
        }
        serve_https(
            &self.net,
            &self.config.public_address,
            TlsServerConfig {
                chain: chain.clone(),
                key: key.clone(),
                entropy_seed,
                // RA-TLS (§7): the same evidence bundle also rides inside
                // the handshake so clients can skip the well-known fetch.
                evidence: Some(ratls_evidence),
            },
            router,
        )?;
        // Commit shared state only once the public service is actually up:
        // a failed (or repeated) install must not leave the node answering
        // key requests for a key it never served.
        {
            let mut state = self.state.lock();
            state.evidence = Some(evidence);
            state.tls_key = Some(key);
            state.chain = Some(chain);
            state.serving = true;
        }
        Ok(())
    }

    fn vm_app_dispatch(&self, req: &Request) -> Response {
        self.app.dispatch(req)
    }
}

impl RevelioNode {
    /// Deploys a booted VM as a Revelio node: binds the bootstrap port and
    /// waits (passively) for the SP node's protocol.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::Http`] when an address is already bound.
    pub fn deploy(
        net: SimNet,
        kds: KdsHttpClient,
        vm: BootedVm,
        config: NodeConfig,
        app: Router,
    ) -> Result<Self, RevelioError> {
        Self::deploy_with_telemetry(net, kds, vm, config, app, None)
    }

    /// [`RevelioNode::deploy`] with a telemetry registry: the node records
    /// request counters plus a `node.evidence_build` span, and its public
    /// HTTPS port additionally serves `GET /metrics` (Prometheus text
    /// exposition of the shared registry) alongside the well-known
    /// attestation endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::Http`] when an address is already bound.
    pub fn deploy_with_telemetry(
        net: SimNet,
        kds: KdsHttpClient,
        vm: BootedVm,
        config: NodeConfig,
        app: Router,
        telemetry: Option<Telemetry>,
    ) -> Result<Self, RevelioError> {
        Self::deploy_with_observability(net, kds, vm, config, app, telemetry, None)
    }

    /// [`RevelioNode::deploy_with_telemetry`] plus a flight recorder: the
    /// node appends key-exchange and verdict events to the ring, and its
    /// public HTTPS port serves `GET /debug/flight` (the bounded ring as
    /// JSON) next to `/metrics`. Both routers also extract `traceparent`
    /// contexts when telemetry is attached, stitching the node's server
    /// side into the caller's trace.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::Http`] when an address is already bound.
    pub fn deploy_with_observability(
        net: SimNet,
        kds: KdsHttpClient,
        vm: BootedVm,
        config: NodeConfig,
        app: Router,
        telemetry: Option<Telemetry>,
        flight: Option<FlightRecorder>,
    ) -> Result<Self, RevelioError> {
        let identity_seed = *vm.identity().expect("identity enabled").seed();
        let box_secret: [u8; 32] = Hmac::<Sha256>::mac(&identity_seed, b"box-encryption")
            .try_into()
            .expect("32 bytes");
        let retry = config.retry.clone();
        let shared = Arc::new(NodeShared {
            vm,
            config,
            net: net.clone(),
            kds,
            retry,
            state: Mutex::new(NodeState {
                chain: None,
                tls_key: None,
                evidence: None,
                approved_chips: Vec::new(),
                serving: false,
            }),
            box_secret,
            eph_counter: AtomicU64::new(0),
            app,
            telemetry,
            flight,
        });

        let bootstrap_router = {
            let s1 = Arc::clone(&shared);
            let s2 = Arc::clone(&shared);
            let s3 = Arc::clone(&shared);
            let mut router = Router::new()
                .get("/revelio/csr-bundle", move |_req| {
                    let csr = s1.csr();
                    let report = s1.vm.report_with_data(&csr.digest());
                    Response::ok(CsrBundle { csr, report }.to_bytes())
                })
                .post("/revelio/install-cert", move |req| {
                    match s2.install_cert(&req.body) {
                        Ok(()) => {
                            s2.flight_record("request", "install-cert accepted");
                            Response::ok(Vec::new())
                        }
                        Err(e) => {
                            s2.flight_record("verdict", &format!("install-cert refused: {e}"));
                            Response::status(403).with_header(
                                "X-Revelio-Error",
                                &e.to_string().replace(['\r', '\n'], " "),
                            )
                        }
                    }
                })
                .post("/revelio/key-request", move |req| {
                    match s3.handle_key_request(&req.body) {
                        Ok(body) => {
                            s3.flight_record("request", "key-request served");
                            Response::ok(body)
                        }
                        Err(e) => {
                            s3.flight_record("verdict", &format!("key-request refused: {e}"));
                            Response::status(403).with_header(
                                "X-Revelio-Error",
                                &e.to_string().replace(['\r', '\n'], " "),
                            )
                        }
                    }
                });
            if let Some(telemetry) = &shared.telemetry {
                router = router.with_tracing(telemetry.clone(), "node");
            }
            router
        };
        serve_http(&net, &shared.config.bootstrap_address, bootstrap_router)?;
        Ok(RevelioNode { shared })
    }

    /// This node's launch measurement.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.shared.vm.measurement()
    }

    /// The node's unique identity public key.
    #[must_use]
    pub fn identity_public_key(&self) -> VerifyingKey {
        self.shared.identity().verifying_key()
    }

    /// The installed shared TLS public key, once provisioned.
    #[must_use]
    pub fn tls_public_key(&self) -> Option<VerifyingKey> {
        self.shared
            .state
            .lock()
            .tls_key
            .as_ref()
            .map(SigningKey::verifying_key)
    }

    /// Whether the public HTTPS service is up.
    #[must_use]
    pub fn is_serving(&self) -> bool {
        self.shared.state.lock().serving
    }

    /// The node's public HTTPS address.
    #[must_use]
    pub fn public_address(&self) -> &str {
        &self.shared.config.public_address
    }

    /// The node's bootstrap address.
    #[must_use]
    pub fn bootstrap_address(&self) -> &str {
        &self.shared.config.bootstrap_address
    }

    /// The underlying booted VM (for boot-report inspection in benches).
    #[must_use]
    pub fn vm(&self) -> &BootedVm {
        &self.shared.vm
    }
}

impl NodeShared {
    fn install_cert(self: &Arc<Self>, body: &[u8]) -> Result<(), RevelioError> {
        let (chain, leader_bootstrap, approved_chips) = decode_install_cert(body)?;
        // The chain must validate to the node's pinned web-PKI roots, be
        // within its validity window, and cover the service domain — a
        // bootstrap-network attacker cannot install a self-signed chain.
        let now_ms = self.net.clock().now_us() / 1000;
        chain.validate(&self.config.trusted_tls_roots, now_ms)?;
        chain.leaf().check_domain(&self.config.domain)?;

        // Record the fleet allowlist before any key exchange so the leader
        // enforces it from its very first key request.
        self.state.lock().approved_chips = approved_chips;

        // Renewal fast path: a fresh chain over the key this node already
        // holds needs no leader round trip — the fleet key survives a
        // certificate renewal, only the chain's validity window moves.
        let stored_key = {
            let state = self.state.lock();
            state
                .tls_key
                .clone()
                .filter(|k| k.verifying_key() == chain.leaf().public_key)
        };
        let key = if let Some(key) = stored_key {
            self.flight_record("request", "install-cert renewal (key reused)");
            key
        } else if chain.leaf().public_key == self.identity().verifying_key() {
            self.identity().clone()
        } else {
            self.fetch_key_from_leader(&leader_bootstrap, &chain)?
        };
        self.start_https(chain, key)
    }
}

/// A small demo application used by examples and tests.
#[must_use]
pub fn demo_app() -> Router {
    Router::new()
        .get("/", |_| {
            Response::ok(b"<html><body>revelio demo service</body></html>".to_vec())
                .with_header("Content-Type", "text/html")
        })
        .get("/healthz", |_| Response::ok(b"ok".to_vec()))
}

//! The Revelio web extension: seamless end-user remote attestation
//! (paper §5.3.2).
//!
//! For every **registered** domain the extension intercepts the first
//! access in a browser context: it fetches the evidence from the
//! well-known URL, queries the AMD KDS for the VCEK chain (cached across
//! sites — the paper's §6.4 optimization), validates the certificate
//! chain, the report signature, the launch measurement against the
//! registered golden values, and finally that the **TLS connection's
//! public key is the key bound inside `REPORT_DATA`** — only then is the
//! page trusted. Afterwards every request keeps being monitored: if the
//! connection is reset and re-established against a different key (the
//! DNS-controlling service provider's redirect attack), the extension
//! flags it even though the browser itself would accept the attacker's
//! valid certificate.
//!
//! # Staged verification (SNPGuard split)
//!
//! Verification is two explicit stages (see `DESIGN.md`, "Verifier at
//! line rate"):
//!
//! * [`WebExtension::verify_evidence`] — the **cacheable** stage: VCEK
//!   chain validity, report signature, guest policy, TCB floor, and
//!   measurement-vs-golden. Its result is an [`EvidenceVerdict`] cached
//!   under a [`VerdictKey`] (launch digest, reported TCB, VCEK
//!   fingerprint, cert fingerprint) inside a generation-stamped
//!   [`Snapshot`] cell. `register_site` / `revoke_measurement` /
//!   [`WebExtension::set_tcb_floor`] bump the generation, making every
//!   cached verdict unreachable at once — no TTLs, no stale trust.
//! * [`WebExtension::verify_connection`] — the **per-connection** stage:
//!   the TLS key binding against *this* connection. It can never be
//!   cached and runs on every verification, cache hit or not.
//!
//! A cache hit performs **zero signature verifications** (the
//! `revelio_extension_signature_verifications_total` counter proves it);
//! a miss pays the full pipeline with the four signature equations
//! collapsed into one batched check
//! ([`ReportVerifier::verify_batched`]).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use revelio_crypto::ed25519::VerifyingKey;
use revelio_crypto::sha2::Sha256;
use revelio_http::client::{HttpsClient, HttpsSession};
use revelio_http::message::{Request, Response};
use revelio_http::{HttpError, WELL_KNOWN_ATTESTATION_PATH};
use revelio_net::clock::SimClock;
use revelio_net::dns::DnsZone;
use revelio_net::net::SimNet;
use revelio_net::retry::RetryPolicy;
use revelio_net::snapshot::Snapshot;
use revelio_pki::cert::Certificate;
use revelio_telemetry::{retry_with_telemetry, FlightDump, FlightRecorder, Telemetry};
use revelio_tls::TlsClientConfig;
use sev_snp::ids::TcbVersion;
use sev_snp::measurement::Measurement;
use sev_snp::verify::{ReportVerifier, SIGNATURE_CHECKS_PER_VERIFY};

use crate::evidence::EvidenceBundle;
use crate::kds_http::KdsHttpClient;
use crate::registry::GoldenSet;
use crate::RevelioError;

/// How [`WebExtension::reconnect`] re-establishes trust in a
/// [`MonitoredSession`] after a connection reset (§5.3.2's continuous
/// monitoring, with ROADMAP's open question resolved in favour of
/// re-attestation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReconnectPolicy {
    /// Fast path only: accept the new connection iff it terminates at
    /// the pinned key. Cheap, but blind to a measurement revoked or
    /// evidence gone stale *behind* the same key.
    PinOnly,
    /// Pin check first (the redirect attack fails fast), then re-fetch
    /// and re-validate the **full evidence bundle** before resuming.
    /// The default: a reconnect is a new trust decision, not a resumed
    /// one.
    #[default]
    ReattestAlways,
}

/// Extension policy and modelled client-side costs.
#[derive(Debug, Clone)]
pub struct ExtensionConfig {
    /// Pinned AMD root key.
    pub trusted_ark: VerifyingKey,
    /// Browser root store.
    pub tls_roots: Vec<Certificate>,
    /// Modelled cost of in-extension evidence validation, ms (fitted to
    /// Table 3; JavaScript crypto is slow). Charged only on a verdict
    /// cache **miss** — a hit skips the signature work it models.
    pub validation_ms: f64,
    /// Modelled cost of querying the browser's connection context per
    /// monitored request, ms (Table 3: ~14 ms). Also the cost of the
    /// per-connection TLS-binding stage, which runs on every
    /// verification, cached or not.
    pub connection_validation_ms: f64,
    /// What a monitored-session reconnect must re-establish.
    pub reconnect: ReconnectPolicy,
}

/// Timing breakdown of one attested page access (Table 3's raw material).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BrowseTiming {
    /// End-to-end simulated time, ms.
    pub total_ms: f64,
    /// Time spent fetching+validating evidence (includes KDS), ms.
    pub attestation_ms: f64,
    /// Of which: the KDS round trip, ms (0 on a cache hit).
    pub kds_ms: f64,
}

/// A successfully attested page access.
#[derive(Debug)]
pub struct BrowseOutcome {
    /// The application response.
    pub response: Response,
    /// Timing breakdown.
    pub timing: BrowseTiming,
    /// The validated evidence (for UI display: measurement, chip, TCB).
    pub evidence: EvidenceBundle,
}

/// What the extension UI shows the user after a browse attempt. The
/// three-way split matters for trust: a dropped packet and a forged
/// measurement must never render the same badge (§5.3.2's alerts are
/// *attestation* verdicts, not connectivity indicators).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrowseVerdict {
    /// Evidence validated end to end, down to the TLS connection binding.
    Attested,
    /// Transport faults exhausted the retry budget. **No verdict about the
    /// site was reached** — the UI says "network problem, retry", never
    /// "attestation failed".
    TransientNetworkRetry,
    /// Evidence was obtained and affirmatively failed a check (signature,
    /// measurement, TLS binding...).
    AttestationFailed,
    /// The site's certificate chain aged past `not_after_ms` — an
    /// *operational* condition (a fleet whose renewal lagged), distinct
    /// from evidence tampering. The reconciler's renewal path keys off
    /// this verdict; the UI says "certificate expired", not "attestation
    /// failed".
    CertificateExpired,
    /// The site is reachable but serves no Revelio evidence.
    NotRevelio,
}

impl BrowseVerdict {
    /// Classifies a browse result into the UI verdict.
    #[must_use]
    pub fn classify(result: &Result<BrowseOutcome, RevelioError>) -> Self {
        match result {
            Ok(_) => BrowseVerdict::Attested,
            Err(e) => Self::of_error(e),
        }
    }

    /// The verdict for a failed browse.
    fn of_error(e: &RevelioError) -> Self {
        if e.is_transient() {
            BrowseVerdict::TransientNetworkRetry
        } else if e.is_certificate_expired() {
            BrowseVerdict::CertificateExpired
        } else if matches!(e, RevelioError::NotRevelioSite(_)) {
            BrowseVerdict::NotRevelio
        } else {
            BrowseVerdict::AttestationFailed
        }
    }

    /// Stable label (telemetry, logs, UI badge ids).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BrowseVerdict::Attested => "attested",
            BrowseVerdict::TransientNetworkRetry => "transient_network_retry",
            BrowseVerdict::AttestationFailed => "attestation_failed",
            BrowseVerdict::CertificateExpired => "certificate_expired",
            BrowseVerdict::NotRevelio => "not_revelio",
        }
    }
}

/// The identity of an evidence bundle for verdict-cache purposes: the
/// four components under which the cacheable checks are invariant
/// (SNPGuard's split). Everything a cached [`EvidenceVerdict`] asserts
/// is a function of these four values; fields outside the key (nonce,
/// guest SVN, host data) are **not** asserted by a cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerdictKey {
    /// The launch digest.
    pub measurement: Measurement,
    /// The reported TCB, packed ([`TcbVersion::to_u64`]).
    pub reported_tcb: u64,
    /// SHA-256 over the bundled VCEK certificate (covers the chip id and
    /// TCB binding, the endorsement key, and the ASK signature).
    pub vcek_fingerprint: [u8; 32],
    /// The attested TLS-key digest from `REPORT_DATA` — the certificate
    /// fingerprint a shared-cert fleet has in common.
    pub cert_fingerprint: [u8; 32],
}

impl VerdictKey {
    /// Computes the cache key of `evidence`. Pure: no network, no clock.
    #[must_use]
    pub fn of(evidence: &EvidenceBundle) -> Self {
        let report = &evidence.report.report;
        let cert_fingerprint: [u8; 32] = report.report_data.as_bytes()[..32]
            .try_into()
            .expect("REPORT_DATA holds at least 32 bytes");
        VerdictKey {
            measurement: report.measurement,
            reported_tcb: report.reported_tcb.to_u64(),
            vcek_fingerprint: Sha256::digest(evidence.chain.vcek.to_bytes()),
            cert_fingerprint,
        }
    }
}

/// The result of the cacheable verification stage
/// ([`WebExtension::verify_evidence`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvidenceVerdict {
    /// The verified launch digest.
    pub measurement: Measurement,
    /// The verified reported TCB.
    pub reported_tcb: TcbVersion,
    /// The cache generation this verdict was computed under. A verdict
    /// is served from cache only while the cell still carries the same
    /// generation — any registration, revocation, or TCB-floor change
    /// bumps it.
    pub generation: u64,
    /// Whether this verdict came from the cache.
    pub cached: bool,
    /// Signature equations checked by *this* call: 0 on a cache hit,
    /// [`SIGNATURE_CHECKS_PER_VERIFY`] on a miss.
    pub signature_checks: u64,
    /// The KDS round trip paid by this call, ms (0 on a cache hit).
    pub kds_ms: f64,
}

/// A cached stage-one verdict, stamped with the generation it was
/// computed under.
#[derive(Debug, Clone, Copy)]
struct CachedVerdict {
    measurement: Measurement,
    reported_tcb: TcbVersion,
    generation: u64,
}

/// Everything the cacheable stage reads, published as **one** immutable
/// value: golden sets, TCB floor, and the verdict map all travel
/// together, so a concurrent session sees a consistent snapshot and a
/// verdict can never be paired with golden state from a different
/// generation.
#[derive(Debug, Clone, Default)]
struct VerifierState {
    generation: u64,
    golden: BTreeMap<String, GoldenSet>,
    tcb_floor: Option<TcbVersion>,
    verdicts: HashMap<VerdictKey, CachedVerdict>,
}

/// Decorrelates the extension retry jitter stream from other components.
const EXTENSION_JITTER_SEED: u64 = 0x657874; // "ext"

/// The evidence channel of one attested visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BrowseMode {
    /// Evidence fetched from the well-known URL after the handshake.
    WellKnown,
    /// Evidence carried inside the TLS handshake (§7 RA-TLS).
    Ratls,
}

impl BrowseMode {
    fn as_str(self) -> &'static str {
        match self {
            BrowseMode::WellKnown => "well_known",
            BrowseMode::Ratls => "ratls",
        }
    }
}

/// One attested visit before it is shaped into a public outcome: the
/// session, the validated evidence, the page response (absent for
/// monitored-session opens), and the timing breakdown.
struct AttestedVisit {
    session: HttpsSession,
    evidence: EvidenceBundle,
    response: Option<Response>,
    timing: BrowseTiming,
}

impl AttestedVisit {
    /// Shapes the visit into a page outcome. A visit dispatched without a
    /// page path (a monitored-session open) legitimately carries no
    /// response; shaping such a visit into a page outcome is a wiring bug
    /// surfaced as [`RevelioError::Internal`] — never a process abort.
    fn into_outcome(self) -> Result<BrowseOutcome, RevelioError> {
        let response = self.response.ok_or_else(|| {
            RevelioError::Internal(
                "attested visit carries no page response (dispatched without a path)".into(),
            )
        })?;
        Ok(BrowseOutcome {
            response,
            timing: self.timing,
            evidence: self.evidence,
        })
    }
}

/// The uniform result of the internal dispatch every public entry point
/// funnels through.
struct Dispatched {
    verdict: BrowseVerdict,
    visit: Result<AttestedVisit, RevelioError>,
    flight: Option<FlightDump>,
}

/// The web extension.
///
/// All methods take `&self`: registration, revocation, and the verdict
/// cache live behind a generation-stamped [`Snapshot`] cell, so one
/// extension instance is safely shared across concurrent sessions (the
/// swarm benchmark drives a million sessions through one instance).
pub struct WebExtension {
    clock: SimClock,
    kds: KdsHttpClient,
    config: ExtensionConfig,
    client: HttpsClient,
    verifier: Snapshot<VerifierState>,
    telemetry: Telemetry,
    retry: RetryPolicy,
    flight: Option<FlightRecorder>,
}

impl std::fmt::Debug for WebExtension {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebExtension")
            .field("registered_sites", &self.verifier.read(|s| s.golden.len()))
            .finish_non_exhaustive()
    }
}

impl WebExtension {
    /// Creates an extension instance (one per browser profile).
    ///
    /// `BrowseTiming` is derived from recorded spans: pass the world's
    /// [`Telemetry`] to have browse/attestation/TLS spans join its tree, or
    /// `None` for a private per-extension registry.
    #[must_use]
    pub fn new(
        net: SimNet,
        dns: DnsZone,
        kds: KdsHttpClient,
        config: ExtensionConfig,
        entropy_seed: [u8; 32],
        telemetry: Option<Telemetry>,
    ) -> Self {
        let telemetry = telemetry.unwrap_or_else(|| Telemetry::new(net.clock().clone()));
        let client = HttpsClient::new(
            net.clone(),
            dns,
            TlsClientConfig {
                trusted_roots: config.tls_roots.clone(),
                clock: net.clock().clone(),
                telemetry: Some(telemetry.clone()),
            },
            entropy_seed,
        )
        // Outbound requests carry the open browse span's context as a
        // `traceparent` header, stitching the server side into the trace.
        .with_telemetry(telemetry.clone());
        WebExtension {
            clock: net.clock().clone(),
            kds,
            config,
            client,
            verifier: Snapshot::new(Arc::new(VerifierState::default())),
            telemetry,
            retry: Self::default_retry_policy(),
            flight: None,
        }
    }

    /// The retry policy new extensions start with: the crate-wide default
    /// budget on the extension-specific jitter stream.
    #[must_use]
    pub fn default_retry_policy() -> RetryPolicy {
        RetryPolicy::default().with_jitter_seed(EXTENSION_JITTER_SEED)
    }

    /// Replaces the retry policy applied to transient transport failures
    /// during attested browsing.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a flight recorder: the extension records its retries and
    /// browse verdicts, and [`WebExtension::browse_classified`] attaches
    /// a dump to `AttestationFailed` verdicts.
    #[must_use]
    pub fn with_flight_recorder(mut self, flight: FlightRecorder) -> Self {
        self.flight = Some(flight);
        self
    }

    fn flight_record(&self, kind: &str, detail: &str) {
        if let Some(flight) = &self.flight {
            flight.record(kind, detail);
        }
    }

    /// Retries `op` on transient faults; when the budget is exhausted the
    /// final transient error is wrapped as [`RevelioError::TransientNetwork`]
    /// so callers (and [`BrowseVerdict::classify`]) can distinguish "the
    /// network ate it" from "attestation failed".
    fn with_transient_retry<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, RevelioError>,
    ) -> Result<T, RevelioError> {
        retry_with_telemetry(
            &self.retry,
            &self.telemetry,
            "extension",
            RevelioError::is_transient,
            |attempt| {
                if attempt > 0 {
                    self.flight_record("retry", &format!("browse attempt {attempt}"));
                }
                op(attempt)
            },
        )
        .map_err(|e| {
            if e.is_transient() {
                RevelioError::TransientNetwork {
                    component: "extension".into(),
                    attempts: self.retry.max_attempts,
                    last_error: e.to_string(),
                }
            } else {
                e
            }
        })
    }

    /// Classifies a non-success status from the well-known URL. A 5xx is
    /// the server (or an injected fault) saying "try again" — surfaced as
    /// a transient HTTP error so the retry budget applies and
    /// [`BrowseVerdict::classify`] renders "network problem", never "not
    /// a Revelio site". Only a definitive client-side miss (404 and
    /// friends) earns the non-Revelio verdict.
    fn classify_evidence_status(domain: &str, response: &Response) -> Result<(), RevelioError> {
        if response.is_success() {
            return Ok(());
        }
        let err = RevelioError::Http(HttpError::Status(response.status));
        if err.is_transient() {
            return Err(err);
        }
        Err(RevelioError::NotRevelioSite(domain.to_owned()))
    }

    /// Republishes the verifier state through `mutate` with the
    /// generation bumped and every cached verdict dropped — the
    /// invalidation primitive behind registration, revocation, and
    /// TCB-floor changes. Readers holding the previous snapshot still
    /// see a *consistent* (golden, verdicts) pair; they just can no
    /// longer insert into the new generation with a stale stamp.
    fn bump_generation(&self, mutate: impl FnOnce(&mut VerifierState)) {
        self.verifier.update(|current| {
            let mut next = current.clone();
            next.generation += 1;
            next.verdicts.clear();
            mutate(&mut next);
            (Arc::new(next), ())
        });
        self.telemetry
            .counter_add("revelio_extension_verify_cache_invalidations_total", 1);
    }

    /// Registers a domain with its acceptable measurements (manual
    /// registration — the secure path, §5.3.2). Bumps the verdict-cache
    /// generation: concurrent sessions either see the old state or the
    /// new one, never a mixture.
    pub fn register_site(&self, domain: &str, golden: impl IntoIterator<Item = Measurement>) {
        let set = GoldenSet::from_measurements(golden);
        self.bump_generation(|next| {
            next.golden.insert(domain.to_owned(), set);
        });
    }

    /// Whether `domain` is registered for validation.
    #[must_use]
    pub fn is_registered(&self, domain: &str) -> bool {
        self.verifier.read(|s| s.golden.contains_key(domain))
    }

    /// Revokes a golden measurement for a registered domain (image
    /// rollout: prevents rollback, §6.1.4). Bumps the verdict-cache
    /// generation, so **every** cached verdict — not just this
    /// domain's — dies instantly; the next verification re-runs the full
    /// pipeline ("Insecure Despite Proven Updated" is why cached
    /// verdicts must not outlive a revocation by even one session).
    pub fn revoke_measurement(&self, domain: &str, measurement: Measurement) {
        if !self.is_registered(domain) {
            return;
        }
        self.bump_generation(|next| {
            if let Some(set) = next.golden.get_mut(domain) {
                set.revoke(measurement);
            }
        });
        // A revocation event also poisons trust in cached *endorsements*:
        // the "Insecure Despite Proven Updated" scenario revokes VCEKs, so
        // the KDS cache must be re-fetched, not just the verdict cache.
        self.kds.flush_cache();
    }

    /// Sets (or clears) the minimum acceptable reported TCB — the
    /// firmware-downgrade defense, applied in the cacheable stage. Bumps
    /// the verdict-cache generation: verdicts computed under the old
    /// floor are unreachable.
    pub fn set_tcb_floor(&self, floor: Option<TcbVersion>) {
        self.bump_generation(|next| {
            next.tcb_floor = floor;
        });
        // A floor bump means previously fetched VCEK chains may endorse a
        // now-rejected TCB; drop them so the next verify re-fetches.
        self.kds.flush_cache();
    }

    /// The current TCB floor, if any.
    #[must_use]
    pub fn tcb_floor(&self) -> Option<TcbVersion> {
        self.verifier.read(|s| s.tcb_floor)
    }

    /// The current verdict-cache generation (diagnostics / tests).
    #[must_use]
    pub fn verdict_generation(&self) -> u64 {
        self.verifier.read(|s| s.generation)
    }

    /// Number of cached verdicts in the current generation.
    #[must_use]
    pub fn cached_verdicts(&self) -> usize {
        self.verifier.read(|s| s.verdicts.len())
    }

    /// **Stage 1 — cacheable.** Verifies everything about `evidence`
    /// that does not depend on the connection: VCEK chain validity,
    /// report signature, guest policy, TCB floor, and the measurement
    /// against `domain`'s golden set.
    ///
    /// On a cache hit (same [`VerdictKey`], same generation) no KDS
    /// round trip and **no signature verification** happens — only the
    /// golden-set membership re-check against the very snapshot the
    /// verdict is stamped for. On a miss the full pipeline runs with
    /// the four signature equations batched
    /// ([`ReportVerifier::verify_batched`]), and the verdict is
    /// published unless the generation moved while it was being
    /// computed (the insert is skipped, never misfiled).
    ///
    /// # Errors
    ///
    /// Returns the specific [`RevelioError`] for the failing check.
    pub fn verify_evidence(
        &self,
        domain: &str,
        evidence: &EvidenceBundle,
    ) -> Result<EvidenceVerdict, RevelioError> {
        let state = self.verifier.load();
        let golden = state
            .golden
            .get(domain)
            .ok_or_else(|| RevelioError::NotRevelioSite(domain.to_owned()))?;
        let key = VerdictKey::of(evidence);

        if let Some(cached) = state.verdicts.get(&key) {
            if cached.generation == state.generation {
                self.telemetry
                    .counter_add("revelio_extension_verify_cache_hits_total", 1);
                // Defensive: a verdict and its golden set come from the
                // same published value, and every golden mutation bumps
                // the generation — so this lookup cannot disagree with
                // the verdict. It stays because it is cheap and it is
                // the line a future refactor would trip over.
                if !golden.is_trusted(&cached.measurement) {
                    return Err(RevelioError::UnknownMeasurement(
                        cached.measurement.to_hex(),
                    ));
                }
                return Ok(EvidenceVerdict {
                    measurement: cached.measurement,
                    reported_tcb: cached.reported_tcb,
                    generation: cached.generation,
                    cached: true,
                    signature_checks: 0,
                    kds_ms: 0.0,
                });
            }
        }
        self.telemetry
            .counter_add("revelio_extension_verify_cache_misses_total", 1);

        // 1. Fetch the VCEK chain ourselves from the KDS (don't trust the
        //    bundled copy's provenance). The round trip is measured by the
        //    `browse.kds` span — a VCEK-cache hit advances the clock by
        //    nothing, so its duration is exactly 0.
        let (chain, kds_ms) = {
            let span = self.telemetry.span("browse.kds");
            let chain = self.kds.vcek_chain(
                &evidence.report.report.chip_id,
                &evidence.report.report.reported_tcb,
            )?;
            (chain, span.finish_ms())
        };

        // 2. Chain, signature, policy, TCB floor — four signature
        //    equations in one batched check.
        let mut verifier = ReportVerifier::new(self.config.trusted_ark);
        if let Some(floor) = state.tcb_floor {
            verifier = verifier.require_minimum_tcb(floor);
        }
        self.telemetry.counter_add(
            "revelio_extension_signature_verifications_total",
            SIGNATURE_CHECKS_PER_VERIFY,
        );
        verifier
            .verify_batched(&evidence.report, &chain)
            .map_err(|e| RevelioError::EvidenceRejected(e.to_string()))?;

        // 3. Measurement against the user's golden values.
        let measurement = evidence.report.report.measurement;
        if !golden.is_trusted(&measurement) {
            return Err(RevelioError::UnknownMeasurement(measurement.to_hex()));
        }

        self.clock.advance_ms(self.config.validation_ms);

        // 4. Publish the verdict, stamped with the generation observed
        //    *before* the verification work. If a registration or
        //    revocation republished meanwhile, the stamp is stale and the
        //    insert is skipped — the race loses cleanly instead of
        //    resurrecting a pre-revocation verdict into the new
        //    generation.
        let generation = state.generation;
        let reported_tcb = evidence.report.report.reported_tcb;
        self.verifier.update(|current| {
            let mut next = current.clone();
            if current.generation == generation {
                next.verdicts.insert(
                    key,
                    CachedVerdict {
                        measurement,
                        reported_tcb,
                        generation,
                    },
                );
            }
            (Arc::new(next), ())
        });
        Ok(EvidenceVerdict {
            measurement,
            reported_tcb,
            generation,
            cached: false,
            signature_checks: SIGNATURE_CHECKS_PER_VERIFY,
            kds_ms,
        })
    }

    /// **Stage 2 — per-connection, never cached.** Checks that *this*
    /// TLS connection terminates at the key bound inside the evidence's
    /// `REPORT_DATA`. Runs on every verification — cache hits included —
    /// and increments `revelio_extension_tls_binding_checks_total`.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::TlsBindingMismatch`] when the connection
    /// key is not the attested one.
    pub fn verify_connection(
        &self,
        evidence: &EvidenceBundle,
        tls_public_key: &VerifyingKey,
    ) -> Result<(), RevelioError> {
        self.telemetry
            .counter_add("revelio_extension_tls_binding_checks_total", 1);
        self.clock.advance_ms(self.config.connection_validation_ms);
        evidence.check_tls_binding(tls_public_key)
    }

    /// The full staged verification: [`WebExtension::verify_evidence`]
    /// (cacheable) then [`WebExtension::verify_connection`]
    /// (per-connection).
    ///
    /// # Errors
    ///
    /// Returns the specific [`RevelioError`] for whichever stage fails.
    pub fn verify(
        &self,
        domain: &str,
        evidence: &EvidenceBundle,
        tls_public_key: &VerifyingKey,
    ) -> Result<EvidenceVerdict, RevelioError> {
        let verdict = self.verify_evidence(domain, evidence)?;
        self.verify_connection(evidence, tls_public_key)?;
        Ok(verdict)
    }

    fn record_browse(&self, total_ms: f64, attestation_ms: f64) {
        self.telemetry
            .counter_add("revelio_extension_browses_total", 1);
        self.telemetry
            .observe("revelio_extension_browse_ms", total_ms);
        // The histogram is the real metric: concurrent sessions each
        // contribute a sample, and p50/p99 survive interleaving.
        self.telemetry
            .observe("revelio_extension_attestation_latency_ms", attestation_ms);
        // The same-named gauge predates the histogram and is kept for
        // dashboards that scrape it. Documented last-writer-wins: under
        // concurrent sessions it holds whichever browse recorded last,
        // nothing more.
        self.telemetry
            .gauge_set("revelio_extension_attestation_latency_ms", attestation_ms);
    }

    /// Fetches and decodes the evidence bundle from the well-known URL
    /// over an open session.
    fn fetch_evidence(
        &self,
        domain: &str,
        session: &mut HttpsSession,
    ) -> Result<EvidenceBundle, RevelioError> {
        let response = session.send(&Request::get(WELL_KNOWN_ATTESTATION_PATH))?;
        Self::classify_evidence_status(domain, &response)?;
        EvidenceBundle::from_bytes(&response.body)
    }

    /// One attested visit attempt: handshake, evidence (per `mode`),
    /// staged verification, then the page fetch (when `path` is given;
    /// monitored-session opens stop after attestation).
    fn visit_once(
        &self,
        domain: &str,
        path: Option<&str>,
        mode: BrowseMode,
    ) -> Result<AttestedVisit, RevelioError> {
        let root = self.telemetry.span_with(
            "browse",
            &[
                ("domain", domain),
                ("mode", mode.as_str()),
                ("path", path.unwrap_or("(monitored)")),
            ],
        );
        let mut session = self.client.open(domain)?;

        let attest = self.telemetry.span("browse.attestation");
        let evidence = match mode {
            BrowseMode::WellKnown => self.fetch_evidence(domain, &mut session)?,
            BrowseMode::Ratls => {
                let evidence_bytes = session
                    .peer_evidence()
                    .ok_or_else(|| RevelioError::NotRevelioSite(domain.to_owned()))?
                    .to_vec();
                EvidenceBundle::from_bytes(&evidence_bytes)?
            }
        };
        let evidence_verdict = self.verify(domain, &evidence, &session.peer_public_key())?;
        let attestation_ms = attest.finish_ms();

        let response = match path {
            Some(p) => Some(session.send(&Request::get(p))?),
            None => None,
        };
        let total_ms = root.finish_ms();
        if path.is_some() {
            self.record_browse(total_ms, attestation_ms);
        }
        Ok(AttestedVisit {
            session,
            evidence,
            response,
            timing: BrowseTiming {
                total_ms,
                attestation_ms,
                kds_ms: evidence_verdict.kds_ms,
            },
        })
    }

    /// The single retry/verdict loop every attested entry point funnels
    /// through: retry-wrapped visit, verdict classification, flight
    /// recording, and the forensic dump on an affirmative failure.
    fn dispatch(&self, domain: &str, path: Option<&str>, mode: BrowseMode) -> Dispatched {
        let visit = self.with_transient_retry(|_attempt| self.visit_once(domain, path, mode));
        let verdict = match &visit {
            Ok(_) => BrowseVerdict::Attested,
            Err(e) => BrowseVerdict::of_error(e),
        };
        let target = match path {
            Some(p) => format!("{domain}{p}"),
            None => format!("{domain} (monitored)"),
        };
        match &visit {
            Ok(_) => self.flight_record("verdict", &format!("{target}: attested")),
            Err(e) => {
                self.flight_record("verdict", &format!("{target}: {} ({e})", verdict.as_str()));
            }
        }
        let flight = match verdict {
            BrowseVerdict::AttestationFailed => self.flight.as_ref().map(FlightRecorder::dump),
            _ => None,
        };
        Dispatched {
            verdict,
            visit,
            flight,
        }
    }

    /// Accesses `path` on a registered Revelio site with full attestation
    /// (a fresh browser context: handshake, evidence, KDS, validation,
    /// then the page).
    ///
    /// # Errors
    ///
    /// Returns the specific [`RevelioError`] for the failing check — these
    /// are the alerts the extension UI shows the user.
    pub fn browse(&self, domain: &str, path: &str) -> Result<BrowseOutcome, RevelioError> {
        self.dispatch(domain, Some(path), BrowseMode::WellKnown)
            .visit
            .and_then(AttestedVisit::into_outcome)
    }

    /// [`WebExtension::browse`] plus the UI classification: the verdict is
    /// recorded into the extension's flight ring, and an
    /// [`BrowseVerdict::AttestationFailed`] verdict carries the ring's
    /// dump — the forensic timeline behind the red badge.
    #[must_use]
    pub fn browse_classified(&self, domain: &str, path: &str) -> ClassifiedBrowse {
        let dispatched = self.dispatch(domain, Some(path), BrowseMode::WellKnown);
        ClassifiedBrowse {
            verdict: dispatched.verdict,
            result: dispatched.visit.and_then(AttestedVisit::into_outcome),
            flight: dispatched.flight,
        }
    }

    /// RA-TLS access (paper §7's suggested RATLS integration): the
    /// evidence bundle arrives *inside the TLS handshake*, so attestation
    /// needs no separate well-known fetch — one round trip less than
    /// [`WebExtension::browse`]. The handshake signature covers the
    /// evidence, so it cannot be stripped or substituted in flight.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::NotRevelioSite`] when the handshake carried
    /// no evidence, plus every failure mode of [`WebExtension::browse`].
    pub fn browse_ratls(&self, domain: &str, path: &str) -> Result<BrowseOutcome, RevelioError> {
        self.dispatch(domain, Some(path), BrowseMode::Ratls)
            .visit
            .and_then(AttestedVisit::into_outcome)
    }

    /// Accesses a page **without** attestation (what a user without the
    /// extension gets; Table 3's "plain HTTP GET" row).
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::Http`] on transport/TLS failure.
    pub fn browse_unprotected(&self, domain: &str, path: &str) -> Result<Response, RevelioError> {
        let mut session = self.client.open(domain)?;
        Ok(session.send(&Request::get(path))?)
    }

    /// Attests `domain` and returns a monitored session for subsequent
    /// requests (the long-lived browsing case). Transient transport
    /// faults (including 5xx from the well-known URL) are retried within
    /// the budget and surface as [`RevelioError::TransientNetwork`] when
    /// exhausted — never as a "not a Revelio site" verdict.
    ///
    /// # Errors
    ///
    /// As for [`WebExtension::browse`].
    pub fn open_monitored(&self, domain: &str) -> Result<MonitoredSession, RevelioError> {
        let visit = self.dispatch(domain, None, BrowseMode::WellKnown).visit?;
        Ok(MonitoredSession {
            pinned_key: visit.session.peer_public_key(),
            domain: domain.to_owned(),
            evidence: visit.evidence,
            session: visit.session,
            clock: self.clock.clone(),
            connection_validation_ms: self.config.connection_validation_ms,
            telemetry: self.telemetry.clone(),
        })
    }

    /// Opportunistic discovery (§5.3.2's second mode): probe the
    /// well-known URL; `Ok(Some(m))` means the site offers Revelio
    /// evidence with measurement `m` that the user must now vet
    /// out-of-band. `Ok(None)` is reserved for a site that *answered*
    /// and definitively serves no evidence (a 404); an outage — 5xx or
    /// transport fault — is retried and then reported as an error, so a
    /// flaky Revelio site is never misfiled as a non-Revelio one.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::TransientNetwork`] when the retry budget
    /// is exhausted by transport faults or 5xx responses.
    pub fn discover(&self, domain: &str) -> Result<Option<Measurement>, RevelioError> {
        self.with_transient_retry(|_attempt| self.discover_once(domain))
    }

    fn discover_once(&self, domain: &str) -> Result<Option<Measurement>, RevelioError> {
        let mut session = self.client.open(domain)?;
        let response = session.send(&Request::get(WELL_KNOWN_ATTESTATION_PATH))?;
        match Self::classify_evidence_status(domain, &response) {
            Ok(()) => {}
            Err(RevelioError::NotRevelioSite(_)) => return Ok(None),
            Err(transient) => return Err(transient),
        }
        Ok(EvidenceBundle::from_bytes(&response.body)
            .ok()
            .map(|e| e.report.report.measurement))
    }

    /// Reconnects a monitored session after a connection reset — the
    /// defense against the redirect attack (§5.3.2). The pinned key is
    /// the fast path: a connection terminating at a different key fails
    /// immediately. Under [`ReconnectPolicy::ReattestAlways`] (the
    /// default) the full evidence bundle is then re-fetched and re-run
    /// through the staged verification before the session resumes — the
    /// cacheable stage may hit the verdict cache (a revocation or floor
    /// change bumps the generation, so a hit is as strong as a cold
    /// verify), while the TLS binding is always re-checked against the
    /// new connection.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::TlsBindingMismatch`] when the
    /// re-established connection terminates at a different key, and any
    /// re-attestation failure under `ReattestAlways`.
    pub fn reconnect(&self, monitored: &mut MonitoredSession) -> Result<(), RevelioError> {
        self.with_transient_retry(|_attempt| self.reconnect_once(monitored))
    }

    fn reconnect_once(&self, monitored: &mut MonitoredSession) -> Result<(), RevelioError> {
        let mut session = self.client.open(&monitored.domain)?;
        // Fast path: the redirect attack lands here, before any network
        // round trip is spent on evidence.
        if session.peer_public_key() != monitored.pinned_key {
            return Err(RevelioError::TlsBindingMismatch);
        }
        if self.config.reconnect == ReconnectPolicy::ReattestAlways {
            let evidence = self.fetch_evidence(&monitored.domain, &mut session)?;
            self.verify(&monitored.domain, &evidence, &session.peer_public_key())?;
            monitored.evidence = evidence;
        }
        monitored.session = session;
        self.telemetry
            .counter_add("revelio_extension_reconnects_total", 1);
        Ok(())
    }
}

/// Outcome of [`WebExtension::browse_classified`]: the UI verdict, the
/// underlying result, and — only on an affirmative attestation failure —
/// the extension's flight-recorder dump.
#[derive(Debug)]
pub struct ClassifiedBrowse {
    /// The badge the UI shows.
    pub verdict: BrowseVerdict,
    /// The underlying browse result.
    pub result: Result<BrowseOutcome, RevelioError>,
    /// The extension's recent event timeline; populated only when
    /// `verdict` is [`BrowseVerdict::AttestationFailed`] and a recorder
    /// is attached.
    pub flight: Option<FlightDump>,
}

/// An attested session whose every request re-validates the connection.
pub struct MonitoredSession {
    session: HttpsSession,
    pinned_key: VerifyingKey,
    domain: String,
    evidence: EvidenceBundle,
    clock: SimClock,
    connection_validation_ms: f64,
    telemetry: Telemetry,
}

impl std::fmt::Debug for MonitoredSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitoredSession")
            .field("domain", &self.domain)
            .finish_non_exhaustive()
    }
}

impl MonitoredSession {
    /// Performs one monitored GET: query the connection context, verify
    /// the key is still the pinned one, then send.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::TlsBindingMismatch`] if the connection no
    /// longer terminates at the attested key, or transport errors.
    pub fn request(&mut self, path: &str) -> Result<Response, RevelioError> {
        self.send(&Request::get(path))
    }

    /// Performs an arbitrary monitored request (POST bodies etc.) with the
    /// same per-request connection validation.
    ///
    /// # Errors
    ///
    /// As for [`MonitoredSession::request`].
    pub fn send(&mut self, request: &Request) -> Result<Response, RevelioError> {
        self.telemetry
            .counter_add("revelio_extension_monitored_requests_total", 1);
        self.clock.advance_ms(self.connection_validation_ms);
        if self.session.peer_public_key() != self.pinned_key {
            return Err(RevelioError::TlsBindingMismatch);
        }
        Ok(self.session.send(request)?)
    }

    /// The key pinned at attestation time.
    #[must_use]
    pub fn pinned_key(&self) -> VerifyingKey {
        self.pinned_key
    }

    /// The monitored domain.
    #[must_use]
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// The evidence bundle this session was attested with (the input to
    /// re-verification: the swarm benchmark re-runs the staged `verify`
    /// against it on every session).
    #[must_use]
    pub fn evidence(&self) -> &EvidenceBundle {
        &self.evidence
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::demo_app;
    use crate::world::SimWorld;

    /// The dispatch seam every public entry point funnels through: a
    /// visit dispatched without a path (the monitored-session open)
    /// legitimately carries no page response. Shaping such a visit into
    /// a page outcome used to `expect` the response and abort the
    /// process; it must instead surface [`RevelioError::Internal`].
    #[test]
    fn pathless_dispatch_shapes_into_an_internal_error_not_a_panic() {
        let mut world = SimWorld::new(31);
        let fleet = world
            .deploy_fleet("pad.example.org", 1, demo_app())
            .unwrap();
        let extension = world.extension();
        extension.register_site("pad.example.org", vec![fleet.golden_measurement]);

        // The pathless visit itself attests fine…
        let dispatched = extension.dispatch("pad.example.org", None, BrowseMode::WellKnown);
        assert_eq!(dispatched.verdict, BrowseVerdict::Attested);
        let visit = dispatched.visit.expect("monitored open attests");
        assert!(visit.response.is_none(), "no path, no page response");

        // …and the outcome conversion is fallible, not a process abort.
        let err = visit
            .into_outcome()
            .expect_err("a response-less visit cannot become a page outcome");
        assert!(
            matches!(err, RevelioError::Internal(_)),
            "wrong error class: {err:?}"
        );
        assert!(!err.is_transient(), "an internal bug is not a retry");

        // A path-carrying dispatch still shapes into a page outcome.
        let dispatched = extension.dispatch("pad.example.org", Some("/"), BrowseMode::WellKnown);
        let outcome = dispatched
            .visit
            .and_then(AttestedVisit::into_outcome)
            .expect("page visit carries its response");
        assert!(outcome.response.is_success());

        // And the monitored-session public path is unaffected.
        let mut session = extension.open_monitored("pad.example.org").unwrap();
        assert!(session.request("/healthz").unwrap().is_success());
    }
}

//! The Revelio web extension: seamless end-user remote attestation
//! (paper §5.3.2).
//!
//! For every **registered** domain the extension intercepts the first
//! access in a browser context: it fetches the evidence from the
//! well-known URL, queries the AMD KDS for the VCEK chain (cached across
//! sites — the paper's §6.4 optimization), validates the certificate
//! chain, the report signature, the launch measurement against the
//! registered golden values, and finally that the **TLS connection's
//! public key is the key bound inside `REPORT_DATA`** — only then is the
//! page trusted. Afterwards every request keeps being monitored: if the
//! connection is reset and re-established against a different key (the
//! DNS-controlling service provider's redirect attack), the extension
//! flags it even though the browser itself would accept the attacker's
//! valid certificate.

use std::collections::BTreeMap;

use revelio_crypto::ed25519::VerifyingKey;
use revelio_http::client::{HttpsClient, HttpsSession};
use revelio_http::message::{Request, Response};
use revelio_http::{HttpError, WELL_KNOWN_ATTESTATION_PATH};
use revelio_net::clock::SimClock;
use revelio_net::dns::DnsZone;
use revelio_net::net::SimNet;
use revelio_net::retry::RetryPolicy;
use revelio_pki::cert::Certificate;
use revelio_telemetry::{retry_with_telemetry, FlightDump, FlightRecorder, Telemetry};
use revelio_tls::TlsClientConfig;
use sev_snp::measurement::Measurement;
use sev_snp::verify::ReportVerifier;

use crate::evidence::EvidenceBundle;
use crate::kds_http::KdsHttpClient;
use crate::registry::GoldenSet;
use crate::RevelioError;

/// How [`WebExtension::reconnect`] re-establishes trust in a
/// [`MonitoredSession`] after a connection reset (§5.3.2's continuous
/// monitoring, with ROADMAP's open question resolved in favour of
/// re-attestation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReconnectPolicy {
    /// Fast path only: accept the new connection iff it terminates at
    /// the pinned key. Cheap, but blind to a measurement revoked or
    /// evidence gone stale *behind* the same key.
    PinOnly,
    /// Pin check first (the redirect attack fails fast), then re-fetch
    /// and re-validate the **full evidence bundle** before resuming.
    /// The default: a reconnect is a new trust decision, not a resumed
    /// one.
    #[default]
    ReattestAlways,
}

/// Extension policy and modelled client-side costs.
#[derive(Debug, Clone)]
pub struct ExtensionConfig {
    /// Pinned AMD root key.
    pub trusted_ark: VerifyingKey,
    /// Browser root store.
    pub tls_roots: Vec<Certificate>,
    /// Modelled cost of in-extension evidence validation, ms (fitted to
    /// Table 3; JavaScript crypto is slow).
    pub validation_ms: f64,
    /// Modelled cost of querying the browser's connection context per
    /// monitored request, ms (Table 3: ~14 ms).
    pub connection_validation_ms: f64,
    /// What a monitored-session reconnect must re-establish.
    pub reconnect: ReconnectPolicy,
}

/// Timing breakdown of one attested page access (Table 3's raw material).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BrowseTiming {
    /// End-to-end simulated time, ms.
    pub total_ms: f64,
    /// Time spent fetching+validating evidence (includes KDS), ms.
    pub attestation_ms: f64,
    /// Of which: the KDS round trip, ms (0 on a cache hit).
    pub kds_ms: f64,
}

/// A successfully attested page access.
#[derive(Debug)]
pub struct BrowseOutcome {
    /// The application response.
    pub response: Response,
    /// Timing breakdown.
    pub timing: BrowseTiming,
    /// The validated evidence (for UI display: measurement, chip, TCB).
    pub evidence: EvidenceBundle,
}

/// What the extension UI shows the user after a browse attempt. The
/// three-way split matters for trust: a dropped packet and a forged
/// measurement must never render the same badge (§5.3.2's alerts are
/// *attestation* verdicts, not connectivity indicators).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrowseVerdict {
    /// Evidence validated end to end, down to the TLS connection binding.
    Attested,
    /// Transport faults exhausted the retry budget. **No verdict about the
    /// site was reached** — the UI says "network problem, retry", never
    /// "attestation failed".
    TransientNetworkRetry,
    /// Evidence was obtained and affirmatively failed a check (signature,
    /// measurement, TLS binding...).
    AttestationFailed,
    /// The site is reachable but serves no Revelio evidence.
    NotRevelio,
}

impl BrowseVerdict {
    /// Classifies a browse result into the UI verdict.
    #[must_use]
    pub fn classify(result: &Result<BrowseOutcome, RevelioError>) -> Self {
        match result {
            Ok(_) => BrowseVerdict::Attested,
            Err(e) if e.is_transient() => BrowseVerdict::TransientNetworkRetry,
            Err(RevelioError::NotRevelioSite(_)) => BrowseVerdict::NotRevelio,
            Err(_) => BrowseVerdict::AttestationFailed,
        }
    }

    /// Stable label (telemetry, logs, UI badge ids).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BrowseVerdict::Attested => "attested",
            BrowseVerdict::TransientNetworkRetry => "transient_network_retry",
            BrowseVerdict::AttestationFailed => "attestation_failed",
            BrowseVerdict::NotRevelio => "not_revelio",
        }
    }
}

/// Decorrelates the extension retry jitter stream from other components.
const EXTENSION_JITTER_SEED: u64 = 0x657874; // "ext"

/// The web extension.
pub struct WebExtension {
    clock: SimClock,
    kds: KdsHttpClient,
    config: ExtensionConfig,
    client: HttpsClient,
    registered: BTreeMap<String, GoldenSet>,
    telemetry: Telemetry,
    retry: RetryPolicy,
    flight: Option<FlightRecorder>,
}

impl std::fmt::Debug for WebExtension {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebExtension")
            .field("registered_sites", &self.registered.len())
            .finish_non_exhaustive()
    }
}

impl WebExtension {
    /// Creates an extension instance (one per browser profile).
    ///
    /// `BrowseTiming` is derived from recorded spans: pass the world's
    /// [`Telemetry`] to have browse/attestation/TLS spans join its tree, or
    /// `None` for a private per-extension registry.
    #[must_use]
    pub fn new(
        net: SimNet,
        dns: DnsZone,
        kds: KdsHttpClient,
        config: ExtensionConfig,
        entropy_seed: [u8; 32],
        telemetry: Option<Telemetry>,
    ) -> Self {
        let telemetry = telemetry.unwrap_or_else(|| Telemetry::new(net.clock().clone()));
        let client = HttpsClient::new(
            net.clone(),
            dns,
            TlsClientConfig {
                trusted_roots: config.tls_roots.clone(),
                clock: net.clock().clone(),
                telemetry: Some(telemetry.clone()),
            },
            entropy_seed,
        )
        // Outbound requests carry the open browse span's context as a
        // `traceparent` header, stitching the server side into the trace.
        .with_telemetry(telemetry.clone());
        WebExtension {
            clock: net.clock().clone(),
            kds,
            config,
            client,
            registered: BTreeMap::new(),
            telemetry,
            retry: Self::default_retry_policy(),
            flight: None,
        }
    }

    /// The retry policy new extensions start with: the crate-wide default
    /// budget on the extension-specific jitter stream.
    #[must_use]
    pub fn default_retry_policy() -> RetryPolicy {
        RetryPolicy::default().with_jitter_seed(EXTENSION_JITTER_SEED)
    }

    /// Replaces the retry policy applied to transient transport failures
    /// during attested browsing.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a flight recorder: the extension records its retries and
    /// browse verdicts, and [`WebExtension::browse_classified`] attaches
    /// a dump to `AttestationFailed` verdicts.
    #[must_use]
    pub fn with_flight_recorder(mut self, flight: FlightRecorder) -> Self {
        self.flight = Some(flight);
        self
    }

    fn flight_record(&self, kind: &str, detail: &str) {
        if let Some(flight) = &self.flight {
            flight.record(kind, detail);
        }
    }

    /// Retries `op` on transient faults; when the budget is exhausted the
    /// final transient error is wrapped as [`RevelioError::TransientNetwork`]
    /// so callers (and [`BrowseVerdict::classify`]) can distinguish "the
    /// network ate it" from "attestation failed".
    fn with_transient_retry<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, RevelioError>,
    ) -> Result<T, RevelioError> {
        retry_with_telemetry(
            &self.retry,
            &self.telemetry,
            "extension",
            RevelioError::is_transient,
            |attempt| {
                if attempt > 0 {
                    self.flight_record("retry", &format!("browse attempt {attempt}"));
                }
                op(attempt)
            },
        )
        .map_err(|e| {
            if e.is_transient() {
                RevelioError::TransientNetwork {
                    component: "extension".into(),
                    attempts: self.retry.max_attempts,
                    last_error: e.to_string(),
                }
            } else {
                e
            }
        })
    }

    /// Classifies a non-success status from the well-known URL. A 5xx is
    /// the server (or an injected fault) saying "try again" — surfaced as
    /// a transient HTTP error so the retry budget applies and
    /// [`BrowseVerdict::classify`] renders "network problem", never "not
    /// a Revelio site". Only a definitive client-side miss (404 and
    /// friends) earns the non-Revelio verdict.
    fn classify_evidence_status(domain: &str, response: &Response) -> Result<(), RevelioError> {
        if response.is_success() {
            return Ok(());
        }
        let err = RevelioError::Http(HttpError::Status(response.status));
        if err.is_transient() {
            return Err(err);
        }
        Err(RevelioError::NotRevelioSite(domain.to_owned()))
    }

    /// Registers a domain with its acceptable measurements (manual
    /// registration — the secure path, §5.3.2).
    pub fn register_site(&mut self, domain: &str, golden: impl IntoIterator<Item = Measurement>) {
        self.registered
            .insert(domain.to_owned(), GoldenSet::from_measurements(golden));
    }

    /// Whether `domain` is registered for validation.
    #[must_use]
    pub fn is_registered(&self, domain: &str) -> bool {
        self.registered.contains_key(domain)
    }

    /// Revokes a golden measurement for a registered domain (image
    /// rollout: prevents rollback, §6.1.4).
    pub fn revoke_measurement(&mut self, domain: &str, measurement: Measurement) {
        if let Some(set) = self.registered.get_mut(domain) {
            set.revoke(measurement);
        }
    }

    fn validate_evidence(
        &self,
        domain: &str,
        session: &HttpsSession,
        evidence: &EvidenceBundle,
    ) -> Result<f64, RevelioError> {
        let golden = self
            .registered
            .get(domain)
            .ok_or_else(|| RevelioError::NotRevelioSite(domain.to_owned()))?;

        // 1. Fetch the VCEK chain ourselves from the KDS (don't trust the
        //    bundled copy's provenance). The round trip is measured by the
        //    `browse.kds` span — a cache hit advances the clock by nothing,
        //    so its duration is exactly 0.
        let (chain, kds_ms) = {
            let span = self.telemetry.span("browse.kds");
            let chain = self.kds.vcek_chain(
                &evidence.report.report.chip_id,
                &evidence.report.report.reported_tcb,
            )?;
            (chain, span.finish_ms())
        };

        // 2. Chain, signature, policy.
        ReportVerifier::new(self.config.trusted_ark)
            .verify(&evidence.report, &chain)
            .map_err(|e| RevelioError::EvidenceRejected(e.to_string()))?;

        // 3. Measurement against the user's golden values.
        let measurement = evidence.report.report.measurement;
        if !golden.is_trusted(&measurement) {
            return Err(RevelioError::UnknownMeasurement(measurement.to_hex()));
        }

        // 4. The TLS binding: this very connection must terminate at the
        //    attested key.
        evidence.check_tls_binding(&session.peer_public_key())?;

        self.clock.advance_ms(self.config.validation_ms);
        Ok(kds_ms)
    }

    fn record_browse(&self, total_ms: f64, attestation_ms: f64) {
        self.telemetry
            .counter_add("revelio_extension_browses_total", 1);
        self.telemetry
            .observe("revelio_extension_browse_ms", total_ms);
        // The end-user-visible attestation latency of the most recent
        // attested page access — surfaced via the nodes' `/metrics` route
        // because the registry is shared world-wide.
        self.telemetry
            .gauge_set("revelio_extension_attestation_latency_ms", attestation_ms);
    }

    /// Accesses `path` on a registered Revelio site with full attestation
    /// (a fresh browser context: handshake, evidence, KDS, validation,
    /// then the page).
    ///
    /// # Errors
    ///
    /// Returns the specific [`RevelioError`] for the failing check — these
    /// are the alerts the extension UI shows the user.
    pub fn browse(&self, domain: &str, path: &str) -> Result<BrowseOutcome, RevelioError> {
        self.with_transient_retry(|_attempt| self.browse_once(domain, path))
    }

    /// [`WebExtension::browse`] plus the UI classification: the verdict is
    /// recorded into the extension's flight ring, and an
    /// [`BrowseVerdict::AttestationFailed`] verdict carries the ring's
    /// dump — the forensic timeline behind the red badge.
    #[must_use]
    pub fn browse_classified(&self, domain: &str, path: &str) -> ClassifiedBrowse {
        let result = self.browse(domain, path);
        let verdict = BrowseVerdict::classify(&result);
        match &result {
            Ok(_) => self.flight_record("verdict", &format!("{domain}{path}: attested")),
            Err(e) => {
                self.flight_record(
                    "verdict",
                    &format!("{domain}{path}: {} ({e})", verdict.as_str()),
                );
            }
        }
        let flight = match verdict {
            BrowseVerdict::AttestationFailed => self.flight.as_ref().map(FlightRecorder::dump),
            _ => None,
        };
        ClassifiedBrowse {
            verdict,
            result,
            flight,
        }
    }

    fn browse_once(&self, domain: &str, path: &str) -> Result<BrowseOutcome, RevelioError> {
        let root = self.telemetry.span_with(
            "browse",
            &[("domain", domain), ("mode", "well_known"), ("path", path)],
        );
        let mut session = self.client.open(domain)?;

        let attest = self.telemetry.span("browse.attestation");
        let evidence_response = session.send(&Request::get(WELL_KNOWN_ATTESTATION_PATH))?;
        Self::classify_evidence_status(domain, &evidence_response)?;
        let evidence = EvidenceBundle::from_bytes(&evidence_response.body)?;
        let kds_ms = self.validate_evidence(domain, &session, &evidence)?;
        let attestation_ms = attest.finish_ms();

        let response = session.send(&Request::get(path))?;
        let total_ms = root.finish_ms();
        self.record_browse(total_ms, attestation_ms);
        Ok(BrowseOutcome {
            response,
            timing: BrowseTiming {
                total_ms,
                attestation_ms,
                kds_ms,
            },
            evidence,
        })
    }

    /// RA-TLS access (paper §7's suggested RATLS integration): the
    /// evidence bundle arrives *inside the TLS handshake*, so attestation
    /// needs no separate well-known fetch — one round trip less than
    /// [`WebExtension::browse`]. The handshake signature covers the
    /// evidence, so it cannot be stripped or substituted in flight.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::NotRevelioSite`] when the handshake carried
    /// no evidence, plus every failure mode of [`WebExtension::browse`].
    pub fn browse_ratls(&self, domain: &str, path: &str) -> Result<BrowseOutcome, RevelioError> {
        self.with_transient_retry(|_attempt| self.browse_ratls_once(domain, path))
    }

    fn browse_ratls_once(&self, domain: &str, path: &str) -> Result<BrowseOutcome, RevelioError> {
        let root = self.telemetry.span_with(
            "browse",
            &[("domain", domain), ("mode", "ratls"), ("path", path)],
        );
        let mut session = self.client.open(domain)?;

        let attest = self.telemetry.span("browse.attestation");
        let evidence_bytes = session
            .peer_evidence()
            .ok_or_else(|| RevelioError::NotRevelioSite(domain.to_owned()))?
            .to_vec();
        let evidence = EvidenceBundle::from_bytes(&evidence_bytes)?;
        let kds_ms = self.validate_evidence(domain, &session, &evidence)?;
        let attestation_ms = attest.finish_ms();

        let response = session.send(&Request::get(path))?;
        let total_ms = root.finish_ms();
        self.record_browse(total_ms, attestation_ms);
        Ok(BrowseOutcome {
            response,
            timing: BrowseTiming {
                total_ms,
                attestation_ms,
                kds_ms,
            },
            evidence,
        })
    }

    /// Accesses a page **without** attestation (what a user without the
    /// extension gets; Table 3's "plain HTTP GET" row).
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::Http`] on transport/TLS failure.
    pub fn browse_unprotected(&self, domain: &str, path: &str) -> Result<Response, RevelioError> {
        let mut session = self.client.open(domain)?;
        Ok(session.send(&Request::get(path))?)
    }

    /// Attests `domain` and returns a monitored session for subsequent
    /// requests (the long-lived browsing case). Transient transport
    /// faults (including 5xx from the well-known URL) are retried within
    /// the budget and surface as [`RevelioError::TransientNetwork`] when
    /// exhausted — never as a "not a Revelio site" verdict.
    ///
    /// # Errors
    ///
    /// As for [`WebExtension::browse`].
    pub fn open_monitored(&self, domain: &str) -> Result<MonitoredSession, RevelioError> {
        self.with_transient_retry(|_attempt| self.open_monitored_once(domain))
    }

    fn open_monitored_once(&self, domain: &str) -> Result<MonitoredSession, RevelioError> {
        let mut session = self.client.open(domain)?;
        let evidence_response = session.send(&Request::get(WELL_KNOWN_ATTESTATION_PATH))?;
        Self::classify_evidence_status(domain, &evidence_response)?;
        let evidence = EvidenceBundle::from_bytes(&evidence_response.body)?;
        self.validate_evidence(domain, &session, &evidence)?;
        Ok(MonitoredSession {
            pinned_key: session.peer_public_key(),
            domain: domain.to_owned(),
            session,
            clock: self.clock.clone(),
            connection_validation_ms: self.config.connection_validation_ms,
            telemetry: self.telemetry.clone(),
        })
    }

    /// Opportunistic discovery (§5.3.2's second mode): probe the
    /// well-known URL; `Ok(Some(m))` means the site offers Revelio
    /// evidence with measurement `m` that the user must now vet
    /// out-of-band. `Ok(None)` is reserved for a site that *answered*
    /// and definitively serves no evidence (a 404); an outage — 5xx or
    /// transport fault — is retried and then reported as an error, so a
    /// flaky Revelio site is never misfiled as a non-Revelio one.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::TransientNetwork`] when the retry budget
    /// is exhausted by transport faults or 5xx responses.
    pub fn discover(&self, domain: &str) -> Result<Option<Measurement>, RevelioError> {
        self.with_transient_retry(|_attempt| self.discover_once(domain))
    }

    fn discover_once(&self, domain: &str) -> Result<Option<Measurement>, RevelioError> {
        let mut session = self.client.open(domain)?;
        let response = session.send(&Request::get(WELL_KNOWN_ATTESTATION_PATH))?;
        match Self::classify_evidence_status(domain, &response) {
            Ok(()) => {}
            Err(RevelioError::NotRevelioSite(_)) => return Ok(None),
            Err(transient) => return Err(transient),
        }
        Ok(EvidenceBundle::from_bytes(&response.body)
            .ok()
            .map(|e| e.report.report.measurement))
    }

    /// Reconnects a monitored session after a connection reset — the
    /// defense against the redirect attack (§5.3.2). The pinned key is
    /// the fast path: a connection terminating at a different key fails
    /// immediately. Under [`ReconnectPolicy::ReattestAlways`] (the
    /// default) the full evidence bundle is then re-fetched and
    /// re-validated before the session resumes, so a measurement revoked
    /// or evidence gone stale *behind* the pinned key is caught too.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::TlsBindingMismatch`] when the
    /// re-established connection terminates at a different key, and any
    /// re-attestation failure under `ReattestAlways`.
    pub fn reconnect(&self, monitored: &mut MonitoredSession) -> Result<(), RevelioError> {
        self.with_transient_retry(|_attempt| self.reconnect_once(monitored))
    }

    fn reconnect_once(&self, monitored: &mut MonitoredSession) -> Result<(), RevelioError> {
        let mut session = self.client.open(&monitored.domain)?;
        // Fast path: the redirect attack lands here, before any network
        // round trip is spent on evidence.
        if session.peer_public_key() != monitored.pinned_key {
            return Err(RevelioError::TlsBindingMismatch);
        }
        if self.config.reconnect == ReconnectPolicy::ReattestAlways {
            let evidence_response = session.send(&Request::get(WELL_KNOWN_ATTESTATION_PATH))?;
            Self::classify_evidence_status(&monitored.domain, &evidence_response)?;
            let evidence = EvidenceBundle::from_bytes(&evidence_response.body)?;
            self.validate_evidence(&monitored.domain, &session, &evidence)?;
        }
        monitored.session = session;
        self.telemetry
            .counter_add("revelio_extension_reconnects_total", 1);
        Ok(())
    }
}

/// Outcome of [`WebExtension::browse_classified`]: the UI verdict, the
/// underlying result, and — only on an affirmative attestation failure —
/// the extension's flight-recorder dump.
#[derive(Debug)]
pub struct ClassifiedBrowse {
    /// The badge the UI shows.
    pub verdict: BrowseVerdict,
    /// The underlying browse result.
    pub result: Result<BrowseOutcome, RevelioError>,
    /// The extension's recent event timeline; populated only when
    /// `verdict` is [`BrowseVerdict::AttestationFailed`] and a recorder
    /// is attached.
    pub flight: Option<FlightDump>,
}

/// An attested session whose every request re-validates the connection.
pub struct MonitoredSession {
    session: HttpsSession,
    pinned_key: VerifyingKey,
    domain: String,
    clock: SimClock,
    connection_validation_ms: f64,
    telemetry: Telemetry,
}

impl std::fmt::Debug for MonitoredSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitoredSession")
            .field("domain", &self.domain)
            .finish_non_exhaustive()
    }
}

impl MonitoredSession {
    /// Performs one monitored GET: query the connection context, verify
    /// the key is still the pinned one, then send.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::TlsBindingMismatch`] if the connection no
    /// longer terminates at the attested key, or transport errors.
    pub fn request(&mut self, path: &str) -> Result<Response, RevelioError> {
        self.send(&Request::get(path))
    }

    /// Performs an arbitrary monitored request (POST bodies etc.) with the
    /// same per-request connection validation.
    ///
    /// # Errors
    ///
    /// As for [`MonitoredSession::request`].
    pub fn send(&mut self, request: &Request) -> Result<Response, RevelioError> {
        self.telemetry
            .counter_add("revelio_extension_monitored_requests_total", 1);
        self.clock.advance_ms(self.connection_validation_ms);
        if self.session.peer_public_key() != self.pinned_key {
            return Err(RevelioError::TlsBindingMismatch);
        }
        Ok(self.session.send(request)?)
    }

    /// The key pinned at attestation time.
    #[must_use]
    pub fn pinned_key(&self) -> VerifyingKey {
        self.pinned_key
    }

    /// The monitored domain.
    #[must_use]
    pub fn domain(&self) -> &str {
        &self.domain
    }
}

//! A one-call simulation harness: AMD's root of trust, a KDS with
//! paper-calibrated latency, an ACME CA, DNS, the network fabric, and
//! helpers to manufacture platforms and deploy whole Revelio fleets.
//!
//! Everything in `tests/`, `examples/` and the bench harness starts from a
//! [`SimWorld`], so scenario code stays focused on the scenario.

use std::collections::BTreeMap;
use std::sync::Arc;

use revelio_boot::firmware::{expected_measurement, FirmwareKind};
use revelio_boot::loader::{BootOptions, Hypervisor};
use revelio_build::fstree::FsTree;
use revelio_build::image::{build_image, ImageSpec, VmImage};
use revelio_http::router::Router;
use revelio_net::clock::SimClock;
use revelio_net::dns::DnsZone;
use revelio_net::net::{NetConfig, SimNet};
use revelio_net::{FaultDomain, FaultPlan, RetryPolicy};
use revelio_pki::acme::{AcmeCa, AcmePolicy};
use revelio_pki::cert::Certificate;
use revelio_telemetry::{FlightDirectory, Telemetry, DEFAULT_FLIGHT_CAPACITY};
use sev_snp::ids::{ChipId, GuestPolicy, TcbVersion};
use sev_snp::kds::KeyDistributionService;
use sev_snp::measurement::Measurement;
use sev_snp::platform::{AmdRootOfTrust, SnpPlatform};

use crate::extension::{ExtensionConfig, ReconnectPolicy, WebExtension};
use crate::kds_http::{serve_kds_with_telemetry, KdsHttpClient, KDS_ADDRESS};
use crate::node::{NodeConfig, RevelioNode};
use crate::reconcile::{FleetSpec, NodeActuator, Reconciler};
use crate::registry::GoldenSet;
use crate::sp::{ProvisionReport, ServiceProviderNode, SpConfig};
use crate::RevelioError;

/// The identity seed of the `index`-th node of a fleet deployed by
/// [`SimWorld::deploy_fleet`] — derived from the world seed so a
/// redeploy (a rolling upgrade on the same slot) boots with the same
/// identity the SP's allowlist and the fleet's key protocol already
/// know.
fn fleet_identity_seed(world_seed: u64, index: u64) -> [u8; 32] {
    let mut identity_seed = [0u8; 32];
    identity_seed[..8].copy_from_slice(&(world_seed ^ (index + 1)).to_le_bytes());
    identity_seed[8] = 0xd1;
    identity_seed
}

/// Paper-calibrated latency constants (§6.4, Table 2/3).
#[derive(Debug, Clone)]
pub struct WorldTuning {
    /// One-way link latency, µs (Table 3 base RTT 5.2 ms).
    pub link_one_way_us: u64,
    /// One-way latency to the KDS, µs (Table 3: 427.3 ms round trip).
    pub kds_one_way_us: u64,
    /// Provider-internal one-way latency to node bootstrap ports, µs
    /// (Table 2: 17 ms retrieval round trip).
    pub internal_one_way_us: u64,
    /// Modelled app work per page request, ms (Table 3: plain GET
    /// 100.9 ms − 2 RTTs).
    pub page_processing_ms: f64,
    /// SP-side validation cost per node, ms (Table 2: 13 ms).
    pub sp_validation_ms: f64,
    /// CA processing on certificate orders, ms (Table 2: 2996 ms total).
    pub ca_processing_ms: f64,
    /// In-extension validation cost, ms (fitted to Table 3's row 3).
    pub extension_validation_ms: f64,
    /// Per-request connection validation, ms (Table 3: 115.0 − 100.9).
    pub extension_conn_validation_ms: f64,
    /// Per-component retry budgets for transient transport faults.
    pub retry: RetryTuning,
}

impl Default for WorldTuning {
    fn default() -> Self {
        WorldTuning {
            link_one_way_us: 2_600,
            kds_one_way_us: 213_650,
            internal_one_way_us: 8_500,
            page_processing_ms: 90.5,
            sp_validation_ms: 13.0,
            ca_processing_ms: 2_950.0,
            extension_validation_ms: 230.0,
            extension_conn_validation_ms: 14.1,
            retry: RetryTuning::default(),
        }
    }
}

/// Per-component [`RetryPolicy`] budgets, threaded by [`SimWorld`] into
/// each constructor. The [`Default`] reproduces what each component
/// hardcodes on its own (same budgets, same per-component jitter
/// streams), so a default world behaves exactly as before this knob
/// existed; ablations override individual fields to trade retry budget
/// against attestation tail latency under loss.
#[derive(Debug, Clone)]
pub struct RetryTuning {
    /// VCEK-chain fetches from the AMD KDS (the 427 ms public-internet
    /// round trip).
    pub kds: RetryPolicy,
    /// ACME certificate orders against the CA.
    pub acme: RetryPolicy,
    /// SP evidence retrieval and certificate distribution over the
    /// provider-internal network.
    pub sp: RetryPolicy,
    /// Node leader-link key requests during bootstrap.
    pub node: RetryPolicy,
    /// IC boundary-node upstream requests. The boundary applies its own
    /// jitter stream internally, so only the budget fields matter here.
    pub boundary: RetryPolicy,
    /// Web-extension attested browsing (report + page fetches).
    pub extension: RetryPolicy,
}

impl Default for RetryTuning {
    fn default() -> Self {
        RetryTuning {
            kds: KdsHttpClient::default_retry_policy(),
            acme: AcmeCa::default_retry_policy(),
            sp: ServiceProviderNode::default_retry_policy(),
            node: NodeConfig::default_retry_policy(),
            boundary: RetryPolicy::default(),
            extension: WebExtension::default_retry_policy(),
        }
    }
}

/// A deployed, provisioned Revelio fleet.
pub struct DeployedFleet {
    /// The nodes, in deployment order. The leader is named by
    /// `provision.leader_bootstrap` — the first node that survived
    /// provisioning, which is node 0 only when node 0 was reachable.
    /// Quarantined nodes (see `provision.quarantined`) are still listed.
    pub nodes: Vec<RevelioNode>,
    /// The golden launch measurement of the fleet's image.
    pub golden_measurement: Measurement,
    /// The SP node's provisioning report (Table 2 timings).
    pub provision: ProvisionReport,
    /// The domain served.
    pub domain: String,
}

impl std::fmt::Debug for DeployedFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeployedFleet")
            .field("domain", &self.domain)
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

/// The simulation world.
pub struct SimWorld {
    /// The virtual clock.
    pub clock: SimClock,
    /// The world-wide telemetry registry: every component deployed through
    /// this world records its spans and metrics here, so one export covers
    /// the whole attestation pipeline. Driven by [`SimWorld::clock`], which
    /// makes the export deterministic — same seed, same bytes.
    pub telemetry: Telemetry,
    /// Per-node flight recorders keyed by address (bootstrap and public
    /// addresses alias to one ring). Injected faults are mirrored here so
    /// a quarantined node's dump shows what it saw before it went dark.
    pub flight: FlightDirectory,
    /// The network fabric.
    pub net: SimNet,
    /// The DNS zone (service-provider controlled — i.e. untrusted).
    pub dns: DnsZone,
    /// AMD's root of trust.
    pub amd: Arc<AmdRootOfTrust>,
    /// The automated CA.
    pub acme: AcmeCa,
    /// A caching KDS client (share or clone as needed).
    pub kds: KdsHttpClient,
    /// Latency/cost calibration.
    pub tuning: WorldTuning,
    seed: u64,
    next_chip: u64,
    next_host: u8,
    /// Third octet of freshly allocated node addresses; fault domains
    /// target subnets by the `203.0.<subnet>.` prefix.
    subnet: u8,
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorld")
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl SimWorld {
    /// Creates a world with paper-calibrated defaults.
    ///
    /// # Panics
    ///
    /// Panics only if internal setup fails (addresses are fresh).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_tuning(seed, WorldTuning::default())
    }

    /// Creates a world with custom latency calibration.
    ///
    /// # Panics
    ///
    /// Panics only if internal setup fails (addresses are fresh).
    #[must_use]
    pub fn with_tuning(seed: u64, tuning: WorldTuning) -> Self {
        let net_config = NetConfig {
            default_one_way_us: tuning.link_one_way_us,
            ..NetConfig::default()
        }
        // CI exercises the determinism suites under every fabric
        // read path via REVELIO_FABRIC_MODE.
        .with_env_mode();
        Self::with_tuning_and_net(seed, tuning, net_config)
    }

    /// Creates a world with custom latency calibration **and** an
    /// explicit fabric configuration, bypassing `REVELIO_FABRIC_MODE`.
    /// The determinism suites use this to pin each of the three fabric
    /// read paths in turn regardless of the ambient environment.
    ///
    /// # Panics
    ///
    /// Panics only if internal setup fails (addresses are fresh).
    #[must_use]
    pub fn with_tuning_and_net(seed: u64, tuning: WorldTuning, net_config: NetConfig) -> Self {
        let clock = SimClock::new();
        let telemetry = Telemetry::new(clock.clone());
        let net = SimNet::new(clock.clone(), net_config);
        // The KDS is the hottest address in every scenario (each cold
        // attestation dials it): give it a dedicated lock stripe before
        // any traffic flows.
        net.stripe_hot(KDS_ADDRESS)
            .expect("fresh fabric has a free hot stripe for the KDS");
        let flight = FlightDirectory::new(clock.clone(), DEFAULT_FLIGHT_CAPACITY);
        // Mirror every injected fault into the world registry so chaos
        // runs can assert on (and diff) `revelio_net_faults_injected_total`
        // alongside the retry counters — and into the dialed node's flight
        // recorder, so a quarantine dump carries its own fault timeline.
        let fault_telemetry = telemetry.clone();
        let fault_flight = flight.clone();
        net.set_fault_observer(Arc::new(move |address: &str, kind| {
            fault_telemetry.counter_add("revelio_net_faults_injected_total", 1);
            fault_telemetry.counter_add(&format!("revelio_net_faults_{}_total", kind.as_str()), 1);
            fault_flight.record(address, "fault", kind.as_str());
        }));
        let dns = DnsZone::new();
        let mut amd_seed = [0u8; 32];
        amd_seed[..8].copy_from_slice(&seed.to_le_bytes());
        let amd = Arc::new(AmdRootOfTrust::from_seed(amd_seed));
        serve_kds_with_telemetry(
            &net,
            KDS_ADDRESS,
            KeyDistributionService::new(Arc::clone(&amd)).with_telemetry(telemetry.clone()),
            Some(telemetry.clone()),
        )
        .expect("fresh kds address");
        net.peer(KDS_ADDRESS).latency_us(tuning.kds_one_way_us);
        let mut ca_seed = amd_seed;
        ca_seed[8] ^= 0x5c;
        let acme = AcmeCa::new(
            "SimEncrypt",
            ca_seed,
            AcmePolicy::default(),
            clock.clone(),
            dns.clone(),
        )
        .with_telemetry(telemetry.clone())
        .with_retry_policy(tuning.retry.acme.clone());
        let kds = KdsHttpClient::new(net.clone(), KDS_ADDRESS)
            .with_telemetry(telemetry.clone())
            .with_retry_policy(tuning.retry.kds.clone());
        SimWorld {
            clock,
            telemetry,
            flight,
            net,
            dns,
            amd,
            acme,
            kds,
            tuning,
            seed,
            next_chip: 1,
            next_host: 1,
            subnet: 113,
        }
    }

    /// Manufactures a fresh platform (new chip) at the current TCB.
    pub fn new_platform(&mut self) -> SnpPlatform {
        let chip = ChipId::from_seed(self.seed.wrapping_mul(1000) + self.next_chip);
        self.next_chip += 1;
        SnpPlatform::new(Arc::clone(&self.amd), chip, TcbVersion::new(1, 0, 8, 115))
    }

    /// Allocates a public/bootstrap address pair for a new node in the
    /// current subnet (203.0.113. unless [`SimWorld::set_subnet`] moved
    /// it). Host numbers are unique world-wide, across subnets.
    pub fn new_addresses(&mut self) -> (String, String) {
        let host = self.next_host;
        let subnet = self.subnet;
        self.next_host += 1;
        (
            format!("203.0.{subnet}.{host}:443"),
            format!("203.0.{subnet}.{host}:8080"),
        )
    }

    /// Moves subsequent address allocations to `203.0.<subnet>.` — the
    /// rack/availability-zone knob for correlated-failure scenarios.
    pub fn set_subnet(&mut self, subnet: u8) {
        self.subnet = subnet;
    }

    /// The address prefix shared by every node in `subnet`, as a fault
    /// domain's destination prefix.
    #[must_use]
    pub fn subnet_prefix(subnet: u8) -> String {
        format!("203.0.{subnet}.")
    }

    /// The default Revelio image spec for `domain` with the given
    /// application services baked in.
    #[must_use]
    pub fn image_spec(&self, name: &str, services: &[&str]) -> ImageSpec {
        let mut rootfs = FsTree::new();
        rootfs
            .add_file("/usr/sbin/nginx", vec![0x7f; 16_384], 0o755)
            .expect("static path");
        rootfs
            .add_file(
                "/etc/nginx/nginx.conf",
                format!("server {{ listen 443 ssl; server_name {name}; }}").into_bytes(),
                0o644,
            )
            .expect("static path");
        for service in services {
            rootfs
                .add_file(
                    &format!("/usr/bin/{service}"),
                    format!("bin:{service}").into_bytes(),
                    0o755,
                )
                .expect("static path");
        }
        let mut spec = ImageSpec::new(name, rootfs);
        spec.init.services = services.iter().map(|s| (*s).to_string()).collect();
        spec
    }

    /// Builds an image and computes its golden measurement (what an
    /// auditor reproduces from sources, §3.4.7).
    ///
    /// # Errors
    ///
    /// Propagates build failures.
    pub fn build(&self, spec: &ImageSpec) -> Result<(VmImage, Measurement), RevelioError> {
        let image = build_image(spec)?;
        let golden = expected_measurement(
            FirmwareKind::MeasuredDirectBoot,
            &image.kernel,
            &image.initrd,
            &image.cmdline,
        );
        Ok((image, golden))
    }

    /// Boots `image` on a fresh platform and deploys it as a Revelio node
    /// for `domain` with `app` as the application.
    ///
    /// # Errors
    ///
    /// Propagates boot and deployment failures.
    pub fn deploy_node(
        &mut self,
        domain: &str,
        image: &VmImage,
        app: Router,
        identity_seed: [u8; 32],
    ) -> Result<RevelioNode, RevelioError> {
        let platform = self.new_platform();
        let (public_address, bootstrap_address) = self.new_addresses();
        self.net
            .peer(&bootstrap_address)
            .latency_us(self.tuning.internal_one_way_us);
        let vm = Hypervisor::new(FirmwareKind::MeasuredDirectBoot).boot(
            &platform,
            image,
            GuestPolicy::default(),
            BootOptions {
                identity_seed,
                telemetry: Some(self.telemetry.clone()),
                ..BootOptions::default()
            },
        )?;
        // One forensic ring per node, reachable under both addresses: the
        // SP quarantines by bootstrap address, faults are injected by
        // whichever address was dialed.
        let recorder = self.flight.register(&bootstrap_address);
        self.flight.alias(&bootstrap_address, &public_address);
        RevelioNode::deploy_with_observability(
            self.net.clone(),
            self.kds.clone(),
            vm,
            NodeConfig {
                domain: domain.to_owned(),
                public_address,
                bootstrap_address,
                organization: "Example Org".to_owned(),
                country: "CH".to_owned(),
                page_processing_ms: self.tuning.page_processing_ms,
                trusted_ark: self.amd.ark_public_key(),
                trusted_tls_roots: vec![self.acme.root_certificate()],
                retry: self.tuning.retry.node.clone(),
            },
            app,
            Some(self.telemetry.clone()),
            Some(recorder),
        )
    }

    /// An SP node configured for `golden` and `allowlist`.
    #[must_use]
    pub fn sp_node(
        &self,
        golden: GoldenSet,
        allowlist: Vec<(ChipId, String)>,
    ) -> ServiceProviderNode {
        self.sp_node_for_domain("pad.example.org", golden, allowlist)
    }

    /// An SP node whose ACME orders are pinned to `domain`.
    #[must_use]
    pub fn sp_node_for_domain(
        &self,
        domain: &str,
        golden: GoldenSet,
        allowlist: Vec<(ChipId, String)>,
    ) -> ServiceProviderNode {
        ServiceProviderNode::new(
            self.net.clone(),
            self.kds.clone(),
            self.acme.clone(),
            SpConfig {
                trusted_ark: self.amd.ark_public_key(),
                expected_domain: domain.to_owned(),
                golden,
                allowlist,
                validation_ms: self.tuning.sp_validation_ms,
                ca_processing_ms: self.tuning.ca_processing_ms,
            },
        )
        .with_telemetry(self.telemetry.clone())
        .with_retry_policy(self.tuning.retry.sp.clone())
        .with_flight_directory(self.flight.clone())
    }

    /// Builds, boots, deploys and provisions an `n`-node fleet serving
    /// `domain` with `app` in the current subnet, pointing DNS at the
    /// provisioning leader.
    ///
    /// # Errors
    ///
    /// Propagates any build/boot/provisioning failure.
    pub fn deploy_fleet(
        &mut self,
        domain: &str,
        n: usize,
        app: Router,
    ) -> Result<DeployedFleet, RevelioError> {
        let subnet = self.subnet;
        self.deploy_fleet_in_subnets(domain, &[(subnet, n)], app)
    }

    /// Like [`SimWorld::deploy_fleet`], but spreads the fleet over
    /// addressing subnets: `groups` lists `(subnet, node count)` pairs
    /// deployed in order, so a correlated-failure domain (a partitioned
    /// rack) can target a contiguous slice of the fleet via
    /// [`SimWorld::subnet_prefix`]. DNS points at the provisioning
    /// leader — the first node that survived validation — not blindly at
    /// node 0, so a fleet whose leading subnet is dark still resolves to
    /// a certified node.
    ///
    /// # Errors
    ///
    /// Propagates any build/boot/provisioning failure.
    ///
    /// # Panics
    ///
    /// Panics when `groups` adds up to zero nodes.
    pub fn deploy_fleet_in_subnets(
        &mut self,
        domain: &str,
        groups: &[(u8, usize)],
        app: Router,
    ) -> Result<DeployedFleet, RevelioError> {
        let total: usize = groups.iter().map(|(_, count)| count).sum();
        let fleet_size = total.to_string();
        let _fleet_span = self.telemetry.span_with(
            "world.deploy_fleet",
            &[("domain", domain), ("nodes", &fleet_size)],
        );
        let spec = self.image_spec(domain, &["web-service"]);
        let mut nodes = Vec::with_capacity(total);
        let mut golden_measurement = None;
        let home_subnet = self.subnet;
        // Deploying a node is a burst of fabric mutations (binds, latency
        // shaping); a batch scope coalesces the whole fleet into one view
        // republish instead of one per mutation. Dials issued while the
        // batch is open (node boot traffic) take the locked path and see
        // every prior write, so behaviour is unchanged.
        let net = self.net.clone();
        let deployed = net.batch(|_| {
            for (subnet, count) in groups {
                self.subnet = *subnet;
                for _ in 0..*count {
                    // Identical spec ⇒ identical image ⇒ identical
                    // measurement; rebuilt per node so every VM gets its
                    // own disk.
                    let (image, golden) = self.build(&spec)?;
                    golden_measurement.get_or_insert(golden);
                    let i = nodes.len() as u64;
                    let identity_seed = fleet_identity_seed(self.seed, i);
                    nodes.push(self.deploy_node(domain, &image, app.clone(), identity_seed)?);
                }
            }
            Ok::<(), RevelioError>(())
        });
        self.subnet = home_subnet;
        deployed?;
        let golden_measurement = golden_measurement.expect("fleets have at least one node");

        let allowlist = nodes
            .iter()
            .map(|node| {
                (
                    node.vm().guest().chip_id(),
                    node.bootstrap_address().to_owned(),
                )
            })
            .collect();
        let sp = self.sp_node_for_domain(
            domain,
            GoldenSet::from_measurements([golden_measurement]),
            allowlist,
        );
        let bootstraps: Vec<String> = nodes
            .iter()
            .map(|n| n.bootstrap_address().to_owned())
            .collect();
        let provision = sp.provision(&bootstraps)?;

        let leader = nodes
            .iter()
            .find(|n| n.bootstrap_address() == provision.leader_bootstrap)
            .expect("the elected leader is one of the fleet's nodes");
        self.dns.set_address(domain, leader.public_address());
        Ok(DeployedFleet {
            nodes,
            golden_measurement,
            provision,
            domain: domain.to_owned(),
        })
    }

    /// Seeds the fabric's per-address fault PRNG streams. Equal seeds (and
    /// equal scenarios) give byte-identical runs; call before the faulted
    /// traffic starts.
    pub fn set_fault_seed(&self, seed: u64) {
        self.net.set_fault_seed(seed);
    }

    /// Applies `plan` to every future dial of `address` (the *dialed*
    /// address — redirects do not move a victim's plan to the attacker).
    pub fn set_fault_plan(&self, address: &str, plan: FaultPlan) {
        let _ = self.net.peer(address).fault_plan(plan);
    }

    /// Removes the fault plans for `address` (e.g. "the outage clears") —
    /// address-wide and per-route alike.
    pub fn clear_fault_plan(&self, address: &str) {
        let _ = self.net.peer(address).clear_fault_plan();
    }

    /// Installs (or replaces, by name) a correlated-failure domain on
    /// the fabric: a whole-subnet partition, an asymmetric link, or a
    /// lossy domain, optionally with a scheduled heal.
    pub fn install_fault_domain(&self, domain: FaultDomain) {
        self.net.install_fault_domain(domain);
    }

    /// Removes one fault domain by name ("the rack heals early").
    pub fn clear_fault_domain(&self, name: &str) {
        self.net.clear_fault_domain(name);
    }

    /// Removes every installed fault domain.
    pub fn clear_fault_domains(&self) {
        self.net.clear_fault_domains();
    }

    /// A web-extension instance for an end-user in this world.
    #[must_use]
    pub fn extension(&self) -> WebExtension {
        let mut entropy = [0u8; 32];
        entropy[..8].copy_from_slice(&self.seed.to_le_bytes());
        entropy[31] = 0xee;
        // A browser's VCEK cache is its own — it must not share warm
        // entries with the provider's infrastructure.
        WebExtension::new(
            self.net.clone(),
            self.dns.clone(),
            KdsHttpClient::new(self.net.clone(), KDS_ADDRESS)
                .with_telemetry(self.telemetry.clone()),
            ExtensionConfig {
                trusted_ark: self.amd.ark_public_key(),
                tls_roots: vec![self.acme.root_certificate()],
                validation_ms: self.tuning.extension_validation_ms,
                connection_validation_ms: self.tuning.extension_conn_validation_ms,
                reconnect: ReconnectPolicy::default(),
            },
            entropy,
            Some(self.telemetry.clone()),
        )
        .with_retry_policy(self.tuning.retry.extension.clone())
        .with_flight_recorder(self.flight.register("extension"))
    }

    /// The browser root-store certificate list.
    #[must_use]
    pub fn tls_roots(&self) -> Vec<Certificate> {
        vec![self.acme.root_certificate()]
    }

    /// An SP node configured exactly as the one that provisioned
    /// `fleet`: same domain, the fleet's golden measurement, and the
    /// chip↔bootstrap allowlist of its nodes. The reconciler starts
    /// from here.
    #[must_use]
    pub fn fleet_sp(&self, fleet: &DeployedFleet) -> ServiceProviderNode {
        let allowlist = fleet
            .nodes
            .iter()
            .map(|node| {
                (
                    node.vm().guest().chip_id(),
                    node.bootstrap_address().to_owned(),
                )
            })
            .collect();
        self.sp_node_for_domain(
            &fleet.domain,
            GoldenSet::from_measurements([fleet.golden_measurement]),
            allowlist,
        )
    }

    /// A [`FleetUpgrader`] over `fleet`: the reconciler's actuator,
    /// able to tear any fleet slot down and redeploy it — same chip,
    /// same addresses, same identity seed — from `target` (the
    /// operator's current build of the next image).
    #[must_use]
    pub fn fleet_upgrader(
        &self,
        fleet: &DeployedFleet,
        app: Router,
        target: ImageSpec,
    ) -> FleetUpgrader {
        let slots = fleet
            .nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                (
                    node.bootstrap_address().to_owned(),
                    UpgradeSlot {
                        public: node.public_address().to_owned(),
                        chip: node.vm().guest().chip_id(),
                        identity_seed: fleet_identity_seed(self.seed, i as u64),
                    },
                )
            })
            .collect();
        FleetUpgrader {
            net: self.net.clone(),
            kds: self.kds.clone(),
            amd: Arc::clone(&self.amd),
            telemetry: self.telemetry.clone(),
            flight: self.flight.clone(),
            tls_roots: self.tls_roots(),
            domain: fleet.domain.clone(),
            app,
            page_processing_ms: self.tuning.page_processing_ms,
            node_retry: self.tuning.retry.node.clone(),
            target,
            drift: BTreeMap::new(),
            slots,
            deployed: BTreeMap::new(),
        }
    }

    /// A fully wired [`Reconciler`] over `fleet`: the fleet's SP as
    /// observer, `upgrader` as actuator, the world's telemetry and DNS
    /// attached.
    #[must_use]
    pub fn reconciler(
        &self,
        fleet: &DeployedFleet,
        spec: FleetSpec,
        upgrader: FleetUpgrader,
    ) -> Reconciler<FleetUpgrader> {
        let bootstraps: Vec<String> = fleet
            .nodes
            .iter()
            .map(|n| n.bootstrap_address().to_owned())
            .collect();
        let public_addresses: BTreeMap<String, String> = fleet
            .nodes
            .iter()
            .map(|n| {
                (
                    n.bootstrap_address().to_owned(),
                    n.public_address().to_owned(),
                )
            })
            .collect();
        Reconciler::new(
            self.fleet_sp(fleet),
            self.net.clone(),
            spec,
            upgrader,
            bootstraps,
            &fleet.provision,
            fleet.golden_measurement,
        )
        .with_telemetry(self.telemetry.clone())
        .with_dns(self.dns.clone(), public_addresses)
    }
}

struct UpgradeSlot {
    public: String,
    chip: ChipId,
    identity_seed: [u8; 32],
}

/// The reconciler's actuator over a deployed fleet: redeploys a node in
/// place — same chip, same public/bootstrap addresses, same identity
/// seed — booted from the current build of the target image spec. The
/// measured launch of the redeployed node is whatever that build
/// *actually* produces; [`FleetUpgrader::inject_drift`] models a
/// compromised or broken build pipeline emitting a different image for
/// one slot, which the reconciler's attestation wave must catch.
pub struct FleetUpgrader {
    net: SimNet,
    kds: KdsHttpClient,
    amd: Arc<AmdRootOfTrust>,
    telemetry: Telemetry,
    flight: FlightDirectory,
    tls_roots: Vec<Certificate>,
    domain: String,
    app: Router,
    page_processing_ms: f64,
    node_retry: RetryPolicy,
    target: ImageSpec,
    drift: BTreeMap<String, ImageSpec>,
    slots: BTreeMap<String, UpgradeSlot>,
    deployed: BTreeMap<String, RevelioNode>,
}

impl std::fmt::Debug for FleetUpgrader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetUpgrader")
            .field("domain", &self.domain)
            .field("slots", &self.slots.len())
            .finish_non_exhaustive()
    }
}

impl FleetUpgrader {
    /// Makes the build pipeline emit `spec` instead of the target when
    /// upgrading `bootstrap` — seeded measurement drift.
    pub fn inject_drift(&mut self, bootstrap: &str, spec: ImageSpec) {
        self.drift.insert(bootstrap.to_owned(), spec);
    }

    /// Heals the build pipeline for `bootstrap` (drift fixed upstream).
    pub fn clear_drift(&mut self, bootstrap: &str) {
        self.drift.remove(bootstrap);
    }

    /// The node handle most recently deployed for `bootstrap` by an
    /// upgrade (the original [`DeployedFleet`] handle goes stale once
    /// its slot is redeployed).
    #[must_use]
    pub fn node(&self, bootstrap: &str) -> Option<&RevelioNode> {
        self.deployed.get(bootstrap)
    }
}

impl NodeActuator for FleetUpgrader {
    fn upgrade(&mut self, bootstrap: &str) -> Result<(), RevelioError> {
        let slot = self.slots.get(bootstrap).ok_or_else(|| {
            RevelioError::Internal(format!("upgrade target {bootstrap} is not a fleet slot"))
        })?;
        let spec = self.drift.get(bootstrap).unwrap_or(&self.target);
        let image = build_image(spec)?;
        // Release both surfaces before the redeploy: the bootstrap port
        // rebinds below, the public port only once a certificate is
        // (re-)installed.
        self.net.unbind(bootstrap);
        self.net.unbind(&slot.public);
        let platform = SnpPlatform::new(
            Arc::clone(&self.amd),
            slot.chip,
            TcbVersion::new(1, 0, 8, 115),
        );
        let vm = Hypervisor::new(FirmwareKind::MeasuredDirectBoot).boot(
            &platform,
            &image,
            GuestPolicy::default(),
            BootOptions {
                identity_seed: slot.identity_seed,
                telemetry: Some(self.telemetry.clone()),
                ..BootOptions::default()
            },
        )?;
        let recorder = self.flight.register(bootstrap);
        recorder.record("request", "upgraded: redeployed from current target build");
        let node = RevelioNode::deploy_with_observability(
            self.net.clone(),
            self.kds.clone(),
            vm,
            NodeConfig {
                domain: self.domain.clone(),
                public_address: slot.public.clone(),
                bootstrap_address: bootstrap.to_owned(),
                organization: "Example Org".to_owned(),
                country: "CH".to_owned(),
                page_processing_ms: self.page_processing_ms,
                trusted_ark: self.amd.ark_public_key(),
                trusted_tls_roots: self.tls_roots.clone(),
                retry: self.node_retry.clone(),
            },
            self.app.clone(),
            Some(self.telemetry.clone()),
            Some(recorder),
        )?;
        self.deployed.insert(bootstrap.to_owned(), node);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::demo_app;
    use crate::RevelioError;

    #[test]
    fn fleet_nodes_share_one_tls_identity() {
        let mut world = SimWorld::new(1);
        let fleet = world
            .deploy_fleet("pad.example.org", 3, demo_app())
            .unwrap();
        let leader_key = fleet.nodes[0].tls_public_key().unwrap();
        for node in &fleet.nodes {
            assert!(node.is_serving());
            assert_eq!(node.tls_public_key(), Some(leader_key));
            assert_eq!(node.measurement(), fleet.golden_measurement);
        }
        // Identities remain distinct; only the TLS key is shared.
        assert_ne!(
            fleet.nodes[1].identity_public_key(),
            fleet.nodes[2].identity_public_key()
        );
        assert_eq!(leader_key, fleet.nodes[0].identity_public_key());
    }

    #[test]
    fn every_node_serves_https_with_the_shared_cert() {
        let mut world = SimWorld::new(2);
        let fleet = world
            .deploy_fleet("pad.example.org", 3, demo_app())
            .unwrap();
        let extension = world.extension();
        extension.register_site("pad.example.org", vec![fleet.golden_measurement]);
        for node in &fleet.nodes {
            // Point DNS at each node in turn; all must attest and serve.
            world
                .dns
                .set_address("pad.example.org", node.public_address());
            let outcome = extension.browse("pad.example.org", "/healthz").unwrap();
            assert_eq!(outcome.response.body, b"ok");
        }
    }

    #[test]
    fn table2_timings_have_paper_shape() {
        let mut world = SimWorld::new(3);
        let fleet = world
            .deploy_fleet("pad.example.org", 4, demo_app())
            .unwrap();
        let t = fleet.provision.timings;
        // Generation dominates everything else by orders of magnitude.
        assert!(t.certificate_generation_ms > 2_000.0, "{t:?}");
        assert!(
            t.certificate_generation_ms > 50.0 * t.evidence_retrieval_ms,
            "{t:?}"
        );
        assert!(
            t.evidence_retrieval_ms > t.certificate_distribution_ms * 0.5,
            "{t:?}"
        );
        assert!(t.evidence_validation_ms > 0.0);
    }

    #[test]
    fn table3_attestation_dominated_by_kds_then_cached() {
        let mut world = SimWorld::new(4);
        let fleet = world
            .deploy_fleet("pad.example.org", 1, demo_app())
            .unwrap();
        let extension = world.extension();
        extension.register_site("pad.example.org", vec![fleet.golden_measurement]);

        let cold = extension.browse("pad.example.org", "/").unwrap();
        assert!(cold.timing.kds_ms > 400.0, "{:?}", cold.timing);
        assert!(cold.timing.total_ms > 700.0, "{:?}", cold.timing);

        // Second visit: warm VCEK cache.
        let warm = extension.browse("pad.example.org", "/").unwrap();
        assert_eq!(warm.timing.kds_ms, 0.0);
        assert!(warm.timing.total_ms < cold.timing.total_ms - 400.0);
    }

    #[test]
    fn unknown_measurement_rejected() {
        let mut world = SimWorld::new(5);
        let _fleet = world
            .deploy_fleet("pad.example.org", 1, demo_app())
            .unwrap();
        let extension = world.extension();
        // User registered the site with the WRONG golden value.
        extension.register_site(
            "pad.example.org",
            vec![Measurement::of_launch_context(b"some other image")],
        );
        assert!(matches!(
            extension.browse("pad.example.org", "/"),
            Err(RevelioError::UnknownMeasurement(_))
        ));
    }

    #[test]
    fn revoked_measurement_rejected_rollback_protection() {
        let mut world = SimWorld::new(6);
        let fleet = world
            .deploy_fleet("pad.example.org", 1, demo_app())
            .unwrap();
        let extension = world.extension();
        extension.register_site("pad.example.org", vec![fleet.golden_measurement]);
        extension.browse("pad.example.org", "/").unwrap();
        // The image is found vulnerable; the registry revokes it.
        extension.revoke_measurement("pad.example.org", fleet.golden_measurement);
        assert!(matches!(
            extension.browse("pad.example.org", "/"),
            Err(RevelioError::UnknownMeasurement(_))
        ));
    }

    #[test]
    fn impostor_node_rejected_by_sp() {
        let mut world = SimWorld::new(7);
        let spec = world.image_spec("pad.example.org", &["web-service"]);
        let (image, golden) = world.build(&spec).unwrap();
        let node = world
            .deploy_node("pad.example.org", &image, demo_app(), [1; 32])
            .unwrap();
        // SP's allowlist names a DIFFERENT chip for this address.
        let sp = world.sp_node(
            GoldenSet::from_measurements([golden]),
            vec![(
                ChipId::from_seed(424_242),
                node.bootstrap_address().to_owned(),
            )],
        );
        let err = sp
            .provision(&[node.bootstrap_address().to_owned()])
            .unwrap_err();
        assert!(matches!(err, RevelioError::NodeRejected { .. }), "{err}");
        assert!(err.to_string().contains("allowlist"));
    }

    #[test]
    fn tampered_image_rejected_by_sp() {
        let mut world = SimWorld::new(8);
        let spec = world.image_spec("pad.example.org", &["web-service"]);
        let (_, golden) = world.build(&spec).unwrap();
        // Service provider sneaks a backdoor into the deployed image.
        let mut evil_spec = world.image_spec("pad.example.org", &["web-service", "backdoor"]);
        evil_spec.name = "evil".into();
        let (evil_image, _) = world.build(&evil_spec).unwrap();
        let node = world
            .deploy_node("pad.example.org", &evil_image, demo_app(), [1; 32])
            .unwrap();
        let sp = world.sp_node(
            GoldenSet::from_measurements([golden]),
            vec![(
                node.vm().guest().chip_id(),
                node.bootstrap_address().to_owned(),
            )],
        );
        let err = sp
            .provision(&[node.bootstrap_address().to_owned()])
            .unwrap_err();
        assert!(err.to_string().contains("not golden"), "{err}");
    }

    #[test]
    fn redirect_attack_caught_on_reconnect() {
        let mut world = SimWorld::new(9);
        let fleet = world
            .deploy_fleet("pad.example.org", 1, demo_app())
            .unwrap();
        let extension = world.extension();
        extension.register_site("pad.example.org", vec![fleet.golden_measurement]);
        let mut session = extension.open_monitored("pad.example.org").unwrap();
        session.request("/").unwrap();

        // The malicious provider stands up a NON-confidential clone with a
        // fresh, CA-valid certificate (they control DNS) and redirects.
        let attacker_key = revelio_crypto::ed25519::SigningKey::from_seed(&[66; 32]);
        let csr = revelio_pki::cert::CertificateSigningRequest::new(
            "pad.example.org",
            &attacker_key,
            "Evil Org",
            "XX",
        );
        let chain = world.acme.order_certificate(&csr).unwrap();
        revelio_http::server::serve_https(
            &world.net,
            "10.66.6.6:443",
            revelio_tls::TlsServerConfig::new(chain, attacker_key, [6; 32]),
            demo_app(),
        )
        .unwrap();
        world
            .net
            .peer(fleet.nodes[0].public_address())
            .redirect_to("10.66.6.6:443");

        // The browser alone would accept the new valid certificate; the
        // extension's reconnect pinning refuses.
        assert_eq!(
            extension.reconnect(&mut session).unwrap_err(),
            RevelioError::TlsBindingMismatch
        );
    }

    #[test]
    fn non_revelio_site_discovery_and_browse() {
        let world = SimWorld::new(10);
        // A plain HTTPS site without Revelio.
        let key = revelio_crypto::ed25519::SigningKey::from_seed(&[5; 32]);
        let csr = revelio_pki::cert::CertificateSigningRequest::new(
            "plain.example.org",
            &key,
            "Org",
            "CH",
        );
        let chain = world.acme.order_certificate(&csr).unwrap();
        revelio_http::server::serve_https(
            &world.net,
            "10.0.9.9:443",
            revelio_tls::TlsServerConfig::new(chain, key, [1; 32]),
            demo_app(),
        )
        .unwrap();
        world.dns.set_address("plain.example.org", "10.0.9.9:443");

        let extension = world.extension();
        assert_eq!(extension.discover("plain.example.org").unwrap(), None);
        // Browsing it attested fails; unprotected works.
        let ext2 = world.extension();
        ext2.register_site("plain.example.org", vec![]);
        assert!(matches!(
            ext2.browse("plain.example.org", "/"),
            Err(RevelioError::NotRevelioSite(_))
        ));
        assert!(extension
            .browse_unprotected("plain.example.org", "/")
            .unwrap()
            .is_success());
    }

    #[test]
    fn discovery_finds_revelio_sites() {
        let mut world = SimWorld::new(11);
        let fleet = world
            .deploy_fleet("pad.example.org", 1, demo_app())
            .unwrap();
        let extension = world.extension();
        assert_eq!(
            extension.discover("pad.example.org").unwrap(),
            Some(fleet.golden_measurement)
        );
    }

    #[test]
    fn ssh_port_refuses_connections() {
        let mut world = SimWorld::new(12);
        let fleet = world
            .deploy_fleet("pad.example.org", 1, demo_app())
            .unwrap();
        let ssh_addr = fleet.nodes[0].public_address().replace(":443", ":22");
        assert!(matches!(
            world.net.dial(&ssh_addr),
            Err(revelio_net::NetError::ConnectionRefused(_))
        ));
    }

    #[test]
    fn monitored_requests_add_connection_validation_cost() {
        let mut world = SimWorld::new(13);
        let fleet = world
            .deploy_fleet("pad.example.org", 1, demo_app())
            .unwrap();
        let extension = world.extension();
        extension.register_site("pad.example.org", vec![fleet.golden_measurement]);
        let mut session = extension.open_monitored("pad.example.org").unwrap();
        let (_, monitored_ms) = world.clock.time_ms(|| session.request("/").unwrap());
        let plain_ms = {
            let mut s = extension.open_monitored("pad.example.org").unwrap();
            // Strip monitoring by measuring an unmonitored request path.
            let t0 = world.clock.now_ms();
            let _ = s.request("/").unwrap();
            world.clock.now_ms() - t0
        };
        // Both include the validation cost; check the absolute shape
        // instead: a monitored request costs base + ~14 ms.
        assert!(monitored_ms > world.tuning.page_processing_ms);
        assert!((monitored_ms - plain_ms).abs() < 1.0);
    }

    #[test]
    fn ratls_browse_attests_in_the_handshake() {
        let mut world = SimWorld::new(14);
        let fleet = world
            .deploy_fleet("pad.example.org", 1, demo_app())
            .unwrap();
        let extension = world.extension();
        extension.register_site("pad.example.org", vec![fleet.golden_measurement]);

        let via_fetch = extension.browse("pad.example.org", "/").unwrap();
        let via_ratls = extension.browse_ratls("pad.example.org", "/").unwrap();
        assert!(via_ratls.response.is_success());
        assert_eq!(via_ratls.evidence, via_fetch.evidence);
        // RA-TLS saves the separate evidence round trip; compare against a
        // warm-cache well-known fetch so both runs skip the KDS.
        let via_fetch_warm = extension.browse("pad.example.org", "/").unwrap();
        assert!(
            via_ratls.timing.total_ms < via_fetch_warm.timing.total_ms,
            "ratls {:?} vs fetch {:?}",
            via_ratls.timing,
            via_fetch_warm.timing
        );
    }

    #[test]
    fn ratls_rejects_wrong_measurement_and_plain_sites() {
        let mut world = SimWorld::new(15);
        let _fleet = world
            .deploy_fleet("pad.example.org", 1, demo_app())
            .unwrap();
        let extension = world.extension();
        extension.register_site(
            "pad.example.org",
            vec![Measurement::of_launch_context(b"other image")],
        );
        assert!(matches!(
            extension.browse_ratls("pad.example.org", "/"),
            Err(RevelioError::UnknownMeasurement(_))
        ));

        // A plain HTTPS site sends no handshake evidence.
        let key = revelio_crypto::ed25519::SigningKey::from_seed(&[5; 32]);
        let csr = revelio_pki::cert::CertificateSigningRequest::new(
            "plain.example.org",
            &key,
            "Org",
            "CH",
        );
        let chain = world.acme.order_certificate(&csr).unwrap();
        revelio_http::server::serve_https(
            &world.net,
            "10.0.8.8:443",
            revelio_tls::TlsServerConfig::new(chain, key, [1; 32]),
            demo_app(),
        )
        .unwrap();
        world.dns.set_address("plain.example.org", "10.0.8.8:443");
        let ext2 = world.extension();
        ext2.register_site("plain.example.org", vec![]);
        assert!(matches!(
            ext2.browse_ratls("plain.example.org", "/"),
            Err(RevelioError::NotRevelioSite(_))
        ));
    }

    #[test]
    fn handshake_interference_fails_closed_for_ratls() {
        // A middlebox that rewrites handshake flights (e.g. to strip the
        // evidence) breaks the signed transcript: no session forms.
        let mut world = SimWorld::new(16);
        let fleet = world
            .deploy_fleet("pad.example.org", 1, demo_app())
            .unwrap();
        let victim = fleet.nodes[0].public_address().to_owned();
        world
            .net
            .peer(&victim)
            .tamper(std::sync::Arc::new(|message: &[u8]| {
                let mut v = message.to_vec();
                if let Some(b) = v.last_mut() {
                    *b ^= 1;
                }
                v
            }));
        let extension = world.extension();
        extension.register_site("pad.example.org", vec![fleet.golden_measurement]);
        assert!(extension.browse_ratls("pad.example.org", "/").is_err());
    }
}

//! Error type for the Revelio core.

use std::error::Error;
use std::fmt;

use revelio_boot::BootError;
use revelio_build::BuildError;
use revelio_crypto::wire::WireError;
use revelio_crypto::CryptoError;
use revelio_http::HttpError;
use revelio_net::NetError;
use revelio_pki::PkiError;
use sev_snp::SnpError;

/// Errors surfaced by Revelio provisioning, distribution and verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RevelioError {
    /// A provisioning run was asked to manage zero nodes — a caller
    /// configuration bug, distinct from any per-node rejection.
    EmptyFleet,
    /// A node's attestation did not pass the SP node's checks; names the
    /// node and the reason.
    NodeRejected {
        /// Bootstrap address of the offending node.
        node: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A peer's report was rejected during mutual attestation.
    MutualAttestationFailed(String),
    /// The evidence bundle failed verification; names the failing check.
    EvidenceRejected(String),
    /// The measurement is not among the registered golden values.
    UnknownMeasurement(String),
    /// The TLS connection's public key does not match the key bound in the
    /// attestation report — the man-in-the-middle signal.
    TlsBindingMismatch,
    /// The site serves no Revelio evidence at the well-known URL.
    NotRevelioSite(String),
    /// A flow gave up after retrying transient network faults; no verdict
    /// about attestation was reached (the paper's verifier must never
    /// conflate a dropped packet with a failed attestation).
    TransientNetwork {
        /// The component that exhausted its retries (e.g. `"extension"`).
        component: String,
        /// Attempts made, including the first.
        attempts: u32,
        /// Rendering of the final transient error.
        last_error: String,
    },
    /// The decrypted TLS key does not match the distributed certificate.
    KeyCertificateMismatch,
    /// An internal invariant of the extension or control plane was
    /// violated — a bug surfaced as an error instead of a process abort.
    /// Never transient, never an attestation verdict about the site.
    Internal(String),
    /// Hardware attestation error.
    Snp(SnpError),
    /// Boot failure.
    Boot(BootError),
    /// Image build failure.
    Build(BuildError),
    /// PKI failure (issuance, validation, rate limit).
    Pki(PkiError),
    /// HTTP failure.
    Http(HttpError),
    /// Network failure.
    Net(NetError),
    /// Wire-format failure.
    Wire(WireError),
    /// Cryptographic failure.
    Crypto(CryptoError),
}

impl RevelioError {
    /// Whether this error is a transient network condition (directly, or
    /// wrapped in the HTTP/TLS/PKI layers) rather than a verdict about
    /// attestation or protocol state. Callers must treat transient errors
    /// as "retry later" — never as "attestation failed".
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            RevelioError::TransientNetwork { .. } => true,
            RevelioError::Net(e) => e.is_transient(),
            // A 5xx is the server saying "try again later" (RFC 9110
            // §15.6); it carries no verdict about attestation. 4xx codes
            // stay non-transient — a 404 on the well-known URL *is* the
            // not-a-Revelio-site verdict. revelio-http keeps `Status`
            // opaque; the protocol-level reading lives here.
            RevelioError::Http(HttpError::Status(status)) => *status >= 500,
            RevelioError::Http(e) => e.is_transient(),
            RevelioError::Pki(e) => e.is_transient(),
            _ => false,
        }
    }

    /// Whether this error is a certificate-expiry condition (directly, or
    /// wrapped in the HTTP/TLS layers). Expiry is an *operational* state —
    /// the fleet's shared certificate aged past `not_after_ms` — not
    /// evidence tampering; the reconciler's renewal path keys off it.
    #[must_use]
    pub fn is_certificate_expired(&self) -> bool {
        match self {
            RevelioError::Pki(e) => matches!(e, PkiError::Expired { .. }),
            RevelioError::Http(HttpError::Tls(revelio_tls::TlsError::Certificate(e))) => {
                matches!(e, PkiError::Expired { .. })
            }
            _ => false,
        }
    }
}

impl fmt::Display for RevelioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RevelioError::EmptyFleet => {
                write!(f, "provisioning requires at least one bootstrap address")
            }
            RevelioError::NodeRejected { node, reason } => {
                write!(f, "node {node} rejected: {reason}")
            }
            RevelioError::MutualAttestationFailed(why) => {
                write!(f, "mutual attestation failed: {why}")
            }
            RevelioError::EvidenceRejected(why) => write!(f, "evidence rejected: {why}"),
            RevelioError::UnknownMeasurement(m) => {
                write!(f, "measurement {m} is not a registered golden value")
            }
            RevelioError::TlsBindingMismatch => {
                write!(f, "tls connection key does not match attested key")
            }
            RevelioError::NotRevelioSite(d) => write!(f, "{d} serves no revelio evidence"),
            RevelioError::TransientNetwork {
                component,
                attempts,
                last_error,
            } => {
                write!(
                    f,
                    "transient network failure in {component} after {attempts} attempts: \
                     {last_error} — retry, no attestation verdict reached"
                )
            }
            RevelioError::KeyCertificateMismatch => {
                write!(f, "distributed key does not match certificate")
            }
            RevelioError::Internal(why) => write!(f, "internal invariant violated: {why}"),
            RevelioError::Snp(e) => write!(f, "attestation error: {e}"),
            RevelioError::Boot(e) => write!(f, "boot error: {e}"),
            RevelioError::Build(e) => write!(f, "build error: {e}"),
            RevelioError::Pki(e) => write!(f, "pki error: {e}"),
            RevelioError::Http(e) => write!(f, "http error: {e}"),
            RevelioError::Net(e) => write!(f, "network error: {e}"),
            RevelioError::Wire(e) => write!(f, "wire format error: {e}"),
            RevelioError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl Error for RevelioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RevelioError::Snp(e) => Some(e),
            RevelioError::Boot(e) => Some(e),
            RevelioError::Build(e) => Some(e),
            RevelioError::Pki(e) => Some(e),
            RevelioError::Http(e) => Some(e),
            RevelioError::Net(e) => Some(e),
            RevelioError::Wire(e) => Some(e),
            RevelioError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! impl_from {
    ($($source:ty => $variant:ident),* $(,)?) => {
        $(impl From<$source> for RevelioError {
            fn from(e: $source) -> Self { RevelioError::$variant(e) }
        })*
    };
}

impl_from! {
    SnpError => Snp,
    BootError => Boot,
    BuildError => Build,
    PkiError => Pki,
    HttpError => Http,
    NetError => Net,
    WireError => Wire,
    CryptoError => Crypto,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_nodes_and_reasons() {
        let e = RevelioError::NodeRejected {
            node: "10.0.0.1:8080".into(),
            reason: "bad csr".into(),
        };
        assert!(e.to_string().contains("10.0.0.1:8080"));
        assert!(e.to_string().contains("bad csr"));
    }

    #[test]
    fn from_conversions_work() {
        let e: RevelioError = SnpError::SignatureInvalid.into();
        assert!(matches!(e, RevelioError::Snp(_)));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn transient_classification_unwraps_layers() {
        assert!(RevelioError::Net(NetError::Timeout("a".into())).is_transient());
        assert!(RevelioError::Http(HttpError::Net(NetError::Dropped("a".into()))).is_transient());
        assert!(RevelioError::TransientNetwork {
            component: "extension".into(),
            attempts: 4,
            last_error: "timed out".into(),
        }
        .is_transient());
        assert!(RevelioError::Pki(PkiError::Unavailable("acme".into())).is_transient());
        // Verdict-bearing errors must never classify as transient.
        assert!(!RevelioError::TlsBindingMismatch.is_transient());
        assert!(!RevelioError::EvidenceRejected("x".into()).is_transient());
        assert!(!RevelioError::UnknownMeasurement("m".into()).is_transient());
        assert!(!RevelioError::Pki(PkiError::SignatureInvalid).is_transient());
        assert!(!RevelioError::EmptyFleet.is_transient());
    }

    #[test]
    fn certificate_expiry_unwraps_layers_and_is_never_transient() {
        let expired = PkiError::Expired {
            now_ms: 2,
            not_after_ms: 1,
        };
        // Bare PKI expiry, and expiry surfaced through the TLS handshake
        // (the path a browse against an aged-out fleet actually takes).
        let direct = RevelioError::Pki(expired.clone());
        let via_tls =
            RevelioError::Http(HttpError::Tls(revelio_tls::TlsError::Certificate(expired)));
        assert!(direct.is_certificate_expired());
        assert!(via_tls.is_certificate_expired());
        assert!(!direct.is_transient());
        assert!(!via_tls.is_transient());
        // Other PKI failures are verdicts, not expiry.
        assert!(!RevelioError::Pki(PkiError::SignatureInvalid).is_certificate_expired());
        assert!(!RevelioError::TlsBindingMismatch.is_certificate_expired());
    }

    #[test]
    fn internal_errors_are_not_transient_and_name_the_invariant() {
        let e = RevelioError::Internal("page visit lost its response".into());
        assert!(!e.is_transient());
        assert!(!e.is_certificate_expired());
        assert!(e.to_string().contains("page visit lost its response"));
    }

    #[test]
    fn http_5xx_is_transient_but_4xx_is_a_verdict() {
        assert!(RevelioError::Http(HttpError::Status(500)).is_transient());
        assert!(RevelioError::Http(HttpError::Status(503)).is_transient());
        assert!(!RevelioError::Http(HttpError::Status(404)).is_transient());
        assert!(!RevelioError::Http(HttpError::Status(403)).is_transient());
    }
}

//! Golden-value distribution: how end-users learn which measurements are
//! "good" (paper §3.4.7) and how obsolete images are revoked (§6.1.4).
//!
//! Two trust models are provided:
//!
//! * [`GoldenSet`] — the self-verifying user (or an auditing company's
//!   published list): a static set of acceptable measurements with
//!   explicit revocation.
//! * [`VotingRegistry`] — an on-chain community registry in the spirit of
//!   the Internet Computer's Network Nervous System: a measurement becomes
//!   trusted once a quorum of registered voters signs it, and revoked the
//!   same way; revocation permanently dominates approval (rollback
//!   protection).

use std::collections::{BTreeMap, BTreeSet};

use revelio_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use sev_snp::measurement::Measurement;

use crate::RevelioError;

/// A static set of trusted measurements with revocation.
#[derive(Debug, Clone, Default)]
pub struct GoldenSet {
    trusted: BTreeSet<Measurement>,
    revoked: BTreeSet<Measurement>,
}

impl GoldenSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        GoldenSet::default()
    }

    /// Builds from a list of trusted measurements.
    #[must_use]
    pub fn from_measurements(measurements: impl IntoIterator<Item = Measurement>) -> Self {
        GoldenSet {
            trusted: measurements.into_iter().collect(),
            revoked: BTreeSet::new(),
        }
    }

    /// Adds a trusted measurement (new image rollout).
    pub fn publish(&mut self, measurement: Measurement) {
        self.trusted.insert(measurement);
    }

    /// Revokes a measurement (obsolete image; prevents rollback attacks).
    pub fn revoke(&mut self, measurement: Measurement) {
        self.revoked.insert(measurement);
    }

    /// Whether `measurement` is currently acceptable.
    #[must_use]
    pub fn is_trusted(&self, measurement: &Measurement) -> bool {
        self.trusted.contains(measurement) && !self.revoked.contains(measurement)
    }

    /// All currently-acceptable measurements.
    #[must_use]
    pub fn trusted(&self) -> Vec<Measurement> {
        self.trusted
            .iter()
            .filter(|m| !self.revoked.contains(*m))
            .copied()
            .collect()
    }
}

/// What a voter asserts about a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VoteKind {
    /// The measurement corresponds to an audited-good image.
    Approve,
    /// The measurement must no longer be accepted.
    Revoke,
}

/// A signed vote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vote {
    /// What is being voted on.
    pub measurement: Measurement,
    /// Approve or revoke.
    pub kind: VoteKind,
    /// The voter's public key.
    pub voter: VerifyingKey,
    /// Signature over the vote payload.
    pub signature: Signature,
}

fn vote_payload(measurement: &Measurement, kind: VoteKind) -> Vec<u8> {
    let mut payload = b"revelio-vote/v1".to_vec();
    payload.push(match kind {
        VoteKind::Approve => 0,
        VoteKind::Revoke => 1,
    });
    payload.extend_from_slice(measurement.as_bytes());
    payload
}

impl Vote {
    /// Signs a vote.
    #[must_use]
    pub fn sign(measurement: Measurement, kind: VoteKind, key: &SigningKey) -> Self {
        Vote {
            measurement,
            kind,
            voter: key.verifying_key(),
            signature: key.sign(&vote_payload(&measurement, kind)),
        }
    }

    /// Verifies the vote's signature.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::Crypto`] when the signature fails.
    pub fn verify(&self) -> Result<(), RevelioError> {
        self.voter
            .verify(&vote_payload(&self.measurement, self.kind), &self.signature)
            .map_err(RevelioError::Crypto)
    }
}

/// A quorum-voted registry.
#[derive(Debug, Clone)]
pub struct VotingRegistry {
    voters: BTreeSet<VerifyingKey>,
    quorum: usize,
    approvals: BTreeMap<Measurement, BTreeSet<VerifyingKey>>,
    revocations: BTreeMap<Measurement, BTreeSet<VerifyingKey>>,
}

impl VotingRegistry {
    /// Creates a registry with the given electorate and quorum.
    ///
    /// # Panics
    ///
    /// Panics if `quorum` is zero or exceeds the electorate size.
    #[must_use]
    pub fn new(voters: impl IntoIterator<Item = VerifyingKey>, quorum: usize) -> Self {
        let voters: BTreeSet<VerifyingKey> = voters.into_iter().collect();
        assert!(
            quorum > 0 && quorum <= voters.len(),
            "quorum must be in 1..=|voters|"
        );
        VotingRegistry {
            voters,
            quorum,
            approvals: BTreeMap::new(),
            revocations: BTreeMap::new(),
        }
    }

    /// Submits a vote.
    ///
    /// # Errors
    ///
    /// Returns [`RevelioError::EvidenceRejected`] for non-electorate voters
    /// and [`RevelioError::Crypto`] for bad signatures. Duplicate votes are
    /// idempotent.
    pub fn submit(&mut self, vote: &Vote) -> Result<(), RevelioError> {
        vote.verify()?;
        if !self.voters.contains(&vote.voter) {
            return Err(RevelioError::EvidenceRejected(
                "voter not in electorate".into(),
            ));
        }
        let book = match vote.kind {
            VoteKind::Approve => &mut self.approvals,
            VoteKind::Revoke => &mut self.revocations,
        };
        book.entry(vote.measurement).or_default().insert(vote.voter);
        Ok(())
    }

    fn quorum_reached(
        &self,
        book: &BTreeMap<Measurement, BTreeSet<VerifyingKey>>,
        m: &Measurement,
    ) -> bool {
        book.get(m).is_some_and(|s| s.len() >= self.quorum)
    }

    /// Whether `measurement` is trusted: approval quorum reached and no
    /// revocation quorum (revocation dominates).
    #[must_use]
    pub fn is_trusted(&self, measurement: &Measurement) -> bool {
        self.quorum_reached(&self.approvals, measurement)
            && !self.quorum_reached(&self.revocations, measurement)
    }

    /// The trusted measurements, as a [`GoldenSet`] snapshot for clients.
    #[must_use]
    pub fn snapshot(&self) -> GoldenSet {
        GoldenSet::from_measurements(
            self.approvals
                .keys()
                .filter(|m| self.is_trusted(m))
                .copied(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(tag: &[u8]) -> Measurement {
        Measurement::of_launch_context(tag)
    }

    #[test]
    fn golden_set_publish_and_revoke() {
        let mut set = GoldenSet::new();
        let v1 = m(b"image-v1");
        let v2 = m(b"image-v2");
        set.publish(v1);
        assert!(set.is_trusted(&v1));
        // New rollout: v2 published, v1 revoked -> rollback to v1 rejected.
        set.publish(v2);
        set.revoke(v1);
        assert!(!set.is_trusted(&v1));
        assert!(set.is_trusted(&v2));
        assert_eq!(set.trusted(), vec![v2]);
    }

    #[test]
    fn voting_reaches_quorum() {
        let keys: Vec<SigningKey> = (0..5u8).map(|i| SigningKey::from_seed(&[i; 32])).collect();
        let mut reg = VotingRegistry::new(keys.iter().map(SigningKey::verifying_key), 3);
        let target = m(b"image");
        for key in &keys[..2] {
            reg.submit(&Vote::sign(target, VoteKind::Approve, key))
                .unwrap();
        }
        assert!(!reg.is_trusted(&target));
        reg.submit(&Vote::sign(target, VoteKind::Approve, &keys[2]))
            .unwrap();
        assert!(reg.is_trusted(&target));
        assert!(reg.snapshot().is_trusted(&target));
    }

    #[test]
    fn duplicate_votes_do_not_inflate() {
        let key = SigningKey::from_seed(&[1; 32]);
        let other = SigningKey::from_seed(&[2; 32]);
        let mut reg = VotingRegistry::new([key.verifying_key(), other.verifying_key()], 2);
        let target = m(b"image");
        for _ in 0..5 {
            reg.submit(&Vote::sign(target, VoteKind::Approve, &key))
                .unwrap();
        }
        assert!(!reg.is_trusted(&target));
    }

    #[test]
    fn outsider_votes_rejected() {
        let insider = SigningKey::from_seed(&[1; 32]);
        let outsider = SigningKey::from_seed(&[9; 32]);
        let mut reg = VotingRegistry::new([insider.verifying_key()], 1);
        assert!(reg
            .submit(&Vote::sign(m(b"i"), VoteKind::Approve, &outsider))
            .is_err());
    }

    #[test]
    fn forged_vote_rejected() {
        let key = SigningKey::from_seed(&[1; 32]);
        let mut reg = VotingRegistry::new([key.verifying_key()], 1);
        let mut vote = Vote::sign(m(b"honest"), VoteKind::Approve, &key);
        vote.measurement = m(b"evil"); // breaks the signature
        assert!(reg.submit(&vote).is_err());
        assert!(!reg.is_trusted(&m(b"evil")));
    }

    #[test]
    fn revocation_quorum_dominates() {
        let keys: Vec<SigningKey> = (0..3u8).map(|i| SigningKey::from_seed(&[i; 32])).collect();
        let mut reg = VotingRegistry::new(keys.iter().map(SigningKey::verifying_key), 2);
        let target = m(b"image");
        for key in &keys[..2] {
            reg.submit(&Vote::sign(target, VoteKind::Approve, key))
                .unwrap();
        }
        assert!(reg.is_trusted(&target));
        // A vulnerability is found: the community revokes.
        for key in &keys[1..3] {
            reg.submit(&Vote::sign(target, VoteKind::Revoke, key))
                .unwrap();
        }
        assert!(!reg.is_trusted(&target));
        assert!(!reg.snapshot().is_trusted(&target));
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn zero_quorum_panics() {
        let key = SigningKey::from_seed(&[1; 32]);
        let _ = VotingRegistry::new([key.verifying_key()], 0);
    }
}

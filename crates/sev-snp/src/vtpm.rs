//! A minimal virtual TPM: PCR banks and hardware-rooted quotes.
//!
//! The paper's related work (§7, Narayanan et al.) points out that an
//! SEV-SNP-backed vTPM would give Revelio a *runtime* measurement channel
//! on top of the load-time launch digest. This module implements that
//! extension: a bank of SHA-256 PCRs with the classic extend semantics
//! (`PCR ← H(PCR || event)`), an event log for replay, and quotes that are
//! bound to the hardware by riding in the `REPORT_DATA` of a regular
//! attestation report — so a verifier gets launch-time *and* runtime state
//! in one evidence bundle.

use revelio_crypto::sha2::Sha256;
use revelio_crypto::wire::{ByteReader, ByteWriter};

use crate::SnpError;

/// Number of PCRs in the bank (enough for the boot pipeline's event
/// classes; real TPMs have 24).
pub const PCR_COUNT: usize = 8;

/// Well-known PCR assignments used by the Revelio boot sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcrIndex {
    /// Firmware identity.
    Firmware = 0,
    /// Kernel blob.
    Kernel = 1,
    /// Initrd blob.
    Initrd = 2,
    /// Kernel command line.
    Cmdline = 3,
    /// Rootfs root hash.
    RootFs = 4,
    /// Started services, in order.
    Services = 5,
    /// Application-defined events.
    Application = 6,
    /// Debug/reserved.
    Reserved = 7,
}

/// One entry of the replayable event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcrEvent {
    /// The PCR that was extended.
    pub index: u8,
    /// Human-readable event description.
    pub description: String,
    /// SHA-256 of the event data that was extended.
    pub digest: [u8; 32],
}

/// The vTPM state: PCR bank plus event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vtpm {
    pcrs: [[u8; 32]; PCR_COUNT],
    log: Vec<PcrEvent>,
}

impl Default for Vtpm {
    fn default() -> Self {
        Vtpm {
            pcrs: [[0; 32]; PCR_COUNT],
            log: Vec::new(),
        }
    }
}

impl Vtpm {
    /// A fresh vTPM with all PCRs zero.
    #[must_use]
    pub fn new() -> Self {
        Vtpm::default()
    }

    /// Extends `index` with `data`: `PCR ← SHA-256(PCR || SHA-256(data))`,
    /// recording the event in the log.
    pub fn extend(&mut self, index: PcrIndex, description: &str, data: &[u8]) {
        let digest = Sha256::digest(data);
        let i = index as usize;
        let mut concat = self.pcrs[i].to_vec();
        concat.extend_from_slice(&digest);
        self.pcrs[i] = Sha256::digest(&concat);
        self.log.push(PcrEvent {
            index: index as u8,
            description: description.to_owned(),
            digest,
        });
    }

    /// Current value of a PCR.
    #[must_use]
    pub fn pcr(&self, index: PcrIndex) -> [u8; 32] {
        self.pcrs[index as usize]
    }

    /// The replayable event log.
    #[must_use]
    pub fn event_log(&self) -> &[PcrEvent] {
        &self.log
    }

    /// The composite digest over all PCRs plus a verifier nonce — the
    /// value to place in `REPORT_DATA` so a single SNP report covers
    /// runtime state ("quote").
    #[must_use]
    pub fn quote_digest(&self, nonce: &[u8]) -> [u8; 32] {
        let mut w = ByteWriter::new();
        w.put_bytes(b"vtpm-quote/v1");
        for pcr in &self.pcrs {
            w.put_bytes(pcr);
        }
        w.put_var_bytes(nonce);
        Sha256::digest(w.into_bytes())
    }

    /// Replays an event log and checks it reproduces this bank's values —
    /// what a verifier does with the log shipped alongside a quote.
    ///
    /// # Errors
    ///
    /// Returns [`SnpError::ReportBindingMismatch`] if the log does not
    /// replay to the same PCR values.
    pub fn verify_log_replay(&self, log: &[PcrEvent]) -> Result<(), SnpError> {
        let mut replay = [[0u8; 32]; PCR_COUNT];
        for event in log {
            let i = event.index as usize;
            if i >= PCR_COUNT {
                return Err(SnpError::ReportBindingMismatch);
            }
            let mut concat = replay[i].to_vec();
            concat.extend_from_slice(&event.digest);
            replay[i] = Sha256::digest(&concat);
        }
        if replay == self.pcrs {
            Ok(())
        } else {
            Err(SnpError::ReportBindingMismatch)
        }
    }

    /// Serializes the event log.
    #[must_use]
    pub fn log_to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.log.len() as u32);
        for event in &self.log {
            w.put_u8(event.index);
            w.put_str(&event.description);
            w.put_bytes(&event.digest);
        }
        w.into_bytes()
    }

    /// Decodes an event log.
    ///
    /// # Errors
    ///
    /// Returns [`SnpError::Wire`] on malformed input.
    pub fn log_from_bytes(bytes: &[u8]) -> Result<Vec<PcrEvent>, SnpError> {
        let mut r = ByteReader::new(bytes);
        let n = r.get_count(37)?; // index + name prefix + digest
        let mut log = Vec::with_capacity(n);
        for _ in 0..n {
            log.push(PcrEvent {
                index: r.get_u8()?,
                description: r.get_str()?,
                digest: r.get_array::<32>()?,
            });
        }
        r.finish()?;
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booted_vtpm() -> Vtpm {
        let mut t = Vtpm::new();
        t.extend(PcrIndex::Firmware, "ovmf", b"fw bytes");
        t.extend(PcrIndex::Kernel, "kernel", b"kernel bytes");
        t.extend(PcrIndex::Services, "svc:nginx", b"nginx");
        t.extend(PcrIndex::Services, "svc:proxy", b"proxy");
        t
    }

    #[test]
    fn extend_is_order_sensitive() {
        let mut a = Vtpm::new();
        a.extend(PcrIndex::Services, "x", b"x");
        a.extend(PcrIndex::Services, "y", b"y");
        let mut b = Vtpm::new();
        b.extend(PcrIndex::Services, "y", b"y");
        b.extend(PcrIndex::Services, "x", b"x");
        assert_ne!(a.pcr(PcrIndex::Services), b.pcr(PcrIndex::Services));
    }

    #[test]
    fn pcrs_are_independent() {
        let mut t = Vtpm::new();
        t.extend(PcrIndex::Kernel, "k", b"k");
        assert_eq!(t.pcr(PcrIndex::Initrd), [0u8; 32]);
        assert_ne!(t.pcr(PcrIndex::Kernel), [0u8; 32]);
    }

    #[test]
    fn log_replays_to_bank() {
        let t = booted_vtpm();
        t.verify_log_replay(t.event_log()).unwrap();
    }

    #[test]
    fn tampered_log_fails_replay() {
        let t = booted_vtpm();
        let mut log = t.event_log().to_vec();
        log[1].digest[0] ^= 1;
        assert!(t.verify_log_replay(&log).is_err());
        // Dropping an event fails too.
        let mut log = t.event_log().to_vec();
        log.pop();
        assert!(t.verify_log_replay(&log).is_err());
        // Out-of-range index is rejected.
        let mut log = t.event_log().to_vec();
        log[0].index = 99;
        assert!(t.verify_log_replay(&log).is_err());
    }

    #[test]
    fn quote_binds_nonce_and_state() {
        let t = booted_vtpm();
        let q1 = t.quote_digest(b"nonce-1");
        assert_ne!(q1, t.quote_digest(b"nonce-2"));
        let mut t2 = booted_vtpm();
        t2.extend(PcrIndex::Application, "late event", b"runtime change");
        assert_ne!(q1, t2.quote_digest(b"nonce-1"));
    }

    #[test]
    fn log_serialization_roundtrip() {
        let t = booted_vtpm();
        let decoded = Vtpm::log_from_bytes(&t.log_to_bytes()).unwrap();
        assert_eq!(decoded, t.event_log());
        t.verify_log_replay(&decoded).unwrap();
    }
}

//! Sealing-key derivation (the SNP `KEY_REQUEST` message, §2.1.3).
//!
//! A guest asks its AMD-SP for key material derived from platform secrets
//! mixed, at the guest's choice, with its launch measurement, policy and
//! TCB. Revelio seals its persistent volumes with a measurement-mixed key
//! so only an identically-measured VM on the same chip can unlock them
//! (§3.4.8).

use revelio_crypto::hmac::Hmac;
use revelio_crypto::sha2::Sha256;

use crate::ids::{GuestPolicy, TcbVersion};
use crate::measurement::Measurement;

/// Selects which guest attributes are mixed into a derived key.
///
/// The default request mixes the measurement only — the paper's disk
/// sealing policy ("accessible only by a VM with an identical cryptographic
/// fingerprint").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealingKeyRequest {
    /// Mix the launch measurement into the key.
    pub mix_measurement: bool,
    /// Mix the guest policy into the key.
    pub mix_policy: bool,
    /// Mix the platform TCB version into the key (prevents rolled-back
    /// firmware from unsealing).
    pub mix_tcb: bool,
    /// Free-form context separating different uses of sealing keys inside
    /// one guest (e.g. `b"disk"` vs `b"tls-backup"`).
    pub context: Vec<u8>,
}

impl Default for SealingKeyRequest {
    fn default() -> Self {
        SealingKeyRequest {
            mix_measurement: true,
            mix_policy: false,
            mix_tcb: false,
            context: Vec::new(),
        }
    }
}

impl SealingKeyRequest {
    /// A measurement-bound request with a usage context label.
    #[must_use]
    pub fn for_context(context: &[u8]) -> Self {
        SealingKeyRequest {
            context: context.to_vec(),
            ..SealingKeyRequest::default()
        }
    }

    /// Performs the derivation. Called by
    /// [`crate::platform::GuestContext::derive_sealing_key`].
    #[must_use]
    pub(crate) fn derive(
        &self,
        chip_secret: &[u8; 32],
        measurement: &Measurement,
        policy: &GuestPolicy,
        tcb: &TcbVersion,
    ) -> [u8; 32] {
        let mut mac = Hmac::<Sha256>::new(chip_secret);
        mac.update(b"snp-key-request/v1");
        mac.update(&[
            u8::from(self.mix_measurement),
            u8::from(self.mix_policy),
            u8::from(self.mix_tcb),
        ]);
        if self.mix_measurement {
            mac.update(measurement.as_bytes());
        }
        if self.mix_policy {
            mac.update(&policy.to_u64().to_le_bytes());
        }
        if self.mix_tcb {
            mac.update(&tcb.to_u64().to_le_bytes());
        }
        mac.update(&(self.context.len() as u64).to_le_bytes());
        mac.update(&self.context);
        mac.finalize().try_into().expect("32 bytes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ChipId, GuestPolicy};
    use crate::platform::{AmdRootOfTrust, SnpPlatform};
    use std::sync::Arc;

    fn guests() -> (crate::platform::GuestContext, crate::platform::GuestContext) {
        let amd = Arc::new(AmdRootOfTrust::from_seed([3; 32]));
        let p1 = SnpPlatform::new(
            Arc::clone(&amd),
            ChipId::from_seed(1),
            TcbVersion::default(),
        );
        let p2 = SnpPlatform::new(
            Arc::clone(&amd),
            ChipId::from_seed(2),
            TcbVersion::default(),
        );
        (
            p1.launch(b"fw", GuestPolicy::default()).unwrap(),
            p2.launch(b"fw", GuestPolicy::default()).unwrap(),
        )
    }

    #[test]
    fn same_vm_same_platform_rederives() {
        let amd = Arc::new(AmdRootOfTrust::from_seed([3; 32]));
        let p = SnpPlatform::new(amd, ChipId::from_seed(1), TcbVersion::default());
        let g1 = p.launch(b"fw", GuestPolicy::default()).unwrap();
        let g2 = p.launch(b"fw", GuestPolicy::default()).unwrap();
        let req = SealingKeyRequest::default();
        assert_eq!(g1.derive_sealing_key(&req), g2.derive_sealing_key(&req));
    }

    #[test]
    fn different_measurement_cannot_unseal() {
        let amd = Arc::new(AmdRootOfTrust::from_seed([3; 32]));
        let p = SnpPlatform::new(amd, ChipId::from_seed(1), TcbVersion::default());
        let good = p.launch(b"fw", GuestPolicy::default()).unwrap();
        let evil = p.launch(b"tampered fw", GuestPolicy::default()).unwrap();
        let req = SealingKeyRequest::default();
        assert_ne!(good.derive_sealing_key(&req), evil.derive_sealing_key(&req));
    }

    #[test]
    fn different_chip_cannot_unseal() {
        let (g1, g2) = guests();
        let req = SealingKeyRequest::default();
        assert_ne!(g1.derive_sealing_key(&req), g2.derive_sealing_key(&req));
    }

    #[test]
    fn contexts_are_separated() {
        let (g, _) = guests();
        let disk = g.derive_sealing_key(&SealingKeyRequest::for_context(b"disk"));
        let tls = g.derive_sealing_key(&SealingKeyRequest::for_context(b"tls"));
        assert_ne!(disk, tls);
    }

    #[test]
    fn mix_flags_change_key() {
        let (g, _) = guests();
        let plain = g.derive_sealing_key(&SealingKeyRequest::default());
        let with_tcb = g.derive_sealing_key(&SealingKeyRequest {
            mix_tcb: true,
            ..SealingKeyRequest::default()
        });
        assert_ne!(plain, with_tcb);
    }

    #[test]
    fn measurement_unmixed_key_survives_fw_change() {
        let amd = Arc::new(AmdRootOfTrust::from_seed([3; 32]));
        let p = SnpPlatform::new(amd, ChipId::from_seed(1), TcbVersion::default());
        let g1 = p.launch(b"fw-v1", GuestPolicy::default()).unwrap();
        let g2 = p.launch(b"fw-v2", GuestPolicy::default()).unwrap();
        let req = SealingKeyRequest {
            mix_measurement: false,
            ..SealingKeyRequest::default()
        };
        assert_eq!(g1.derive_sealing_key(&req), g2.derive_sealing_key(&req));
    }
}

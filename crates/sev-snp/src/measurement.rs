//! Launch measurements: the SHA-384 digest the AMD-SP takes over the
//! guest's initial memory context.
//!
//! Under plain direct boot only the virtual firmware volume is loaded before
//! the digest is finalized, so the measurement covers *only the firmware*
//! (§2.1.2 of the paper). Revelio's measured direct boot embeds a hash
//! table for kernel/initrd/cmdline inside the firmware image, which makes
//! this single digest transitively cover the whole boot chain — that logic
//! lives in `revelio-boot`; this module just measures bytes faithfully.

use std::fmt;

use revelio_crypto::sha2::{HashFunction, Sha384};
use revelio_crypto::{hex, CryptoError};

/// A SHA-384 launch measurement (48 bytes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Measurement([u8; 48]);

impl Measurement {
    /// Byte length of a measurement.
    pub const LEN: usize = 48;

    /// Measures an initial guest memory context (the firmware volume, under
    /// direct boot).
    ///
    /// The digest is domain-separated so a measurement can never collide
    /// with a plain file hash of the same bytes.
    #[must_use]
    pub fn of_launch_context(initial_memory: &[u8]) -> Self {
        let mut h = Sha384::new();
        h.update(b"snp-launch-digest/v1");
        h.update(&(initial_memory.len() as u64).to_le_bytes());
        h.update(initial_memory);
        Measurement(h.finalize().try_into().expect("48 bytes"))
    }

    /// Wraps raw digest bytes (e.g. parsed from a report).
    #[must_use]
    pub fn from_bytes(bytes: [u8; 48]) -> Self {
        Measurement(bytes)
    }

    /// The raw digest bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 48] {
        &self.0
    }

    /// Parses from 96 hex characters.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidHex`] or [`CryptoError::InvalidLength`]
    /// for malformed input.
    pub fn from_hex(s: &str) -> Result<Self, CryptoError> {
        Ok(Measurement(hex::decode_array::<48>(s)?))
    }

    /// Lowercase hex encoding — the "golden value" format end-users and
    /// trusted registries exchange.
    #[must_use]
    pub fn to_hex(&self) -> String {
        hex::encode(self.0)
    }
}

impl fmt::Debug for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Measurement({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn measurement_is_deterministic() {
        let a = Measurement::of_launch_context(b"firmware");
        let b = Measurement::of_launch_context(b"firmware");
        assert_eq!(a, b);
    }

    #[test]
    fn single_bit_flip_changes_measurement() {
        let a = Measurement::of_launch_context(b"firmware");
        let b = Measurement::of_launch_context(b"firmwarf");
        assert_ne!(a, b);
    }

    #[test]
    fn measurement_differs_from_plain_hash() {
        use revelio_crypto::sha2::Sha384;
        let m = Measurement::of_launch_context(b"fw");
        assert_ne!(m.as_bytes()[..], Sha384::digest(b"fw")[..]);
    }

    #[test]
    fn hex_roundtrip() {
        let m = Measurement::of_launch_context(b"fw");
        assert_eq!(Measurement::from_hex(&m.to_hex()).unwrap(), m);
    }

    #[test]
    fn display_is_full_hex() {
        let m = Measurement::of_launch_context(b"fw");
        assert_eq!(m.to_string().len(), 96);
    }

    proptest! {
        #[test]
        fn distinct_contexts_distinct_measurements(a: Vec<u8>, b: Vec<u8>) {
            prop_assume!(a != b);
            prop_assert_ne!(
                Measurement::of_launch_context(&a),
                Measurement::of_launch_context(&b)
            );
        }
    }
}

//! The AMD Key Distribution Service (KDS) and the ARK → ASK → VCEK
//! endorsement chain.
//!
//! Real verifiers query `https://kdsintf.amd.com` with a chip ID and TCB
//! version and receive the VCEK certificate plus the ASK/ARK roots
//! (§5.3 of the paper). The simulated KDS answers the same queries from
//! the [`crate::platform::AmdRootOfTrust`]. Network latency for KDS round
//! trips — the dominant cost in the paper's Table 3 — is modelled where the
//! KDS is mounted on the simulated network, not here.

use std::sync::Arc;

use revelio_crypto::ed25519::{Signature, SigningKey, VerifyingKey, SIGNATURE_LEN};
use revelio_crypto::wire::{ByteReader, ByteWriter};
use revelio_telemetry::Telemetry;

use crate::ids::{ChipId, TcbVersion};
use crate::platform::AmdRootOfTrust;
use crate::SnpError;

/// A certificate in the AMD endorsement chain.
///
/// Deliberately minimal (subject, issuer, key, optional chip binding,
/// signature) — the AMD chain is a fixed three-level hierarchy, not a
/// general PKI; the web PKI lives in `revelio-pki`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmdCert {
    /// Certified subject name, e.g. `"VCEK"`.
    pub subject: String,
    /// Issuer name, e.g. `"ASK"`.
    pub issuer: String,
    /// The certified public key.
    pub public_key: VerifyingKey,
    /// For VCEK certificates: the chip and TCB this key endorses.
    pub vcek_binding: Option<(ChipId, TcbVersion)>,
    /// Issuer signature over [`AmdCert::signed_payload`].
    pub signature: Signature,
}

impl AmdCert {
    fn payload(
        subject: &str,
        issuer: &str,
        public_key: &VerifyingKey,
        binding: Option<&(ChipId, TcbVersion)>,
    ) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(b"AMDCERT1");
        w.put_str(subject);
        w.put_str(issuer);
        w.put_bytes(&public_key.to_bytes());
        match binding {
            None => {
                w.put_u8(0);
            }
            Some((chip, tcb)) => {
                w.put_u8(1);
                w.put_bytes(chip.as_bytes());
                w.put_u64(tcb.to_u64());
            }
        }
        w.into_bytes()
    }

    /// Issues a certificate: `issuer_key` signs `public_key` as `subject`.
    #[must_use]
    pub fn issue(
        subject: &str,
        issuer: &str,
        public_key: VerifyingKey,
        vcek_binding: Option<(ChipId, TcbVersion)>,
        issuer_key: &SigningKey,
    ) -> Self {
        let payload = Self::payload(subject, issuer, &public_key, vcek_binding.as_ref());
        AmdCert {
            subject: subject.to_owned(),
            issuer: issuer.to_owned(),
            public_key,
            vcek_binding,
            signature: issuer_key.sign(&payload),
        }
    }

    /// The bytes the issuer signed.
    #[must_use]
    pub fn signed_payload(&self) -> Vec<u8> {
        Self::payload(
            &self.subject,
            &self.issuer,
            &self.public_key,
            self.vcek_binding.as_ref(),
        )
    }

    /// Verifies this certificate against the issuer's public key.
    ///
    /// # Errors
    ///
    /// Returns [`SnpError::ChainInvalid`] naming the subject when the
    /// signature fails.
    pub fn verify(&self, issuer_public: &VerifyingKey) -> Result<(), SnpError> {
        issuer_public
            .verify(&self.signed_payload(), &self.signature)
            .map_err(|_| SnpError::ChainInvalid(format!("bad signature on {}", self.subject)))
    }

    /// Serializes the certificate.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_var_bytes(&self.signed_payload());
        w.put_bytes(&self.signature.to_bytes());
        w.into_bytes()
    }

    /// Decodes a certificate.
    ///
    /// # Errors
    ///
    /// Returns [`SnpError::Wire`] or [`SnpError::Crypto`] on malformed
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnpError> {
        let mut outer = ByteReader::new(bytes);
        let payload = outer.get_var_bytes()?.to_vec();
        let sig = outer.get_array::<SIGNATURE_LEN>()?;
        outer.finish()?;

        let mut r = ByteReader::new(&payload);
        let magic = r.get_array::<8>()?;
        if &magic != b"AMDCERT1" {
            return Err(SnpError::Wire(revelio_crypto::wire::WireError::UnknownTag(
                magic[0],
            )));
        }
        let subject = r.get_str()?;
        let issuer = r.get_str()?;
        let public_key = VerifyingKey::from_bytes(r.get_array::<32>()?)?;
        let vcek_binding = match r.get_u8()? {
            0 => None,
            1 => {
                let chip = ChipId::from_bytes(r.get_array::<64>()?);
                let tcb = TcbVersion::from_u64(r.get_u64()?);
                Some((chip, tcb))
            }
            t => {
                return Err(SnpError::Wire(revelio_crypto::wire::WireError::UnknownTag(
                    t,
                )))
            }
        };
        r.finish()?;
        Ok(AmdCert {
            subject,
            issuer,
            public_key,
            vcek_binding,
            signature: Signature::from_bytes(sig),
        })
    }
}

/// The full ARK → ASK → VCEK chain a verifier needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcekCertChain {
    /// AMD Root Key certificate (self-signed).
    pub ark: AmdCert,
    /// AMD SEV Key certificate (signed by ARK).
    pub ask: AmdCert,
    /// Versioned Chip Endorsement Key certificate (signed by ASK).
    pub vcek: AmdCert,
}

impl VcekCertChain {
    /// Validates the chain against a pinned ARK public key and returns the
    /// endorsed VCEK public key with its chip binding.
    ///
    /// # Errors
    ///
    /// Returns [`SnpError::ChainInvalid`] naming the broken link.
    pub fn validate(
        &self,
        trusted_ark: &VerifyingKey,
    ) -> Result<(VerifyingKey, (ChipId, TcbVersion)), SnpError> {
        if self.ark.public_key != *trusted_ark {
            return Err(SnpError::ChainInvalid(
                "ark key is not the pinned root".into(),
            ));
        }
        self.ark.verify(trusted_ark)?;
        self.ask.verify(&self.ark.public_key)?;
        self.vcek.verify(&self.ask.public_key)?;
        let binding = self
            .vcek
            .vcek_binding
            .ok_or_else(|| SnpError::ChainInvalid("vcek certificate lacks chip binding".into()))?;
        Ok((self.vcek.public_key, binding))
    }

    /// Serializes the chain.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_var_bytes(&self.ark.to_bytes());
        w.put_var_bytes(&self.ask.to_bytes());
        w.put_var_bytes(&self.vcek.to_bytes());
        w.into_bytes()
    }

    /// Decodes a chain.
    ///
    /// # Errors
    ///
    /// Returns [`SnpError::Wire`] or [`SnpError::Crypto`] on malformed
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnpError> {
        let mut r = ByteReader::new(bytes);
        let ark = AmdCert::from_bytes(r.get_var_bytes()?)?;
        let ask = AmdCert::from_bytes(r.get_var_bytes()?)?;
        let vcek = AmdCert::from_bytes(r.get_var_bytes()?)?;
        r.finish()?;
        Ok(VcekCertChain { ark, ask, vcek })
    }
}

/// The simulated AMD Key Distribution Service.
#[derive(Debug, Clone)]
pub struct KeyDistributionService {
    amd: Arc<AmdRootOfTrust>,
    telemetry: Option<Telemetry>,
}

impl KeyDistributionService {
    /// Creates a KDS backed by `amd`'s root of trust.
    #[must_use]
    pub fn new(amd: Arc<AmdRootOfTrust>) -> Self {
        KeyDistributionService {
            amd,
            telemetry: None,
        }
    }

    /// Counts served VCEK queries in `telemetry`
    /// (`revelio_sevsnp_kds_vcek_requests_total`).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Answers the "give me the VCEK certificate for this chip at this TCB"
    /// query (plus roots), as the real KDS endpoint does.
    ///
    /// # Errors
    ///
    /// Infallible in the simulator (any chip the root of trust can derive is
    /// served); the `Result` mirrors the remote API surface so callers
    /// handle failure paths uniformly.
    pub fn vcek_chain(
        &self,
        chip_id: &ChipId,
        tcb: &TcbVersion,
    ) -> Result<VcekCertChain, SnpError> {
        if let Some(telemetry) = &self.telemetry {
            telemetry.counter_add("revelio_sevsnp_kds_vcek_requests_total", 1);
        }
        let ark_pub = self.amd.ark_public_key();
        let ark = AmdCert::issue("ARK", "ARK", ark_pub, None, self.amd.ark_key());
        let ask = AmdCert::issue(
            "ASK",
            "ARK",
            self.amd.ask_key().verifying_key(),
            None,
            self.amd.ark_key(),
        );
        let vcek_key = self.amd.vcek_for(chip_id, tcb);
        let vcek = AmdCert::issue(
            "VCEK",
            "ASK",
            vcek_key.verifying_key(),
            Some((*chip_id, *tcb)),
            self.amd.ask_key(),
        );
        Ok(VcekCertChain { ark, ask, vcek })
    }

    /// Answers the chip-independent `/cert_chain` query — the ARK → ASK
    /// prefix of the chain, which the real KDS serves at its own endpoint
    /// next to `/vcek`.
    #[must_use]
    pub fn cert_chain(&self) -> (AmdCert, AmdCert) {
        if let Some(telemetry) = &self.telemetry {
            telemetry.counter_add("revelio_sevsnp_kds_cert_chain_requests_total", 1);
        }
        let ark_pub = self.amd.ark_public_key();
        let ark = AmdCert::issue("ARK", "ARK", ark_pub, None, self.amd.ark_key());
        let ask = AmdCert::issue(
            "ASK",
            "ARK",
            self.amd.ask_key().verifying_key(),
            None,
            self.amd.ark_key(),
        );
        (ark, ask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<AmdRootOfTrust>, KeyDistributionService) {
        let amd = Arc::new(AmdRootOfTrust::from_seed([7; 32]));
        let kds = KeyDistributionService::new(Arc::clone(&amd));
        (amd, kds)
    }

    #[test]
    fn chain_validates_against_pinned_ark() {
        let (amd, kds) = setup();
        let chip = ChipId::from_seed(1);
        let tcb = TcbVersion::new(1, 0, 8, 115);
        let chain = kds.vcek_chain(&chip, &tcb).unwrap();
        let (vcek_pub, (bound_chip, bound_tcb)) = chain.validate(&amd.ark_public_key()).unwrap();
        assert_eq!(bound_chip, chip);
        assert_eq!(bound_tcb, tcb);
        assert_eq!(vcek_pub, amd.vcek_for(&chip, &tcb).verifying_key());
    }

    #[test]
    fn chain_rejected_under_wrong_root() {
        let (_, kds) = setup();
        let other_amd = AmdRootOfTrust::from_seed([8; 32]);
        let chain = kds
            .vcek_chain(&ChipId::from_seed(1), &TcbVersion::default())
            .unwrap();
        assert!(matches!(
            chain.validate(&other_amd.ark_public_key()),
            Err(SnpError::ChainInvalid(_))
        ));
    }

    #[test]
    fn forged_ask_link_detected() {
        let (amd, kds) = setup();
        let mut chain = kds
            .vcek_chain(&ChipId::from_seed(1), &TcbVersion::default())
            .unwrap();
        // An attacker swaps in their own ASK cert (signed by their own key).
        let attacker = AmdRootOfTrust::from_seed([66; 32]);
        chain.ask = AmdCert::issue(
            "ASK",
            "ARK",
            attacker.ask_key().verifying_key(),
            None,
            attacker.ark_key(),
        );
        assert!(chain.validate(&amd.ark_public_key()).is_err());
    }

    #[test]
    fn tampered_binding_detected() {
        let (amd, kds) = setup();
        let mut chain = kds
            .vcek_chain(&ChipId::from_seed(1), &TcbVersion::default())
            .unwrap();
        // Re-pointing the binding at another chip breaks the ASK signature.
        chain.vcek.vcek_binding = Some((ChipId::from_seed(2), TcbVersion::default()));
        assert!(chain.validate(&amd.ark_public_key()).is_err());
    }

    #[test]
    fn cert_bytes_roundtrip() {
        let (_, kds) = setup();
        let chain = kds
            .vcek_chain(&ChipId::from_seed(5), &TcbVersion::new(2, 1, 9, 120))
            .unwrap();
        let decoded = VcekCertChain::from_bytes(&chain.to_bytes()).unwrap();
        assert_eq!(decoded, chain);
    }

    #[test]
    fn truncated_chain_rejected() {
        let (_, kds) = setup();
        let bytes = kds
            .vcek_chain(&ChipId::from_seed(5), &TcbVersion::default())
            .unwrap()
            .to_bytes();
        assert!(VcekCertChain::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }
}

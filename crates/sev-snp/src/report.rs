//! The SEV-SNP attestation report and its signed envelope.
//!
//! Field set mirrors the hardware `ATTESTATION_REPORT` structure (the
//! subset Revelio consumes): version, guest SVN, policy, measurement, host
//! data, `REPORT_DATA`, chip ID, and the current/reported TCB versions.
//! Serialization is deterministic ([`revelio_crypto::wire`]) because the
//! signature is computed over the encoded bytes.

use std::fmt;

use revelio_crypto::ed25519::{Signature, SigningKey, VerifyingKey, SIGNATURE_LEN};
use revelio_crypto::wire::{ByteReader, ByteWriter};

use crate::ids::{ChipId, GuestPolicy, TcbVersion};
use crate::measurement::Measurement;
use crate::SnpError;

/// Length of the caller-controlled `REPORT_DATA` field.
pub const REPORT_DATA_LEN: usize = 64;

/// The report structure version this simulator emits.
pub const REPORT_VERSION: u32 = 2;

/// 64 bytes of guest-chosen data cryptographically bound into a report.
///
/// Revelio uses this field to bind the VM's TLS identity (hash of the
/// public key, or hash of a CSR) to the hardware root of trust (§5.2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReportData([u8; REPORT_DATA_LEN]);

impl ReportData {
    /// Wraps a full 64-byte value.
    #[must_use]
    pub fn from_bytes(bytes: [u8; REPORT_DATA_LEN]) -> Self {
        ReportData(bytes)
    }

    /// Zero-pads (or truncates) arbitrary bytes into the field.
    ///
    /// Callers binding a hash should pass exactly 32 or 48 bytes; longer
    /// slices are truncated to 64.
    #[must_use]
    pub fn from_slice(data: &[u8]) -> Self {
        let mut out = [0u8; REPORT_DATA_LEN];
        let n = data.len().min(REPORT_DATA_LEN);
        out[..n].copy_from_slice(&data[..n]);
        ReportData(out)
    }

    /// The raw 64 bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; REPORT_DATA_LEN] {
        &self.0
    }
}

impl Default for ReportData {
    fn default() -> Self {
        ReportData([0; REPORT_DATA_LEN])
    }
}

impl fmt::Debug for ReportData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ReportData({}..)",
            &revelio_crypto::hex::encode(self.0)[..12]
        )
    }
}

/// The unsigned body of an attestation report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReport {
    /// Report structure version.
    pub version: u32,
    /// Guest security version number.
    pub guest_svn: u32,
    /// The launch policy the hypervisor supplied (and cannot change).
    pub policy: GuestPolicy,
    /// SHA-384 launch measurement taken by the AMD-SP.
    pub measurement: Measurement,
    /// 32 bytes of host-supplied data (opaque to the guest).
    pub host_data: [u8; 32],
    /// Guest-chosen data bound into the signature (TLS key hash, CSR hash).
    pub report_data: ReportData,
    /// Identity of the physical chip that produced the report.
    pub chip_id: ChipId,
    /// TCB version currently running.
    pub current_tcb: TcbVersion,
    /// TCB version the platform reports for endorsement lookup.
    pub reported_tcb: TcbVersion,
}

impl AttestationReport {
    /// Deterministic encoding — the byte string the VCEK signs.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(b"SNPREPRT");
        w.put_u32(self.version);
        w.put_u32(self.guest_svn);
        self.policy.encode(&mut w);
        w.put_bytes(self.measurement.as_bytes());
        w.put_bytes(&self.host_data);
        w.put_bytes(self.report_data.as_bytes());
        w.put_bytes(self.chip_id.as_bytes());
        w.put_u64(self.current_tcb.to_u64());
        w.put_u64(self.reported_tcb.to_u64());
        w.into_bytes()
    }

    /// Decodes a report body.
    ///
    /// # Errors
    ///
    /// Returns [`SnpError::Wire`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnpError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_array::<8>()?;
        if &magic != b"SNPREPRT" {
            return Err(SnpError::Wire(revelio_crypto::wire::WireError::UnknownTag(
                magic[0],
            )));
        }
        let version = r.get_u32()?;
        let guest_svn = r.get_u32()?;
        let policy = GuestPolicy::decode(&mut r)?;
        let measurement = Measurement::from_bytes(r.get_array::<48>()?);
        let host_data = r.get_array::<32>()?;
        let report_data = ReportData::from_bytes(r.get_array::<64>()?);
        let chip_id = ChipId::from_bytes(r.get_array::<64>()?);
        let current_tcb = TcbVersion::from_u64(r.get_u64()?);
        let reported_tcb = TcbVersion::from_u64(r.get_u64()?);
        r.finish()?;
        Ok(AttestationReport {
            version,
            guest_svn,
            policy,
            measurement,
            host_data,
            report_data,
            chip_id,
            current_tcb,
            reported_tcb,
        })
    }
}

/// A report plus the VCEK signature over its encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedReport {
    /// The report body.
    pub report: AttestationReport,
    /// VCEK signature over [`AttestationReport::to_bytes`].
    pub signature: Signature,
}

impl SignedReport {
    /// Signs `report` with the platform's VCEK (called by the AMD-SP
    /// simulation only).
    #[must_use]
    pub(crate) fn sign(report: AttestationReport, vcek: &SigningKey) -> Self {
        let signature = vcek.sign(&report.to_bytes());
        SignedReport { report, signature }
    }

    /// Checks the signature against a VCEK public key.
    ///
    /// This verifies the *signature only*; full verification (certificate
    /// chain, chip binding, measurement) lives in
    /// [`crate::verify::ReportVerifier`].
    ///
    /// # Errors
    ///
    /// Returns [`SnpError::SignatureInvalid`] when the signature fails.
    pub fn verify_signature(&self, vcek_public: &VerifyingKey) -> Result<(), SnpError> {
        vcek_public
            .verify(&self.report.to_bytes(), &self.signature)
            .map_err(|_| SnpError::SignatureInvalid)
    }

    /// Serializes report and signature.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_var_bytes(&self.report.to_bytes());
        w.put_bytes(&self.signature.to_bytes());
        w.into_bytes()
    }

    /// Decodes a signed report.
    ///
    /// # Errors
    ///
    /// Returns [`SnpError::Wire`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnpError> {
        let mut r = ByteReader::new(bytes);
        let body = r.get_var_bytes()?.to_vec();
        let sig = r.get_array::<SIGNATURE_LEN>()?;
        r.finish()?;
        Ok(SignedReport {
            report: AttestationReport::from_bytes(&body)?,
            signature: Signature::from_bytes(sig),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_report() -> AttestationReport {
        AttestationReport {
            version: REPORT_VERSION,
            guest_svn: 3,
            policy: GuestPolicy::default(),
            measurement: Measurement::of_launch_context(b"fw"),
            host_data: [7; 32],
            report_data: ReportData::from_slice(b"tls key hash"),
            chip_id: ChipId::from_seed(1),
            current_tcb: TcbVersion::new(1, 0, 8, 115),
            reported_tcb: TcbVersion::new(1, 0, 8, 115),
        }
    }

    #[test]
    fn report_bytes_roundtrip() {
        let r = sample_report();
        assert_eq!(AttestationReport::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample_report().to_bytes(), sample_report().to_bytes());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_report().to_bytes();
        bytes[0] = b'X';
        assert!(AttestationReport::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_report_rejected() {
        let bytes = sample_report().to_bytes();
        assert!(AttestationReport::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn signed_report_roundtrip_and_verify() {
        let key = SigningKey::from_seed(&[5; 32]);
        let signed = SignedReport::sign(sample_report(), &key);
        let decoded = SignedReport::from_bytes(&signed.to_bytes()).unwrap();
        assert_eq!(decoded, signed);
        decoded.verify_signature(&key.verifying_key()).unwrap();
    }

    #[test]
    fn signature_covers_every_field() {
        let key = SigningKey::from_seed(&[5; 32]);
        let signed = SignedReport::sign(sample_report(), &key);

        let mut tampered = signed.clone();
        tampered.report.guest_svn = 99;
        assert_eq!(
            tampered.verify_signature(&key.verifying_key()),
            Err(SnpError::SignatureInvalid)
        );

        let mut tampered = signed.clone();
        tampered.report.report_data = ReportData::from_slice(b"other key");
        assert!(tampered.verify_signature(&key.verifying_key()).is_err());

        let mut tampered = signed;
        tampered.report.measurement = Measurement::of_launch_context(b"evil fw");
        assert!(tampered.verify_signature(&key.verifying_key()).is_err());
    }

    #[test]
    fn report_data_from_slice_pads_and_truncates() {
        let short = ReportData::from_slice(b"abc");
        assert_eq!(&short.as_bytes()[..3], b"abc");
        assert!(short.as_bytes()[3..].iter().all(|&b| b == 0));

        let long = ReportData::from_slice(&[1u8; 100]);
        assert_eq!(long.as_bytes(), &[1u8; 64]);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_fields(
            guest_svn: u32,
            host_data: [u8; 32],
            rd: [u8; 64],
            chip_seed: u64,
            tcb: u64,
        ) {
            let r = AttestationReport {
                version: REPORT_VERSION,
                guest_svn,
                policy: GuestPolicy::default(),
                measurement: Measurement::of_launch_context(b"fw"),
                host_data,
                report_data: ReportData::from_bytes(rd),
                chip_id: ChipId::from_seed(chip_seed),
                current_tcb: TcbVersion::from_u64(tcb),
                reported_tcb: TcbVersion::from_u64(tcb),
            };
            prop_assert_eq!(AttestationReport::from_bytes(&r.to_bytes()).unwrap(), r);
        }
    }
}

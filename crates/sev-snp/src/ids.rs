//! Platform and guest identities: chip IDs, TCB versions, guest policies.

use std::fmt;

use revelio_crypto::sha2::Sha512;
use revelio_crypto::wire::{ByteReader, ByteWriter, WireError};
use revelio_crypto::{hex, CryptoError};

/// The unique, immutable identifier of a physical SEV-SNP processor.
///
/// Real chips expose a 64-byte ID derived from fused secrets; the simulator
/// derives one deterministically from a seed so fleets of distinct
/// "machines" can be manufactured in tests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChipId([u8; 64]);

impl ChipId {
    /// Byte length of a chip ID.
    pub const LEN: usize = 64;

    /// Creates a chip ID from raw bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 64]) -> Self {
        ChipId(bytes)
    }

    /// Deterministically manufactures the ID of the `n`-th simulated chip.
    #[must_use]
    pub fn from_seed(n: u64) -> Self {
        let mut input = *b"sev-snp-sim chip id                                             ";
        input[..8].copy_from_slice(&n.to_le_bytes());
        ChipId(Sha512::digest(input))
    }

    /// The raw 64 bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 64] {
        &self.0
    }

    /// Parses from hex (128 characters).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidHex`] or
    /// [`CryptoError::InvalidLength`] for malformed input.
    pub fn from_hex(s: &str) -> Result<Self, CryptoError> {
        Ok(ChipId(hex::decode_array::<64>(s)?))
    }

    /// Lowercase hex encoding.
    #[must_use]
    pub fn to_hex(&self) -> String {
        hex::encode(self.0)
    }
}

impl fmt::Debug for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChipId({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// The security-patch level of the platform's trusted components.
///
/// Mirrors the SEV-SNP `TCB_VERSION` layout: four independently-versioned
/// firmware components packed into a `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TcbVersion {
    /// AMD-SP bootloader security version number.
    pub bootloader: u8,
    /// AMD-SP OS (TEE) security version number.
    pub tee: u8,
    /// SNP firmware security version number.
    pub snp: u8,
    /// CPU microcode security version number.
    pub microcode: u8,
}

impl TcbVersion {
    /// Creates a TCB version from its four components.
    #[must_use]
    pub fn new(bootloader: u8, tee: u8, snp: u8, microcode: u8) -> Self {
        TcbVersion {
            bootloader,
            tee,
            snp,
            microcode,
        }
    }

    /// Packs into the on-report `u64` form.
    #[must_use]
    pub fn to_u64(self) -> u64 {
        u64::from(self.bootloader)
            | (u64::from(self.tee) << 8)
            | (u64::from(self.snp) << 48)
            | (u64::from(self.microcode) << 56)
    }

    /// Unpacks from the on-report `u64` form.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        TcbVersion {
            bootloader: v as u8,
            tee: (v >> 8) as u8,
            snp: (v >> 48) as u8,
            microcode: (v >> 56) as u8,
        }
    }
}

impl fmt::Display for TcbVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bl{}-tee{}-snp{}-ucode{}",
            self.bootloader, self.tee, self.snp, self.microcode
        )
    }
}

/// The guest policy supplied at launch and echoed in every report.
///
/// The hypervisor cannot weaken it after launch; verifiers reject reports
/// whose policy permits debugging (which would let the host read guest
/// memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GuestPolicy {
    /// Minimum ABI major version the guest requires.
    pub abi_major: u8,
    /// Minimum ABI minor version the guest requires.
    pub abi_minor: u8,
    /// Whether the host may attach a debugger (decrypts guest memory!).
    pub debug_allowed: bool,
    /// Whether migration agents may move this guest between machines.
    pub migrate_allowed: bool,
    /// Whether simultaneous multithreading is permitted on the host.
    pub smt_allowed: bool,
    /// Restrict the guest to a single CPU socket.
    pub single_socket: bool,
}

impl Default for GuestPolicy {
    /// The paper's deployment policy: no debug, no migration, SMT allowed.
    fn default() -> Self {
        GuestPolicy {
            abi_major: 1,
            abi_minor: 51,
            debug_allowed: false,
            migrate_allowed: false,
            smt_allowed: true,
            single_socket: false,
        }
    }
}

impl GuestPolicy {
    /// Packs into the on-report `u64` form.
    #[must_use]
    pub fn to_u64(self) -> u64 {
        u64::from(self.abi_minor)
            | (u64::from(self.abi_major) << 8)
            | (u64::from(self.smt_allowed) << 16)
            | (u64::from(self.migrate_allowed) << 18)
            | (u64::from(self.debug_allowed) << 19)
            | (u64::from(self.single_socket) << 20)
    }

    /// Unpacks from the on-report `u64` form.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        GuestPolicy {
            abi_minor: v as u8,
            abi_major: (v >> 8) as u8,
            smt_allowed: (v >> 16) & 1 == 1,
            migrate_allowed: (v >> 18) & 1 == 1,
            debug_allowed: (v >> 19) & 1 == 1,
            single_socket: (v >> 20) & 1 == 1,
        }
    }

    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.to_u64());
    }

    pub(crate) fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(GuestPolicy::from_u64(r.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn chip_ids_are_distinct_per_seed() {
        assert_ne!(ChipId::from_seed(1), ChipId::from_seed(2));
        assert_eq!(ChipId::from_seed(7), ChipId::from_seed(7));
    }

    #[test]
    fn chip_id_hex_roundtrip() {
        let id = ChipId::from_seed(42);
        assert_eq!(ChipId::from_hex(&id.to_hex()).unwrap(), id);
    }

    #[test]
    fn chip_id_rejects_short_hex() {
        assert!(ChipId::from_hex("abcd").is_err());
    }

    #[test]
    fn tcb_u64_roundtrip_known_layout() {
        let tcb = TcbVersion::new(2, 0, 6, 115);
        let packed = tcb.to_u64();
        assert_eq!(packed & 0xff, 2);
        assert_eq!((packed >> 56) & 0xff, 115);
        assert_eq!(TcbVersion::from_u64(packed), tcb);
    }

    #[test]
    fn tcb_ordering_tracks_components() {
        let old = TcbVersion::new(1, 0, 6, 100);
        let new = TcbVersion::new(1, 0, 8, 100);
        assert!(new > old);
    }

    #[test]
    fn default_policy_forbids_debug() {
        let p = GuestPolicy::default();
        assert!(!p.debug_allowed);
        assert!(!p.migrate_allowed);
    }

    proptest! {
        #[test]
        fn policy_u64_roundtrip(
            abi_major: u8, abi_minor: u8,
            debug: bool, migrate: bool, smt: bool, single: bool,
        ) {
            let p = GuestPolicy {
                abi_major, abi_minor,
                debug_allowed: debug,
                migrate_allowed: migrate,
                smt_allowed: smt,
                single_socket: single,
            };
            prop_assert_eq!(GuestPolicy::from_u64(p.to_u64()), p);
        }

        #[test]
        fn tcb_u64_roundtrip(b: u8, t: u8, s: u8, m: u8) {
            let tcb = TcbVersion::new(b, t, s, m);
            prop_assert_eq!(TcbVersion::from_u64(tcb.to_u64()), tcb);
        }
    }
}

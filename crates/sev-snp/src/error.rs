//! Error type for the simulated SEV-SNP platform.

use std::error::Error;
use std::fmt;

use revelio_crypto::wire::WireError;
use revelio_crypto::CryptoError;

/// Errors surfaced by the simulated platform, KDS, and verifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnpError {
    /// The guest policy was rejected at launch (e.g. unsupported ABI).
    PolicyRejected(String),
    /// A signature over a report or certificate failed to verify.
    SignatureInvalid,
    /// A certificate chain did not validate; the message names the link.
    ChainInvalid(String),
    /// The VCEK certificate does not endorse this chip/TCB combination.
    EndorsementMismatch,
    /// The report's TCB or chip identity disagrees with the certificate.
    ReportBindingMismatch,
    /// Malformed serialized data.
    Wire(WireError),
    /// An underlying cryptographic failure.
    Crypto(CryptoError),
}

impl fmt::Display for SnpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnpError::PolicyRejected(why) => write!(f, "guest policy rejected: {why}"),
            SnpError::SignatureInvalid => write!(f, "attestation signature invalid"),
            SnpError::ChainInvalid(link) => write!(f, "certificate chain invalid: {link}"),
            SnpError::EndorsementMismatch => {
                write!(f, "vcek certificate does not endorse this chip and tcb")
            }
            SnpError::ReportBindingMismatch => {
                write!(f, "report chip or tcb disagrees with vcek certificate")
            }
            SnpError::Wire(e) => write!(f, "wire format error: {e}"),
            SnpError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl Error for SnpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnpError::Wire(e) => Some(e),
            SnpError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for SnpError {
    fn from(e: WireError) -> Self {
        SnpError::Wire(e)
    }
}

impl From<CryptoError> for SnpError {
    fn from(e: CryptoError) -> Self {
        SnpError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(SnpError::PolicyRejected("debug".into())
            .to_string()
            .contains("debug"));
        assert!(SnpError::ChainInvalid("ask".into())
            .to_string()
            .contains("ask"));
    }

    #[test]
    fn source_chains_through() {
        let e = SnpError::from(CryptoError::InvalidSignature);
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&SnpError::SignatureInvalid).is_none());
    }
}

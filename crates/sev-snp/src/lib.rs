//! A software simulation of the AMD SEV-SNP confidential-computing platform.
//!
//! Revelio (Galanou et al., Middleware 2023) builds on four SEV-SNP
//! capabilities; this crate reproduces all of them with the same interfaces
//! and trust relationships, in pure Rust:
//!
//! 1. **Launch measurement** — the AMD secure processor (AMD-SP) takes a
//!    SHA-384 digest over the guest's initial memory context (the virtual
//!    firmware under measured direct boot). See [`measurement`].
//! 2. **Remote attestation** — a guest can ask its AMD-SP for an
//!    [`report::AttestationReport`] carrying the measurement, the chip
//!    identity, the TCB version, the guest policy and 64 bytes of
//!    caller-chosen `REPORT_DATA`, signed by the Versioned Chip Endorsement
//!    Key (VCEK). See [`platform::GuestContext::attestation_report`].
//! 3. **VCEK endorsement** — AMD's Key Distribution Service hands out the
//!    ARK → ASK → VCEK certificate chain that roots every report in AMD's
//!    (here: the simulation's) root of trust. See [`kds`].
//! 4. **Sealing keys** — a guest can derive keys bound to its measurement
//!    and platform so only an identically-measured VM on the same chip can
//!    re-derive them. See [`sealing`].
//!
//! # Fidelity and substitutions
//!
//! Report fields mirror the SEV-SNP `ATTESTATION_REPORT` structure (policy,
//! measurement, `REPORT_DATA`, chip id, current/reported TCB). Signatures
//! use Ed25519 instead of ECDSA-P384 and the "hardware" secrets are seeds
//! held by [`platform::AmdRootOfTrust`]; both substitutions are documented
//! in the workspace `DESIGN.md` and preserve every trust relationship the
//! Revelio protocol relies on.
//!
//! # Example: attest a guest and verify the report
//!
//! ```
//! use sev_snp::platform::{AmdRootOfTrust, SnpPlatform};
//! use sev_snp::ids::{ChipId, GuestPolicy, TcbVersion};
//! use sev_snp::kds::KeyDistributionService;
//! use sev_snp::report::ReportData;
//! use sev_snp::verify::ReportVerifier;
//! use std::sync::Arc;
//!
//! // "AMD" manufactures a chip and the KDS knows its root of trust.
//! let amd = Arc::new(AmdRootOfTrust::from_seed([1; 32]));
//! let platform = SnpPlatform::new(Arc::clone(&amd), ChipId::from_seed(7), TcbVersion::new(1, 0, 8, 115));
//! let kds = KeyDistributionService::new(Arc::clone(&amd));
//!
//! // The hypervisor launches a guest; AMD-SP measures the firmware.
//! let guest = platform.launch(b"firmware image", GuestPolicy::default())?;
//! let report = guest.attestation_report(ReportData::from_slice(b"nonce"));
//!
//! // A remote verifier fetches the VCEK chain and checks everything.
//! let chain = kds.vcek_chain(&platform.chip_id(), &platform.tcb_version())?;
//! let verifier = ReportVerifier::new(amd.ark_public_key());
//! verifier.verify(&report, &chain)?;
//! # Ok::<(), sev_snp::SnpError>(())
//! ```

pub mod error;
pub mod ids;
pub mod kds;
pub mod measurement;
pub mod platform;
pub mod report;
pub mod sealing;
pub mod verify;
pub mod vtpm;

pub use error::SnpError;

//! The simulated hardware: AMD's root of trust, per-machine platforms
//! (chips with their AMD-SP), and launched guest contexts.

use std::sync::Arc;

use revelio_crypto::ed25519::{SigningKey, VerifyingKey};
use revelio_crypto::hmac::Hmac;
use revelio_crypto::sha2::Sha256;

use crate::ids::{ChipId, GuestPolicy, TcbVersion};
use crate::measurement::Measurement;
use crate::report::{AttestationReport, ReportData, SignedReport, REPORT_VERSION};
use crate::sealing::SealingKeyRequest;
use crate::SnpError;

/// AMD's manufacturing root of trust (simulated).
///
/// Owns the master seed from which the ARK, the ASK and every chip's
/// VCEK/sealing secrets are derived — the role AMD's factory and signing
/// infrastructure play for real hardware. Tests and simulations create one
/// of these, "manufacture" any number of [`SnpPlatform`]s from it, and hand
/// the same instance to the [`crate::kds::KeyDistributionService`].
#[derive(Clone)]
pub struct AmdRootOfTrust {
    master_seed: [u8; 32],
    ark: SigningKey,
    ask: SigningKey,
}

impl std::fmt::Debug for AmdRootOfTrust {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmdRootOfTrust")
            .field("ark", &self.ark.verifying_key())
            .finish_non_exhaustive()
    }
}

fn derive_seed(master: &[u8; 32], label: &str, context: &[u8]) -> [u8; 32] {
    let mut mac = Hmac::<Sha256>::new(master);
    mac.update(label.as_bytes());
    mac.update(&[0]);
    mac.update(context);
    mac.finalize().try_into().expect("32 bytes")
}

impl AmdRootOfTrust {
    /// Creates the root of trust from a master seed.
    #[must_use]
    pub fn from_seed(master_seed: [u8; 32]) -> Self {
        let ark = SigningKey::from_seed(&derive_seed(&master_seed, "amd/ark", &[]));
        let ask = SigningKey::from_seed(&derive_seed(&master_seed, "amd/ask", &[]));
        AmdRootOfTrust {
            master_seed,
            ark,
            ask,
        }
    }

    /// The ARK public key — the single value remote verifiers must trust
    /// out-of-band (they'd pin AMD's published root certificate in
    /// reality).
    #[must_use]
    pub fn ark_public_key(&self) -> VerifyingKey {
        self.ark.verifying_key()
    }

    pub(crate) fn ark_key(&self) -> &SigningKey {
        &self.ark
    }

    pub(crate) fn ask_key(&self) -> &SigningKey {
        &self.ask
    }

    /// Derives the VCEK for a chip at a TCB level. Versioned: a platform
    /// that updates its TCB gets a *different* endorsement key, exactly as
    /// on real hardware.
    #[must_use]
    pub(crate) fn vcek_for(&self, chip_id: &ChipId, tcb: &TcbVersion) -> SigningKey {
        let mut context = Vec::with_capacity(72);
        context.extend_from_slice(chip_id.as_bytes());
        context.extend_from_slice(&tcb.to_u64().to_le_bytes());
        SigningKey::from_seed(&derive_seed(&self.master_seed, "amd/vcek", &context))
    }

    /// The per-chip secret that sealing keys are derived from (stands in
    /// for fused hardware secrets).
    #[must_use]
    pub(crate) fn chip_sealing_secret(&self, chip_id: &ChipId) -> [u8; 32] {
        derive_seed(&self.master_seed, "amd/seal", chip_id.as_bytes())
    }
}

/// One physical machine: a chip with its AMD secure processor.
#[derive(Clone)]
pub struct SnpPlatform {
    chip_id: ChipId,
    tcb: TcbVersion,
    vcek: SigningKey,
    sealing_secret: [u8; 32],
}

impl std::fmt::Debug for SnpPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnpPlatform")
            .field("chip_id", &self.chip_id)
            .field("tcb", &self.tcb)
            .finish_non_exhaustive()
    }
}

impl SnpPlatform {
    /// Manufactures a platform: fuses the chip's VCEK and sealing secret
    /// from AMD's root of trust.
    #[must_use]
    pub fn new(amd: Arc<AmdRootOfTrust>, chip_id: ChipId, tcb: TcbVersion) -> Self {
        SnpPlatform {
            vcek: amd.vcek_for(&chip_id, &tcb),
            sealing_secret: amd.chip_sealing_secret(&chip_id),
            chip_id,
            tcb,
        }
    }

    /// This chip's identity.
    #[must_use]
    pub fn chip_id(&self) -> ChipId {
        self.chip_id
    }

    /// The platform's current TCB version.
    #[must_use]
    pub fn tcb_version(&self) -> TcbVersion {
        self.tcb
    }

    /// Launches a confidential guest: measures `initial_memory` (the
    /// firmware volume under direct boot) and pins `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`SnpError::PolicyRejected`] for a policy this platform
    /// cannot honour (ABI major 0, or debug+migrate combined — the
    /// simulator mirrors firmware checks).
    pub fn launch(
        &self,
        initial_memory: &[u8],
        policy: GuestPolicy,
    ) -> Result<GuestContext, SnpError> {
        if policy.abi_major == 0 {
            return Err(SnpError::PolicyRejected("abi major version 0".into()));
        }
        if policy.debug_allowed && policy.migrate_allowed {
            return Err(SnpError::PolicyRejected(
                "debug and migration cannot be combined".into(),
            ));
        }
        Ok(GuestContext {
            measurement: Measurement::of_launch_context(initial_memory),
            policy,
            chip_id: self.chip_id,
            tcb: self.tcb,
            vcek: self.vcek.clone(),
            sealing_secret: self.sealing_secret,
            guest_svn: 1,
        })
    }
}

/// A launched confidential guest's view of its AMD-SP — the moral
/// equivalent of `/dev/sev-guest` inside the VM.
///
/// The measurement is fixed at launch; `REPORT_DATA` varies per request
/// over the protected guest↔AMD-SP path (§2.1.1).
#[derive(Clone)]
pub struct GuestContext {
    measurement: Measurement,
    policy: GuestPolicy,
    chip_id: ChipId,
    tcb: TcbVersion,
    vcek: SigningKey,
    sealing_secret: [u8; 32],
    guest_svn: u32,
}

impl std::fmt::Debug for GuestContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuestContext")
            .field("measurement", &self.measurement)
            .field("chip_id", &self.chip_id)
            .finish_non_exhaustive()
    }
}

impl GuestContext {
    /// The launch measurement of this guest.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// The policy pinned at launch.
    #[must_use]
    pub fn policy(&self) -> GuestPolicy {
        self.policy
    }

    /// The chip this guest runs on.
    #[must_use]
    pub fn chip_id(&self) -> ChipId {
        self.chip_id
    }

    /// Requests a VCEK-signed attestation report carrying `report_data`.
    #[must_use]
    pub fn attestation_report(&self, report_data: ReportData) -> SignedReport {
        self.attestation_report_with_host_data(report_data, [0; 32])
    }

    /// Like [`GuestContext::attestation_report`] with hypervisor-supplied
    /// `HOST_DATA`.
    #[must_use]
    pub fn attestation_report_with_host_data(
        &self,
        report_data: ReportData,
        host_data: [u8; 32],
    ) -> SignedReport {
        let report = AttestationReport {
            version: REPORT_VERSION,
            guest_svn: self.guest_svn,
            policy: self.policy,
            measurement: self.measurement,
            host_data,
            report_data,
            chip_id: self.chip_id,
            current_tcb: self.tcb,
            reported_tcb: self.tcb,
        };
        SignedReport::sign(report, &self.vcek)
    }

    /// Derives a sealing key per `request` (§2.1.3). With the default
    /// request the key is bound to this guest's measurement and chip: only
    /// an identical VM on the same platform can re-derive it.
    #[must_use]
    pub fn derive_sealing_key(&self, request: &SealingKeyRequest) -> [u8; 32] {
        request.derive(
            &self.sealing_secret,
            &self.measurement,
            &self.policy,
            &self.tcb,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amd() -> Arc<AmdRootOfTrust> {
        Arc::new(AmdRootOfTrust::from_seed([9; 32]))
    }

    #[test]
    fn launch_measures_initial_memory() {
        let p = SnpPlatform::new(amd(), ChipId::from_seed(1), TcbVersion::new(1, 0, 8, 115));
        let g1 = p.launch(b"fw-a", GuestPolicy::default()).unwrap();
        let g2 = p.launch(b"fw-a", GuestPolicy::default()).unwrap();
        let g3 = p.launch(b"fw-b", GuestPolicy::default()).unwrap();
        assert_eq!(g1.measurement(), g2.measurement());
        assert_ne!(g1.measurement(), g3.measurement());
    }

    #[test]
    fn policy_abi_zero_rejected() {
        let p = SnpPlatform::new(amd(), ChipId::from_seed(1), TcbVersion::default());
        let policy = GuestPolicy {
            abi_major: 0,
            ..GuestPolicy::default()
        };
        assert!(matches!(
            p.launch(b"fw", policy),
            Err(SnpError::PolicyRejected(_))
        ));
    }

    #[test]
    fn debug_plus_migrate_rejected() {
        let p = SnpPlatform::new(amd(), ChipId::from_seed(1), TcbVersion::default());
        let policy = GuestPolicy {
            debug_allowed: true,
            migrate_allowed: true,
            ..GuestPolicy::default()
        };
        assert!(p.launch(b"fw", policy).is_err());
    }

    #[test]
    fn report_reflects_guest_state() {
        let p = SnpPlatform::new(amd(), ChipId::from_seed(3), TcbVersion::new(1, 0, 8, 115));
        let g = p.launch(b"fw", GuestPolicy::default()).unwrap();
        let signed = g.attestation_report(ReportData::from_slice(b"nonce"));
        assert_eq!(signed.report.measurement, g.measurement());
        assert_eq!(signed.report.chip_id, p.chip_id());
        assert_eq!(signed.report.reported_tcb, p.tcb_version());
        assert_eq!(&signed.report.report_data.as_bytes()[..5], b"nonce");
    }

    #[test]
    fn report_signature_verifies_with_derived_vcek() {
        let root = amd();
        let chip = ChipId::from_seed(4);
        let tcb = TcbVersion::new(1, 0, 8, 115);
        let p = SnpPlatform::new(Arc::clone(&root), chip, tcb);
        let g = p.launch(b"fw", GuestPolicy::default()).unwrap();
        let signed = g.attestation_report(ReportData::default());
        let vcek_pub = root.vcek_for(&chip, &tcb).verifying_key();
        signed.verify_signature(&vcek_pub).unwrap();
    }

    #[test]
    fn vcek_is_versioned_by_tcb() {
        let root = amd();
        let chip = ChipId::from_seed(4);
        let old = root.vcek_for(&chip, &TcbVersion::new(1, 0, 7, 100));
        let new = root.vcek_for(&chip, &TcbVersion::new(1, 0, 8, 100));
        assert_ne!(old.verifying_key(), new.verifying_key());
    }

    #[test]
    fn vcek_differs_per_chip() {
        let root = amd();
        let tcb = TcbVersion::new(1, 0, 8, 115);
        let a = root.vcek_for(&ChipId::from_seed(1), &tcb);
        let b = root.vcek_for(&ChipId::from_seed(2), &tcb);
        assert_ne!(a.verifying_key(), b.verifying_key());
    }

    #[test]
    fn distinct_roots_of_trust_disagree() {
        let a = AmdRootOfTrust::from_seed([1; 32]);
        let b = AmdRootOfTrust::from_seed([2; 32]);
        assert_ne!(a.ark_public_key(), b.ark_public_key());
    }
}

//! Full attestation-report verification, as the paper's web extension
//! performs it (§5.3.2): certificate chain, report↔certificate binding,
//! signature, and policy sanity.
//!
//! Measurement comparison against golden values is deliberately *not* here:
//! which measurements are acceptable is Revelio policy (trusted registry,
//! user-supplied values) and lives in the `revelio` crate.

use revelio_crypto::ed25519::{verify_batch, BatchItem, VerifyingKey};

use crate::ids::TcbVersion;
use crate::kds::VcekCertChain;
use crate::report::SignedReport;
use crate::SnpError;

/// Signature equations one full report verification checks: the ARK
/// self-signature, the ASK and VCEK certificate signatures, and the
/// VCEK signature over the report body.
pub const SIGNATURE_CHECKS_PER_VERIFY: u64 = 4;

/// Verifies signed reports against a pinned AMD root key.
#[derive(Debug, Clone)]
pub struct ReportVerifier {
    trusted_ark: VerifyingKey,
    reject_debug_policy: bool,
    minimum_tcb: Option<TcbVersion>,
}

impl ReportVerifier {
    /// Creates a verifier that pins `trusted_ark` (AMD's published root) and
    /// rejects debug-enabled guests.
    #[must_use]
    pub fn new(trusted_ark: VerifyingKey) -> Self {
        ReportVerifier {
            trusted_ark,
            reject_debug_policy: true,
            minimum_tcb: None,
        }
    }

    /// Permits debug-enabled guest policies (useful only in development
    /// pipelines; never in production verification).
    #[must_use]
    pub fn allow_debug_policy(mut self) -> Self {
        self.reject_debug_policy = false;
        self
    }

    /// Rejects reports whose reported TCB has *any* component below
    /// `minimum` — the defense against firmware-downgrade attacks: a valid
    /// VCEK chain for an old, vulnerable firmware otherwise verifies.
    #[must_use]
    pub fn require_minimum_tcb(mut self, minimum: TcbVersion) -> Self {
        self.minimum_tcb = Some(minimum);
        self
    }

    /// Verifies `signed` against `chain`:
    ///
    /// 1. the chain terminates at the pinned ARK,
    /// 2. the VCEK certificate endorses exactly the chip and TCB named in
    ///    the report,
    /// 3. the VCEK signature over the report body verifies,
    /// 4. the guest policy does not permit debugging (host memory access).
    ///
    /// # Errors
    ///
    /// Returns the specific [`SnpError`] for whichever check fails first.
    pub fn verify(&self, signed: &SignedReport, chain: &VcekCertChain) -> Result<(), SnpError> {
        let (vcek_public, (bound_chip, bound_tcb)) = chain.validate(&self.trusted_ark)?;
        if bound_chip != signed.report.chip_id || bound_tcb != signed.report.reported_tcb {
            return Err(SnpError::ReportBindingMismatch);
        }
        signed.verify_signature(&vcek_public)?;
        if self.reject_debug_policy && signed.report.policy.debug_allowed {
            return Err(SnpError::PolicyRejected("debug access enabled".into()));
        }
        if let Some(min) = self.minimum_tcb {
            let t = signed.report.reported_tcb;
            let ok = t.bootloader >= min.bootloader
                && t.tee >= min.tee
                && t.snp >= min.snp
                && t.microcode >= min.microcode;
            if !ok {
                return Err(SnpError::PolicyRejected(format!(
                    "reported tcb {t} below required minimum {min}"
                )));
            }
        }
        Ok(())
    }

    /// [`Self::verify`] with the four signature checks collapsed into one
    /// batched group equation ([`verify_batch`]), sharing a single
    /// doubling chain across the ARK, ASK, VCEK, and report signatures.
    ///
    /// Accepts and rejects exactly the same inputs as [`Self::verify`]:
    /// whenever the batched equation (or any structural precondition)
    /// fails, this falls back to the sequential path so the caller sees
    /// the same first-failing [`SnpError`] it always did.
    ///
    /// # Errors
    ///
    /// Identical to [`Self::verify`].
    pub fn verify_batched(
        &self,
        signed: &SignedReport,
        chain: &VcekCertChain,
    ) -> Result<(), SnpError> {
        // Structural preconditions of the combined equation. Any failure
        // here (or in the batch itself) defers to the sequential path,
        // which reproduces the canonical check order and error.
        let plausible = chain.ark.public_key == self.trusted_ark
            && chain.vcek.vcek_binding.as_ref().is_some_and(|(chip, tcb)| {
                *chip == signed.report.chip_id && *tcb == signed.report.reported_tcb
            });
        if !plausible {
            return self.verify(signed, chain);
        }
        let ark_payload = chain.ark.signed_payload();
        let ask_payload = chain.ask.signed_payload();
        let vcek_payload = chain.vcek.signed_payload();
        let report_payload = signed.report.to_bytes();
        let items = [
            BatchItem {
                key: &self.trusted_ark,
                message: &ark_payload,
                signature: &chain.ark.signature,
            },
            BatchItem {
                key: &chain.ark.public_key,
                message: &ask_payload,
                signature: &chain.ask.signature,
            },
            BatchItem {
                key: &chain.ask.public_key,
                message: &vcek_payload,
                signature: &chain.vcek.signature,
            },
            BatchItem {
                key: &chain.vcek.public_key,
                message: &report_payload,
                signature: &signed.signature,
            },
        ];
        if verify_batch(&items).is_err() {
            // The batch cannot name the culprit; the sequential pass can,
            // and it is the error-compatibility oracle.
            return match self.verify(signed, chain) {
                Ok(()) => Err(SnpError::SignatureInvalid),
                Err(e) => Err(e),
            };
        }
        if self.reject_debug_policy && signed.report.policy.debug_allowed {
            return Err(SnpError::PolicyRejected("debug access enabled".into()));
        }
        if let Some(min) = self.minimum_tcb {
            let t = signed.report.reported_tcb;
            let ok = t.bootloader >= min.bootloader
                && t.tee >= min.tee
                && t.snp >= min.snp
                && t.microcode >= min.microcode;
            if !ok {
                return Err(SnpError::PolicyRejected(format!(
                    "reported tcb {t} below required minimum {min}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ChipId, GuestPolicy, TcbVersion};
    use crate::kds::KeyDistributionService;
    use crate::platform::{AmdRootOfTrust, SnpPlatform};
    use crate::report::ReportData;
    use std::sync::Arc;

    struct World {
        amd: Arc<AmdRootOfTrust>,
        kds: KeyDistributionService,
        platform: SnpPlatform,
    }

    fn world() -> World {
        let amd = Arc::new(AmdRootOfTrust::from_seed([11; 32]));
        let kds = KeyDistributionService::new(Arc::clone(&amd));
        let platform = SnpPlatform::new(
            Arc::clone(&amd),
            ChipId::from_seed(1),
            TcbVersion::new(1, 0, 8, 115),
        );
        World { amd, kds, platform }
    }

    #[test]
    fn end_to_end_verification_succeeds() {
        let w = world();
        let guest = w.platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let report = guest.attestation_report(ReportData::from_slice(b"nonce"));
        let chain = w
            .kds
            .vcek_chain(&w.platform.chip_id(), &w.platform.tcb_version())
            .unwrap();
        ReportVerifier::new(w.amd.ark_public_key())
            .verify(&report, &chain)
            .unwrap();
    }

    #[test]
    fn chain_for_wrong_chip_rejected() {
        let w = world();
        let guest = w.platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let report = guest.attestation_report(ReportData::default());
        // KDS chain fetched for a *different* chip: binding mismatch.
        let chain = w
            .kds
            .vcek_chain(&ChipId::from_seed(99), &w.platform.tcb_version())
            .unwrap();
        assert_eq!(
            ReportVerifier::new(w.amd.ark_public_key()).verify(&report, &chain),
            Err(SnpError::ReportBindingMismatch)
        );
    }

    #[test]
    fn chain_for_wrong_tcb_rejected() {
        let w = world();
        let guest = w.platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let report = guest.attestation_report(ReportData::default());
        let chain = w
            .kds
            .vcek_chain(&w.platform.chip_id(), &TcbVersion::new(0, 0, 1, 1))
            .unwrap();
        assert!(ReportVerifier::new(w.amd.ark_public_key())
            .verify(&report, &chain)
            .is_err());
    }

    #[test]
    fn tampered_report_rejected() {
        let w = world();
        let guest = w.platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let mut report = guest.attestation_report(ReportData::default());
        report.report.guest_svn += 1;
        let chain = w
            .kds
            .vcek_chain(&w.platform.chip_id(), &w.platform.tcb_version())
            .unwrap();
        assert_eq!(
            ReportVerifier::new(w.amd.ark_public_key()).verify(&report, &chain),
            Err(SnpError::SignatureInvalid)
        );
    }

    #[test]
    fn debug_policy_rejected_by_default_but_optional() {
        let w = world();
        let policy = GuestPolicy {
            debug_allowed: true,
            ..GuestPolicy::default()
        };
        let guest = w.platform.launch(b"fw", policy).unwrap();
        let report = guest.attestation_report(ReportData::default());
        let chain = w
            .kds
            .vcek_chain(&w.platform.chip_id(), &w.platform.tcb_version())
            .unwrap();
        let verifier = ReportVerifier::new(w.amd.ark_public_key());
        assert!(matches!(
            verifier.verify(&report, &chain),
            Err(SnpError::PolicyRejected(_))
        ));
        verifier
            .allow_debug_policy()
            .verify(&report, &chain)
            .unwrap();
    }

    #[test]
    fn tcb_downgrade_rejected_with_minimum() {
        let w = world(); // platform at tcb (1,0,8,115)
        let guest = w.platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let report = guest.attestation_report(ReportData::default());
        let chain = w
            .kds
            .vcek_chain(&w.platform.chip_id(), &w.platform.tcb_version())
            .unwrap();
        let verifier = ReportVerifier::new(w.amd.ark_public_key());
        // Without a minimum, the report verifies.
        verifier.verify(&report, &chain).unwrap();
        // Requiring a newer SNP firmware rejects it (downgrade defense)...
        assert!(matches!(
            verifier
                .clone()
                .require_minimum_tcb(TcbVersion::new(1, 0, 9, 115))
                .verify(&report, &chain),
            Err(SnpError::PolicyRejected(_))
        ));
        // ...while the platform's own level (or older) passes.
        verifier
            .require_minimum_tcb(TcbVersion::new(1, 0, 8, 100))
            .verify(&report, &chain)
            .unwrap();
    }

    #[test]
    fn batched_verify_matches_sequential_on_every_fixture() {
        let w = world();
        let verifier = ReportVerifier::new(w.amd.ark_public_key());
        let good_chain = w
            .kds
            .vcek_chain(&w.platform.chip_id(), &w.platform.tcb_version())
            .unwrap();

        // Valid report: both paths accept.
        let guest = w.platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let report = guest.attestation_report(ReportData::from_slice(b"nonce"));
        verifier.verify_batched(&report, &good_chain).unwrap();

        // Tampered report body: same SignatureInvalid as sequential.
        let mut tampered = report.clone();
        tampered.report.guest_svn += 1;
        assert_eq!(
            verifier.verify_batched(&tampered, &good_chain),
            verifier.verify(&tampered, &good_chain)
        );
        assert_eq!(
            verifier.verify_batched(&tampered, &good_chain),
            Err(SnpError::SignatureInvalid)
        );

        // Chain for a different chip: binding mismatch, same error.
        let wrong_chip = w
            .kds
            .vcek_chain(&ChipId::from_seed(99), &w.platform.tcb_version())
            .unwrap();
        assert_eq!(
            verifier.verify_batched(&report, &wrong_chip),
            Err(SnpError::ReportBindingMismatch)
        );

        // Impostor AMD root: chain fails on the pinned ARK either way.
        let fake_amd = Arc::new(AmdRootOfTrust::from_seed([99; 32]));
        let fake_chain = KeyDistributionService::new(fake_amd)
            .vcek_chain(&w.platform.chip_id(), &w.platform.tcb_version())
            .unwrap();
        assert_eq!(
            verifier.verify_batched(&report, &fake_chain),
            verifier.verify(&report, &fake_chain)
        );
        assert!(verifier.verify_batched(&report, &fake_chain).is_err());

        // Corrupted ASK certificate signature: batch fails, the fallback
        // names the certificate, matching the sequential error exactly.
        let mut bad_ask = good_chain.clone();
        let mut sig = bad_ask.ask.signature.to_bytes();
        sig[7] ^= 1;
        bad_ask.ask.signature = revelio_crypto::ed25519::Signature::from_bytes(sig);
        assert_eq!(
            verifier.verify_batched(&report, &bad_ask),
            verifier.verify(&report, &bad_ask)
        );
        assert!(verifier.verify_batched(&report, &bad_ask).is_err());
    }

    #[test]
    fn batched_verify_enforces_policy_and_tcb_floor() {
        let w = world();
        let policy = GuestPolicy {
            debug_allowed: true,
            ..GuestPolicy::default()
        };
        let guest = w.platform.launch(b"fw", policy).unwrap();
        let report = guest.attestation_report(ReportData::default());
        let chain = w
            .kds
            .vcek_chain(&w.platform.chip_id(), &w.platform.tcb_version())
            .unwrap();
        let verifier = ReportVerifier::new(w.amd.ark_public_key());
        assert!(matches!(
            verifier.verify_batched(&report, &chain),
            Err(SnpError::PolicyRejected(_))
        ));
        let lenient = verifier.clone().allow_debug_policy();
        lenient.verify_batched(&report, &chain).unwrap();
        assert!(matches!(
            lenient
                .require_minimum_tcb(TcbVersion::new(1, 0, 9, 115))
                .verify_batched(&report, &chain),
            Err(SnpError::PolicyRejected(_))
        ));
    }

    #[test]
    fn report_from_impostor_amd_rejected() {
        let w = world();
        // A fake "AMD" manufactures a lookalike platform and chain.
        let fake_amd = Arc::new(AmdRootOfTrust::from_seed([99; 32]));
        let fake_platform = SnpPlatform::new(
            Arc::clone(&fake_amd),
            w.platform.chip_id(),
            w.platform.tcb_version(),
        );
        let guest = fake_platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let report = guest.attestation_report(ReportData::default());
        let fake_chain = KeyDistributionService::new(fake_amd)
            .vcek_chain(&w.platform.chip_id(), &w.platform.tcb_version())
            .unwrap();
        // Verifier pins the real ARK: the impostor chain cannot validate.
        assert!(ReportVerifier::new(w.amd.ark_public_key())
            .verify(&report, &fake_chain)
            .is_err());
    }
}

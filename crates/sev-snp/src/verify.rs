//! Full attestation-report verification, as the paper's web extension
//! performs it (§5.3.2): certificate chain, report↔certificate binding,
//! signature, and policy sanity.
//!
//! Measurement comparison against golden values is deliberately *not* here:
//! which measurements are acceptable is Revelio policy (trusted registry,
//! user-supplied values) and lives in the `revelio` crate.

use revelio_crypto::ed25519::VerifyingKey;

use crate::ids::TcbVersion;
use crate::kds::VcekCertChain;
use crate::report::SignedReport;
use crate::SnpError;

/// Verifies signed reports against a pinned AMD root key.
#[derive(Debug, Clone)]
pub struct ReportVerifier {
    trusted_ark: VerifyingKey,
    reject_debug_policy: bool,
    minimum_tcb: Option<TcbVersion>,
}

impl ReportVerifier {
    /// Creates a verifier that pins `trusted_ark` (AMD's published root) and
    /// rejects debug-enabled guests.
    #[must_use]
    pub fn new(trusted_ark: VerifyingKey) -> Self {
        ReportVerifier {
            trusted_ark,
            reject_debug_policy: true,
            minimum_tcb: None,
        }
    }

    /// Permits debug-enabled guest policies (useful only in development
    /// pipelines; never in production verification).
    #[must_use]
    pub fn allow_debug_policy(mut self) -> Self {
        self.reject_debug_policy = false;
        self
    }

    /// Rejects reports whose reported TCB has *any* component below
    /// `minimum` — the defense against firmware-downgrade attacks: a valid
    /// VCEK chain for an old, vulnerable firmware otherwise verifies.
    #[must_use]
    pub fn require_minimum_tcb(mut self, minimum: TcbVersion) -> Self {
        self.minimum_tcb = Some(minimum);
        self
    }

    /// Verifies `signed` against `chain`:
    ///
    /// 1. the chain terminates at the pinned ARK,
    /// 2. the VCEK certificate endorses exactly the chip and TCB named in
    ///    the report,
    /// 3. the VCEK signature over the report body verifies,
    /// 4. the guest policy does not permit debugging (host memory access).
    ///
    /// # Errors
    ///
    /// Returns the specific [`SnpError`] for whichever check fails first.
    pub fn verify(&self, signed: &SignedReport, chain: &VcekCertChain) -> Result<(), SnpError> {
        let (vcek_public, (bound_chip, bound_tcb)) = chain.validate(&self.trusted_ark)?;
        if bound_chip != signed.report.chip_id || bound_tcb != signed.report.reported_tcb {
            return Err(SnpError::ReportBindingMismatch);
        }
        signed.verify_signature(&vcek_public)?;
        if self.reject_debug_policy && signed.report.policy.debug_allowed {
            return Err(SnpError::PolicyRejected("debug access enabled".into()));
        }
        if let Some(min) = self.minimum_tcb {
            let t = signed.report.reported_tcb;
            let ok = t.bootloader >= min.bootloader
                && t.tee >= min.tee
                && t.snp >= min.snp
                && t.microcode >= min.microcode;
            if !ok {
                return Err(SnpError::PolicyRejected(format!(
                    "reported tcb {t} below required minimum {min}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ChipId, GuestPolicy, TcbVersion};
    use crate::kds::KeyDistributionService;
    use crate::platform::{AmdRootOfTrust, SnpPlatform};
    use crate::report::ReportData;
    use std::sync::Arc;

    struct World {
        amd: Arc<AmdRootOfTrust>,
        kds: KeyDistributionService,
        platform: SnpPlatform,
    }

    fn world() -> World {
        let amd = Arc::new(AmdRootOfTrust::from_seed([11; 32]));
        let kds = KeyDistributionService::new(Arc::clone(&amd));
        let platform = SnpPlatform::new(
            Arc::clone(&amd),
            ChipId::from_seed(1),
            TcbVersion::new(1, 0, 8, 115),
        );
        World { amd, kds, platform }
    }

    #[test]
    fn end_to_end_verification_succeeds() {
        let w = world();
        let guest = w.platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let report = guest.attestation_report(ReportData::from_slice(b"nonce"));
        let chain = w
            .kds
            .vcek_chain(&w.platform.chip_id(), &w.platform.tcb_version())
            .unwrap();
        ReportVerifier::new(w.amd.ark_public_key())
            .verify(&report, &chain)
            .unwrap();
    }

    #[test]
    fn chain_for_wrong_chip_rejected() {
        let w = world();
        let guest = w.platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let report = guest.attestation_report(ReportData::default());
        // KDS chain fetched for a *different* chip: binding mismatch.
        let chain = w
            .kds
            .vcek_chain(&ChipId::from_seed(99), &w.platform.tcb_version())
            .unwrap();
        assert_eq!(
            ReportVerifier::new(w.amd.ark_public_key()).verify(&report, &chain),
            Err(SnpError::ReportBindingMismatch)
        );
    }

    #[test]
    fn chain_for_wrong_tcb_rejected() {
        let w = world();
        let guest = w.platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let report = guest.attestation_report(ReportData::default());
        let chain = w
            .kds
            .vcek_chain(&w.platform.chip_id(), &TcbVersion::new(0, 0, 1, 1))
            .unwrap();
        assert!(ReportVerifier::new(w.amd.ark_public_key())
            .verify(&report, &chain)
            .is_err());
    }

    #[test]
    fn tampered_report_rejected() {
        let w = world();
        let guest = w.platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let mut report = guest.attestation_report(ReportData::default());
        report.report.guest_svn += 1;
        let chain = w
            .kds
            .vcek_chain(&w.platform.chip_id(), &w.platform.tcb_version())
            .unwrap();
        assert_eq!(
            ReportVerifier::new(w.amd.ark_public_key()).verify(&report, &chain),
            Err(SnpError::SignatureInvalid)
        );
    }

    #[test]
    fn debug_policy_rejected_by_default_but_optional() {
        let w = world();
        let policy = GuestPolicy {
            debug_allowed: true,
            ..GuestPolicy::default()
        };
        let guest = w.platform.launch(b"fw", policy).unwrap();
        let report = guest.attestation_report(ReportData::default());
        let chain = w
            .kds
            .vcek_chain(&w.platform.chip_id(), &w.platform.tcb_version())
            .unwrap();
        let verifier = ReportVerifier::new(w.amd.ark_public_key());
        assert!(matches!(
            verifier.verify(&report, &chain),
            Err(SnpError::PolicyRejected(_))
        ));
        verifier
            .allow_debug_policy()
            .verify(&report, &chain)
            .unwrap();
    }

    #[test]
    fn tcb_downgrade_rejected_with_minimum() {
        let w = world(); // platform at tcb (1,0,8,115)
        let guest = w.platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let report = guest.attestation_report(ReportData::default());
        let chain = w
            .kds
            .vcek_chain(&w.platform.chip_id(), &w.platform.tcb_version())
            .unwrap();
        let verifier = ReportVerifier::new(w.amd.ark_public_key());
        // Without a minimum, the report verifies.
        verifier.verify(&report, &chain).unwrap();
        // Requiring a newer SNP firmware rejects it (downgrade defense)...
        assert!(matches!(
            verifier
                .clone()
                .require_minimum_tcb(TcbVersion::new(1, 0, 9, 115))
                .verify(&report, &chain),
            Err(SnpError::PolicyRejected(_))
        ));
        // ...while the platform's own level (or older) passes.
        verifier
            .require_minimum_tcb(TcbVersion::new(1, 0, 8, 100))
            .verify(&report, &chain)
            .unwrap();
    }

    #[test]
    fn report_from_impostor_amd_rejected() {
        let w = world();
        // A fake "AMD" manufactures a lookalike platform and chain.
        let fake_amd = Arc::new(AmdRootOfTrust::from_seed([99; 32]));
        let fake_platform = SnpPlatform::new(
            Arc::clone(&fake_amd),
            w.platform.chip_id(),
            w.platform.tcb_version(),
        );
        let guest = fake_platform.launch(b"fw", GuestPolicy::default()).unwrap();
        let report = guest.attestation_report(ReportData::default());
        let fake_chain = KeyDistributionService::new(fake_amd)
            .vcek_chain(&w.platform.chip_id(), &w.platform.tcb_version())
            .unwrap();
        // Verifier pins the real ARK: the impostor chain cannot validate.
        assert!(ReportVerifier::new(w.amd.ark_public_key())
            .verify(&report, &fake_chain)
            .is_err());
    }
}

//! A telemetry-instrumented pass-through block device.
//!
//! [`ProbedDevice`] wraps any [`BlockDevice`] and charges a
//! [`DeviceProbe`] for every block transferred: the probe advances the sim
//! clock by a bytes × ns/byte cost and records per-device counters and an
//! op-latency histogram. Stacking it over (or under) a device-mapper
//! target turns the wall-clock-free simulation into a deterministic I/O
//! benchmark — the fig. 5/6 reproductions read their timings off the sim
//! clock instead of `Instant::now()`.

use std::sync::Arc;

use revelio_telemetry::DeviceProbe;

use crate::block::BlockDevice;
use crate::StorageError;

/// Pass-through device charging a [`DeviceProbe`] per block operation.
pub struct ProbedDevice {
    inner: Arc<dyn BlockDevice>,
    probe: DeviceProbe,
}

impl std::fmt::Debug for ProbedDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbedDevice")
            .field("probe", &self.probe)
            .finish_non_exhaustive()
    }
}

impl ProbedDevice {
    /// Wraps `inner` so every block read/write reports to `probe`.
    #[must_use]
    pub fn new(inner: Arc<dyn BlockDevice>, probe: DeviceProbe) -> Self {
        ProbedDevice { inner, probe }
    }

    /// The probe this device charges.
    #[must_use]
    pub fn probe(&self) -> &DeviceProbe {
        &self.probe
    }
}

impl BlockDevice for ProbedDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn block_count(&self) -> u64 {
        self.inner.block_count()
    }

    fn read_block(&self, index: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        self.inner.read_block(index, buf)?;
        self.probe.on_read(self.inner.block_size() as u64);
        Ok(())
    }

    fn write_block(&self, index: u64, data: &[u8]) -> Result<(), StorageError> {
        self.inner.write_block(index, data)?;
        self.probe.on_write(self.inner.block_size() as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemBlockDevice;
    use revelio_telemetry::{Telemetry, TelemetryClock as SimClock};

    fn probed(read_ns: f64, write_ns: f64) -> (ProbedDevice, SimClock, Telemetry) {
        let clock = SimClock::new();
        let telemetry = Telemetry::new(clock.clone());
        let inner: Arc<dyn BlockDevice> = Arc::new(MemBlockDevice::new(512, 8));
        let probe = DeviceProbe::new(telemetry.clone(), "test", read_ns, write_ns);
        (ProbedDevice::new(inner, probe), clock, telemetry)
    }

    #[test]
    fn charges_clock_per_block_operation() {
        // 1000 ns/byte → one 512-byte block costs 512 µs.
        let (dev, clock, telemetry) = probed(1000.0, 2000.0);
        let mut buf = vec![0u8; 512];
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(clock.now_us(), 512);
        dev.write_block(0, &buf).unwrap();
        assert_eq!(clock.now_us(), 512 + 1024);
        assert_eq!(telemetry.counter("revelio_storage_test_reads_total"), 1);
        assert_eq!(telemetry.counter("revelio_storage_test_writes_total"), 1);
        assert_eq!(
            telemetry.counter("revelio_storage_test_read_bytes_total"),
            512
        );
    }

    #[test]
    fn failed_operations_are_not_charged() {
        let (dev, clock, telemetry) = probed(1000.0, 1000.0);
        let mut buf = vec![0u8; 512];
        assert!(dev.read_block(99, &mut buf).is_err());
        assert_eq!(clock.now_us(), 0);
        assert_eq!(telemetry.counter("revelio_storage_test_reads_total"), 0);
    }

    #[test]
    fn passes_data_through_unchanged() {
        let (dev, _, _) = probed(1.0, 1.0);
        let data = vec![0xA5u8; 512];
        dev.write_block(3, &data).unwrap();
        let mut back = vec![0u8; 512];
        dev.read_block(3, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(dev.block_size(), 512);
        assert_eq!(dev.block_count(), 8);
    }
}

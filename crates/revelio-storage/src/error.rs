//! Error type for the storage stack.

use std::error::Error;
use std::fmt;

use revelio_crypto::wire::WireError;
use revelio_crypto::CryptoError;

/// Errors surfaced by block devices and device-mapper targets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// A block index was past the end of the device.
    OutOfRange {
        /// Requested block index.
        block: u64,
        /// Device size in blocks.
        device_blocks: u64,
    },
    /// A buffer did not match the device block size.
    WrongBufferSize {
        /// Caller's buffer length.
        got: usize,
        /// The device's block size.
        expected: usize,
    },
    /// dm-verity detected corrupted data — the block's hash chain did not
    /// reach the trusted root hash.
    IntegrityViolation {
        /// The data block whose verification failed.
        block: u64,
    },
    /// A write was attempted on a read-only (verity-protected) device.
    ReadOnly,
    /// The expected root hash did not match the device's hash tree.
    RootHashMismatch,
    /// A crypt volume's superblock was missing or malformed.
    BadSuperblock(String),
    /// The unlock key failed the volume's key check.
    WrongKey,
    /// A partition definition did not fit the disk.
    PartitionOverflow {
        /// Blocks requested beyond what remains.
        requested: u64,
        /// Blocks remaining on the disk.
        available: u64,
    },
    /// Malformed serialized metadata.
    Wire(WireError),
    /// An underlying cryptographic failure.
    Crypto(CryptoError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::OutOfRange {
                block,
                device_blocks,
            } => {
                write!(
                    f,
                    "block {block} out of range for device of {device_blocks} blocks"
                )
            }
            StorageError::WrongBufferSize { got, expected } => {
                write!(
                    f,
                    "buffer of {got} bytes does not match block size {expected}"
                )
            }
            StorageError::IntegrityViolation { block } => {
                write!(f, "integrity violation reading block {block}")
            }
            StorageError::ReadOnly => write!(f, "device is read-only"),
            StorageError::RootHashMismatch => write!(f, "root hash does not match hash tree"),
            StorageError::BadSuperblock(why) => write!(f, "bad superblock: {why}"),
            StorageError::WrongKey => write!(f, "volume key check failed"),
            StorageError::PartitionOverflow {
                requested,
                available,
            } => {
                write!(
                    f,
                    "partition of {requested} blocks exceeds {available} available"
                )
            }
            StorageError::Wire(e) => write!(f, "wire format error: {e}"),
            StorageError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl Error for StorageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StorageError::Wire(e) => Some(e),
            StorageError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for StorageError {
    fn from(e: WireError) -> Self {
        StorageError::Wire(e)
    }
}

impl From<CryptoError> for StorageError {
    fn from(e: CryptoError) -> Self {
        StorageError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_key_facts() {
        let e = StorageError::OutOfRange {
            block: 9,
            device_blocks: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(StorageError::IntegrityViolation { block: 3 }
            .to_string()
            .contains('3'));
    }
}

//! The block-device abstraction and the in-memory backing device.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::StorageError;

/// A fixed-block-size random-access device.
///
/// Methods take `&self` (interior locking) so device-mapper targets can
/// stack over `Arc<dyn BlockDevice>` handles exactly as kernel targets stack
/// over shared block devices.
pub trait BlockDevice: Send + Sync {
    /// Block size in bytes (constant for the device's lifetime).
    fn block_size(&self) -> usize;

    /// Number of addressable blocks.
    fn block_count(&self) -> u64;

    /// Reads block `index` into `buf` (`buf.len() == block_size()`).
    ///
    /// # Errors
    ///
    /// [`StorageError::OutOfRange`] or [`StorageError::WrongBufferSize`] on
    /// bad arguments; targets add their own failure modes (integrity,
    /// read-only, key errors).
    fn read_block(&self, index: u64, buf: &mut [u8]) -> Result<(), StorageError>;

    /// Writes `data` (`data.len() == block_size()`) to block `index`.
    ///
    /// # Errors
    ///
    /// As for [`BlockDevice::read_block`], plus [`StorageError::ReadOnly`]
    /// on immutable targets.
    fn write_block(&self, index: u64, data: &[u8]) -> Result<(), StorageError>;

    /// Total capacity in bytes.
    fn len_bytes(&self) -> u64 {
        self.block_count() * self.block_size() as u64
    }
}

/// Reads `len` bytes starting at byte `offset`, spanning blocks as needed.
///
/// # Errors
///
/// Propagates the device's errors; reads past the end are
/// [`StorageError::OutOfRange`].
pub fn read_at(device: &dyn BlockDevice, offset: u64, len: usize) -> Result<Vec<u8>, StorageError> {
    let bs = device.block_size() as u64;
    let mut out = Vec::with_capacity(len);
    let mut buf = vec![0u8; device.block_size()];
    let mut remaining = len as u64;
    let mut pos = offset;
    while remaining > 0 {
        let block = pos / bs;
        let within = (pos % bs) as usize;
        device.read_block(block, &mut buf)?;
        let take = ((bs as usize - within) as u64).min(remaining) as usize;
        out.extend_from_slice(&buf[within..within + take]);
        pos += take as u64;
        remaining -= take as u64;
    }
    Ok(out)
}

/// Writes `data` starting at byte `offset`, spanning blocks as needed
/// (read-modify-write at the edges).
///
/// # Errors
///
/// Propagates the device's errors.
pub fn write_at(device: &dyn BlockDevice, offset: u64, data: &[u8]) -> Result<(), StorageError> {
    let bs = device.block_size() as u64;
    let mut buf = vec![0u8; device.block_size()];
    let mut pos = offset;
    let mut src = data;
    while !src.is_empty() {
        let block = pos / bs;
        let within = (pos % bs) as usize;
        let take = (bs as usize - within).min(src.len());
        if take == device.block_size() {
            device.write_block(block, &src[..take])?;
        } else {
            device.read_block(block, &mut buf)?;
            buf[within..within + take].copy_from_slice(&src[..take]);
            device.write_block(block, &buf)?;
        }
        pos += take as u64;
        src = &src[take..];
    }
    Ok(())
}

/// I/O counters for a device (used by the benchmark harness to convert
/// operation counts into modelled latencies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Completed block reads.
    pub reads: u64,
    /// Completed block writes.
    pub writes: u64,
}

/// A RAM-backed block device.
///
/// ```
/// use revelio_storage::block::{BlockDevice, MemBlockDevice};
/// let dev = MemBlockDevice::new(512, 8);
/// dev.write_block(3, &[9u8; 512])?;
/// let mut buf = [0u8; 512];
/// dev.read_block(3, &mut buf)?;
/// assert_eq!(buf[0], 9);
/// # Ok::<(), revelio_storage::StorageError>(())
/// ```
pub struct MemBlockDevice {
    block_size: usize,
    data: RwLock<Vec<u8>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl std::fmt::Debug for MemBlockDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemBlockDevice")
            .field("block_size", &self.block_size)
            .field("block_count", &self.block_count())
            .finish_non_exhaustive()
    }
}

impl MemBlockDevice {
    /// Creates a zero-filled device of `count` blocks of `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    #[must_use]
    pub fn new(block_size: usize, count: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        MemBlockDevice {
            block_size,
            data: RwLock::new(vec![0u8; block_size * count as usize]),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Creates a device initialized with `contents` (padded with zeros to a
    /// whole number of blocks).
    #[must_use]
    pub fn from_bytes(block_size: usize, contents: &[u8]) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let blocks = contents.len().div_ceil(block_size).max(1);
        let mut data = contents.to_vec();
        data.resize(blocks * block_size, 0);
        MemBlockDevice {
            block_size,
            data: RwLock::new(data),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Snapshot of the I/O counters.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Flips one bit on the raw medium, bypassing any stacked target — the
    /// "offline attacker edits the disk" primitive used by integrity tests.
    ///
    /// # Panics
    ///
    /// Panics if `byte_offset` is past the end of the device.
    pub fn corrupt_bit(&self, byte_offset: u64, bit: u8) {
        let mut data = self.data.write();
        let len = data.len() as u64;
        assert!(
            byte_offset < len,
            "corruption offset {byte_offset} past device end {len}"
        );
        data[byte_offset as usize] ^= 1 << (bit % 8);
    }

    fn check(&self, index: u64, buf_len: usize) -> Result<(), StorageError> {
        if index >= self.block_count() {
            return Err(StorageError::OutOfRange {
                block: index,
                device_blocks: self.block_count(),
            });
        }
        if buf_len != self.block_size {
            return Err(StorageError::WrongBufferSize {
                got: buf_len,
                expected: self.block_size,
            });
        }
        Ok(())
    }
}

impl BlockDevice for MemBlockDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn block_count(&self) -> u64 {
        (self.data.read().len() / self.block_size) as u64
    }

    fn read_block(&self, index: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        self.check(index, buf.len())?;
        let data = self.data.read();
        let start = index as usize * self.block_size;
        buf.copy_from_slice(&data[start..start + self.block_size]);
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_block(&self, index: u64, data_in: &[u8]) -> Result<(), StorageError> {
        self.check(index, data_in.len())?;
        let mut data = self.data.write();
        let start = index as usize * self.block_size;
        data[start..start + self.block_size].copy_from_slice(data_in);
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Convenience constructor for a shared in-memory device handle.
#[must_use]
pub fn shared_mem_device(block_size: usize, count: u64) -> Arc<MemBlockDevice> {
    Arc::new(MemBlockDevice::new(block_size, count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn out_of_range_rejected() {
        let dev = MemBlockDevice::new(16, 4);
        let mut buf = [0u8; 16];
        assert!(matches!(
            dev.read_block(4, &mut buf),
            Err(StorageError::OutOfRange {
                block: 4,
                device_blocks: 4
            })
        ));
    }

    #[test]
    fn wrong_buffer_size_rejected() {
        let dev = MemBlockDevice::new(16, 4);
        let mut buf = [0u8; 15];
        assert!(matches!(
            dev.read_block(0, &mut buf),
            Err(StorageError::WrongBufferSize {
                got: 15,
                expected: 16
            })
        ));
        assert!(dev.write_block(0, &[0u8; 17]).is_err());
    }

    #[test]
    fn stats_count_operations() {
        let dev = MemBlockDevice::new(16, 4);
        let mut buf = [0u8; 16];
        dev.read_block(0, &mut buf).unwrap();
        dev.read_block(1, &mut buf).unwrap();
        dev.write_block(2, &buf).unwrap();
        assert_eq!(
            dev.stats(),
            IoStats {
                reads: 2,
                writes: 1
            }
        );
    }

    #[test]
    fn from_bytes_pads_to_block() {
        let dev = MemBlockDevice::from_bytes(16, &[1, 2, 3]);
        assert_eq!(dev.block_count(), 1);
        let mut buf = [0u8; 16];
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(&buf[..3], &[1, 2, 3]);
        assert!(buf[3..].iter().all(|&b| b == 0));
    }

    #[test]
    fn corrupt_bit_flips_exactly_one_bit() {
        let dev = MemBlockDevice::new(16, 1);
        dev.corrupt_bit(5, 3);
        let mut buf = [0u8; 16];
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(buf[5], 1 << 3);
    }

    #[test]
    fn read_write_at_spans_blocks() {
        let dev = MemBlockDevice::new(8, 4);
        write_at(&dev, 5, b"hello world").unwrap();
        assert_eq!(read_at(&dev, 5, 11).unwrap(), b"hello world");
        // Bytes around the span stay zero.
        assert_eq!(read_at(&dev, 0, 5).unwrap(), vec![0u8; 5]);
        assert_eq!(read_at(&dev, 14, 2).unwrap(), b"ld");
        assert_eq!(read_at(&dev, 16, 2).unwrap(), vec![0u8; 2]);
    }

    #[test]
    fn write_at_past_end_fails() {
        let dev = MemBlockDevice::new(8, 2);
        assert!(write_at(&dev, 12, b"too much data").is_err());
    }

    proptest! {
        #[test]
        fn read_back_what_was_written(
            offset in 0u64..100,
            data in proptest::collection::vec(any::<u8>(), 1..200),
        ) {
            let dev = MemBlockDevice::new(32, 16); // 512 bytes
            prop_assume!(offset as usize + data.len() <= 512);
            write_at(&dev, offset, &data).unwrap();
            prop_assert_eq!(read_at(&dev, offset, data.len()).unwrap(), data);
        }
    }
}

//! Block-device stack simulating the Linux storage features Revelio uses.
//!
//! The paper (§5.1.2, §5.2.1) protects a Revelio VM's disks with two Linux
//! device-mapper targets:
//!
//! * **dm-verity** renders the root filesystem read-only and
//!   integrity-protected: a Merkle tree of SHA-256 block hashes is generated
//!   at image-build time, its root hash travels on the kernel command line
//!   (and thus into the launch measurement), and every read is verified
//!   against the tree. Reproduced by [`verity`].
//! * **dm-crypt** encrypts the mutable data volume with `aes-xts-plain64`,
//!   keyed from a PBKDF2-stretched secret — in Revelio the SEV-SNP sealing
//!   key, so only an identically-measured VM can unlock the volume.
//!   Reproduced by [`crypt`].
//!
//! Both are layered over a [`block::BlockDevice`] trait with shared-access
//! semantics (interior locking), so targets stack exactly like device-mapper
//! devices: `partition → crypt → filesystem`, `partition → verity → rootfs`.
//!
//! # Example: an encrypted volume over one partition of a disk
//!
//! ```
//! use std::sync::Arc;
//! use revelio_storage::block::{BlockDevice, MemBlockDevice};
//! use revelio_storage::partition::{PartitionKind, PartitionTable};
//! use revelio_storage::crypt::{CryptDevice, CryptParams};
//!
//! let disk: Arc<dyn BlockDevice> = Arc::new(MemBlockDevice::new(512, 2048));
//! let mut table = PartitionTable::new();
//! table.add("data", PartitionKind::Data, 1024)?;
//! let views = table.apply(Arc::clone(&disk))?;
//!
//! let data = views.into_iter().next().unwrap().device;
//! let params = CryptParams::default();
//! CryptDevice::format(Arc::clone(&data), b"sealing key", &params)?;
//! let vol = CryptDevice::open(data, b"sealing key", &params)?;
//! vol.write_block(0, &vec![7u8; 512])?;
//! # Ok::<(), revelio_storage::StorageError>(())
//! ```

pub mod block;
pub mod crypt;
pub mod error;
pub mod partition;
pub mod probed;
pub mod verity;

pub use error::StorageError;

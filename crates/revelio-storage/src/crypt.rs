//! A dm-crypt analogue: transparent AES-XTS sector encryption with a
//! LUKS-style superblock and PBKDF2 key slot.
//!
//! Mirrors the paper's `cryptsetup` configuration (§6.3.1):
//! `aes-xts-plain64` with a PBKDF2-derived key (1000 iterations). In a
//! Revelio VM the passphrase is the SEV-SNP sealing key derived from the
//! launch measurement, so the volume only unlocks inside an
//! identically-measured VM on the same chip (§3.4.8).

use std::sync::Arc;

use revelio_crypto::hmac::Hmac;
use revelio_crypto::kdf::pbkdf2;
use revelio_crypto::sha2::Sha256;
use revelio_crypto::wire::{ByteReader, ByteWriter};
use revelio_crypto::xts::Xts;

use crate::block::BlockDevice;
use crate::StorageError;

/// Key-derivation parameters stored in the superblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CryptParams {
    /// PBKDF2 iteration count; the paper's evaluation uses 1000.
    pub iterations: u32,
    /// Salt for the key slot (fixed default keeps builds reproducible; a
    /// deployment derives it from the image identity).
    pub salt: [u8; 32],
}

impl Default for CryptParams {
    fn default() -> Self {
        CryptParams {
            iterations: 1000,
            salt: [0x5a; 32],
        }
    }
}

const MAGIC: &[u8; 4] = b"RVCR";
const VERSION: u16 = 1;
/// Master key length: 64 bytes = two AES-256 keys for XTS.
const MASTER_KEY_LEN: usize = 64;

fn derive_master_key(passphrase: &[u8], params: &CryptParams) -> Vec<u8> {
    pbkdf2::<Sha256>(passphrase, &params.salt, params.iterations, MASTER_KEY_LEN)
}

fn key_check_value(master_key: &[u8]) -> [u8; 32] {
    Hmac::<Sha256>::mac(master_key, b"revelio-crypt-key-check")
        .try_into()
        .expect("32 bytes")
}

/// An unlocked encrypted volume mapped over a backing device.
///
/// Block 0 of the backing device holds the superblock; data blocks are
/// shifted by one and encrypted with XTS using the data block index as the
/// `plain64` sector number.
pub struct CryptDevice {
    backing: Arc<dyn BlockDevice>,
    xts: Xts,
}

impl std::fmt::Debug for CryptDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CryptDevice")
            .field("data_blocks", &self.block_count())
            .finish_non_exhaustive()
    }
}

impl CryptDevice {
    /// Formats `backing` as an encrypted volume keyed by `passphrase`.
    ///
    /// This is the "dm-crypt setup" step of the paper's Table 1: deriving
    /// the key (PBKDF2) and writing the superblock. Existing data block
    /// contents are left in place but become meaningless ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::BadSuperblock`] when the device is too small
    /// (needs at least two blocks) or the block size cannot hold the
    /// superblock / XTS blocks (must be a multiple of 16, at least 128).
    pub fn format(
        backing: Arc<dyn BlockDevice>,
        passphrase: &[u8],
        params: &CryptParams,
    ) -> Result<(), StorageError> {
        Self::check_geometry(backing.as_ref())?;
        let master_key = derive_master_key(passphrase, params);
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u16(VERSION);
        w.put_u32(params.iterations);
        w.put_bytes(&params.salt);
        w.put_bytes(&key_check_value(&master_key));
        let encoded = w.into_bytes();
        let mut block0 = vec![0u8; backing.block_size()];
        block0[..encoded.len()].copy_from_slice(&encoded);
        backing.write_block(0, &block0)?;
        Ok(())
    }

    fn check_geometry(backing: &dyn BlockDevice) -> Result<(), StorageError> {
        let bs = backing.block_size();
        if bs < 128 || !bs.is_multiple_of(16) {
            return Err(StorageError::BadSuperblock(format!(
                "block size {bs} unsupported for xts volume"
            )));
        }
        if backing.block_count() < 2 {
            return Err(StorageError::BadSuperblock(
                "device too small for superblock plus data".into(),
            ));
        }
        Ok(())
    }

    /// Returns `true` when the device's superblock region is pristine
    /// (all zeros) — i.e. the volume was never formatted. Used by first
    /// boot to distinguish "new disk" from "tampered or foreign
    /// superblock", which must fail closed instead of being reformatted.
    ///
    /// # Errors
    ///
    /// Propagates device read errors.
    pub fn is_pristine(backing: &dyn BlockDevice) -> Result<bool, StorageError> {
        let mut block0 = vec![0u8; backing.block_size()];
        backing.read_block(0, &mut block0)?;
        Ok(block0.iter().all(|&b| b == 0))
    }

    /// Unlocks a formatted volume.
    ///
    /// The caller supplies the *expected* KDF parameters (in Revelio these
    /// come from the measured init configuration): the host-writable
    /// superblock is only trusted to match them, never to dictate them —
    /// otherwise a hostile superblock could demand `u32::MAX` PBKDF2
    /// iterations as a pre-authentication CPU DoS, or swap the salt.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::BadSuperblock`] when no volume is present or
    /// the stored parameters disagree with `expected`, and
    /// [`StorageError::WrongKey`] when `passphrase` fails the key check —
    /// the failure an attacker (or a differently-measured VM) sees.
    pub fn open(
        backing: Arc<dyn BlockDevice>,
        passphrase: &[u8],
        expected: &CryptParams,
    ) -> Result<Self, StorageError> {
        Self::check_geometry(backing.as_ref())?;
        let mut block0 = vec![0u8; backing.block_size()];
        backing.read_block(0, &mut block0)?;
        let mut r = ByteReader::new(&block0);
        let magic = r.get_array::<4>()?;
        if &magic != MAGIC {
            return Err(StorageError::BadSuperblock(
                "missing crypt volume magic".into(),
            ));
        }
        let version = r.get_u16()?;
        if version != VERSION {
            return Err(StorageError::BadSuperblock(format!(
                "unsupported crypt volume version {version}"
            )));
        }
        let iterations = r.get_u32()?;
        if iterations == 0 {
            return Err(StorageError::BadSuperblock("zero kdf iterations".into()));
        }
        let salt = r.get_array::<32>()?;
        let stored_check = r.get_array::<32>()?;
        if iterations != expected.iterations || salt != expected.salt {
            return Err(StorageError::BadSuperblock(
                "superblock kdf parameters disagree with measured configuration".into(),
            ));
        }
        let params = CryptParams { iterations, salt };
        let master_key = derive_master_key(passphrase, &params);
        if !revelio_crypto::ct::eq(&key_check_value(&master_key), &stored_check) {
            return Err(StorageError::WrongKey);
        }
        let xts = Xts::new(&master_key)?;
        Ok(CryptDevice { backing, xts })
    }
}

impl BlockDevice for CryptDevice {
    fn block_size(&self) -> usize {
        self.backing.block_size()
    }

    fn block_count(&self) -> u64 {
        self.backing.block_count() - 1
    }

    fn read_block(&self, index: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        if index >= self.block_count() {
            return Err(StorageError::OutOfRange {
                block: index,
                device_blocks: self.block_count(),
            });
        }
        self.backing.read_block(index + 1, buf)?;
        let plain = self.xts.decrypt_sector(index, buf)?;
        buf.copy_from_slice(&plain);
        Ok(())
    }

    fn write_block(&self, index: u64, data: &[u8]) -> Result<(), StorageError> {
        if index >= self.block_count() {
            return Err(StorageError::OutOfRange {
                block: index,
                device_blocks: self.block_count(),
            });
        }
        if data.len() != self.block_size() {
            return Err(StorageError::WrongBufferSize {
                got: data.len(),
                expected: self.block_size(),
            });
        }
        let cipher = self.xts.encrypt_sector(index, data)?;
        self.backing.write_block(index + 1, &cipher)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemBlockDevice;
    use proptest::prelude::*;

    const BS: usize = 512;

    fn backing(blocks: u64) -> Arc<MemBlockDevice> {
        Arc::new(MemBlockDevice::new(BS, blocks))
    }

    fn fast_params() -> CryptParams {
        CryptParams {
            iterations: 2,
            salt: [1; 32],
        }
    }

    #[test]
    fn format_open_roundtrip() {
        let dev = backing(8);
        CryptDevice::format(Arc::clone(&dev) as _, b"sealing key", &fast_params()).unwrap();
        let vol = CryptDevice::open(Arc::clone(&dev) as _, b"sealing key", &fast_params()).unwrap();
        let data = vec![0xabu8; BS];
        vol.write_block(0, &data).unwrap();
        let mut buf = vec![0u8; BS];
        vol.read_block(0, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn wrong_key_rejected() {
        let dev = backing(8);
        CryptDevice::format(Arc::clone(&dev) as _, b"good key", &fast_params()).unwrap();
        assert_eq!(
            CryptDevice::open(Arc::clone(&dev) as _, b"evil key", &fast_params()).err(),
            Some(StorageError::WrongKey)
        );
    }

    #[test]
    fn ciphertext_differs_from_plaintext_on_medium() {
        let dev = backing(8);
        CryptDevice::format(Arc::clone(&dev) as _, b"k", &fast_params()).unwrap();
        let vol = CryptDevice::open(Arc::clone(&dev) as _, b"k", &fast_params()).unwrap();
        let plain = vec![0x77u8; BS];
        vol.write_block(2, &plain).unwrap();
        let mut raw = vec![0u8; BS];
        dev.read_block(3, &mut raw).unwrap(); // +1 for superblock
        assert_ne!(raw, plain);
        // ECB-style repetition must not appear either.
        assert_ne!(&raw[..16], &raw[16..32]);
    }

    #[test]
    fn data_persists_across_reopen() {
        // The paper's shutdown/restart scenario: same measurement-derived
        // key unlocks the data again.
        let dev = backing(8);
        CryptDevice::format(Arc::clone(&dev) as _, b"k", &fast_params()).unwrap();
        {
            let vol = CryptDevice::open(Arc::clone(&dev) as _, b"k", &fast_params()).unwrap();
            vol.write_block(1, &vec![3u8; BS]).unwrap();
        }
        let vol = CryptDevice::open(Arc::clone(&dev) as _, b"k", &fast_params()).unwrap();
        let mut buf = vec![0u8; BS];
        vol.read_block(1, &mut buf).unwrap();
        assert_eq!(buf, vec![3u8; BS]);
    }

    #[test]
    fn unformatted_device_rejected() {
        assert!(matches!(
            CryptDevice::open(backing(8) as _, b"k", &fast_params()),
            Err(StorageError::BadSuperblock(_))
        ));
    }

    #[test]
    fn too_small_device_rejected() {
        assert!(CryptDevice::format(backing(1) as _, b"k", &fast_params()).is_err());
    }

    #[test]
    fn odd_block_size_rejected() {
        let dev = Arc::new(MemBlockDevice::new(100, 4));
        assert!(CryptDevice::format(dev as _, b"k", &fast_params()).is_err());
    }

    #[test]
    fn superblock_reserves_first_block() {
        let dev = backing(8);
        CryptDevice::format(Arc::clone(&dev) as _, b"k", &fast_params()).unwrap();
        let vol = CryptDevice::open(Arc::clone(&dev) as _, b"k", &fast_params()).unwrap();
        assert_eq!(vol.block_count(), 7);
        let mut buf = vec![0u8; BS];
        assert!(vol.read_block(7, &mut buf).is_err());
    }

    #[test]
    fn iterations_affect_key() {
        let d1 = backing(4);
        let d2 = backing(4);
        CryptDevice::format(
            Arc::clone(&d1) as _,
            b"k",
            &CryptParams {
                iterations: 2,
                salt: [1; 32],
            },
        )
        .unwrap();
        CryptDevice::format(
            Arc::clone(&d2) as _,
            b"k",
            &CryptParams {
                iterations: 3,
                salt: [1; 32],
            },
        )
        .unwrap();
        let mut s1 = vec![0u8; BS];
        let mut s2 = vec![0u8; BS];
        d1.read_block(0, &mut s1).unwrap();
        d2.read_block(0, &mut s2).unwrap();
        assert_ne!(s1, s2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn roundtrip_random_blocks(seed: u8, index in 0u64..7) {
            let dev = backing(8);
            CryptDevice::format(Arc::clone(&dev) as _, b"k", &fast_params()).unwrap();
            let vol = CryptDevice::open(Arc::clone(&dev) as _, b"k", &fast_params()).unwrap();
            let data: Vec<u8> = (0..BS).map(|i| (i as u8).wrapping_add(seed)).collect();
            vol.write_block(index, &data).unwrap();
            let mut buf = vec![0u8; BS];
            vol.read_block(index, &mut buf).unwrap();
            prop_assert_eq!(buf, data);
        }
    }
}

//! A GPT-like partition table and range-restricted partition views.
//!
//! A Revelio VM image is one disk with several partitions: the
//! verity-protected rootfs, the verity hash-tree metadata partition, and the
//! sealed data volume (§5.1.2, Fig. 3). Block 0 holds the serialized table.

use std::sync::Arc;

use revelio_crypto::wire::{ByteReader, ByteWriter};

use crate::block::BlockDevice;
use crate::StorageError;

/// What a partition holds — recorded so boot code can find its pieces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PartitionKind {
    /// A root filesystem image (verity-protected data blocks).
    RootFs,
    /// dm-verity hash-tree metadata.
    VerityMeta,
    /// An encrypted (dm-crypt) data volume.
    Data,
    /// Anything else.
    Other,
}

impl PartitionKind {
    fn to_u8(self) -> u8 {
        match self {
            PartitionKind::RootFs => 0,
            PartitionKind::VerityMeta => 1,
            PartitionKind::Data => 2,
            PartitionKind::Other => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, StorageError> {
        Ok(match v {
            0 => PartitionKind::RootFs,
            1 => PartitionKind::VerityMeta,
            2 => PartitionKind::Data,
            3 => PartitionKind::Other,
            t => {
                return Err(StorageError::Wire(
                    revelio_crypto::wire::WireError::UnknownTag(t),
                ))
            }
        })
    }
}

/// One entry in the partition table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Human-readable label, e.g. `"rootfs"`.
    pub name: String,
    /// Partition content type.
    pub kind: PartitionKind,
    /// First block on the parent device.
    pub first_block: u64,
    /// Length in blocks.
    pub block_count: u64,
    /// Deterministic partition UUID (the paper's build specifies fixed
    /// UUIDs to keep images reproducible, §5.1.1).
    pub uuid: [u8; 16],
}

/// An ordered set of partitions being laid out on a disk.
///
/// Block 0 is always reserved for the serialized table itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionTable {
    entries: Vec<Partition>,
}

/// A partition plus the device view over it, as returned by
/// [`PartitionTable::apply`] and [`PartitionTable::open`].
#[derive(Clone)]
pub struct PartitionView {
    /// The table entry.
    pub partition: Partition,
    /// A block device restricted to the partition's range.
    pub device: Arc<dyn BlockDevice>,
}

impl std::fmt::Debug for PartitionView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionView")
            .field("partition", &self.partition)
            .finish_non_exhaustive()
    }
}

impl PartitionTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        PartitionTable::default()
    }

    /// The declared partitions, in on-disk order.
    #[must_use]
    pub fn entries(&self) -> &[Partition] {
        &self.entries
    }

    /// Appends a partition of `block_count` blocks after the current last
    /// one. UUIDs are derived deterministically from the name so identical
    /// layouts yield bit-identical tables.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::PartitionOverflow`] if `block_count` is zero
    /// (a degenerate layout).
    pub fn add(
        &mut self,
        name: &str,
        kind: PartitionKind,
        block_count: u64,
    ) -> Result<&mut Self, StorageError> {
        if block_count == 0 {
            return Err(StorageError::PartitionOverflow {
                requested: 0,
                available: 0,
            });
        }
        let first_block = self
            .entries
            .last()
            .map_or(1, |p| p.first_block + p.block_count);
        let digest = revelio_crypto::sha2::Sha256::digest(name.as_bytes());
        let uuid: [u8; 16] = digest[..16].try_into().expect("16 bytes");
        self.entries.push(Partition {
            name: name.to_owned(),
            kind,
            first_block,
            block_count,
            uuid,
        });
        Ok(self)
    }

    /// Serializes the table (fits in the reserved block for sane layouts).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(b"RVPT");
        w.put_u32(self.entries.len() as u32);
        for p in &self.entries {
            w.put_str(&p.name);
            w.put_u8(p.kind.to_u8());
            w.put_u64(p.first_block);
            w.put_u64(p.block_count);
            w.put_bytes(&p.uuid);
        }
        w.into_bytes()
    }

    /// Decodes a table.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Wire`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StorageError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_array::<4>()?;
        if &magic != b"RVPT" {
            return Err(StorageError::BadSuperblock(
                "missing partition table magic".into(),
            ));
        }
        let n = r.get_count(4 + 1 + 8 + 8 + 16)?; // name prefix + kind + extents + uuid
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.get_str()?;
            let kind = PartitionKind::from_u8(r.get_u8()?)?;
            let first_block = r.get_u64()?;
            let block_count = r.get_u64()?;
            let uuid = r.get_array::<16>()?;
            entries.push(Partition {
                name,
                kind,
                first_block,
                block_count,
                uuid,
            });
        }
        Ok(PartitionTable { entries })
    }

    /// Writes the table to block 0 of `disk` and returns a view per
    /// partition.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::PartitionOverflow`] if the layout exceeds the
    /// disk, or [`StorageError::BadSuperblock`] if the encoded table does
    /// not fit in block 0.
    pub fn apply(&self, disk: Arc<dyn BlockDevice>) -> Result<Vec<PartitionView>, StorageError> {
        let needed = self
            .entries
            .last()
            .map_or(1, |p| p.first_block + p.block_count);
        if needed > disk.block_count() {
            return Err(StorageError::PartitionOverflow {
                requested: needed,
                available: disk.block_count(),
            });
        }
        let encoded = self.to_bytes();
        if encoded.len() > disk.block_size() {
            return Err(StorageError::BadSuperblock(format!(
                "partition table of {} bytes exceeds block size {}",
                encoded.len(),
                disk.block_size()
            )));
        }
        let mut block0 = vec![0u8; disk.block_size()];
        block0[..encoded.len()].copy_from_slice(&encoded);
        disk.write_block(0, &block0)?;
        Ok(self.views(disk))
    }

    /// Reads the table from block 0 of `disk` and returns the views.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::BadSuperblock`] when block 0 holds no table
    /// or a decoded partition's extent overflows or exceeds the disk (the
    /// on-disk table is attacker-writable; hostile extents must not alias
    /// other blocks).
    pub fn open(disk: Arc<dyn BlockDevice>) -> Result<Vec<PartitionView>, StorageError> {
        let mut block0 = vec![0u8; disk.block_size()];
        disk.read_block(0, &mut block0)?;
        let table = PartitionTable::from_bytes(&block0)?;
        for p in table.entries() {
            let end = p.first_block.checked_add(p.block_count).ok_or_else(|| {
                StorageError::BadSuperblock(format!("partition {:?} extent overflows", p.name))
            })?;
            if p.block_count == 0 || p.first_block == 0 || end > disk.block_count() {
                return Err(StorageError::BadSuperblock(format!(
                    "partition {:?} extent [{}, {}) invalid for disk of {} blocks",
                    p.name,
                    p.first_block,
                    end,
                    disk.block_count()
                )));
            }
        }
        Ok(table.views(disk))
    }

    fn views(&self, disk: Arc<dyn BlockDevice>) -> Vec<PartitionView> {
        self.entries
            .iter()
            .map(|p| PartitionView {
                partition: p.clone(),
                device: Arc::new(RangeDevice {
                    parent: Arc::clone(&disk),
                    first_block: p.first_block,
                    block_count: p.block_count,
                }) as Arc<dyn BlockDevice>,
            })
            .collect()
    }
}

/// A block device exposing a contiguous range of a parent device.
struct RangeDevice {
    parent: Arc<dyn BlockDevice>,
    first_block: u64,
    block_count: u64,
}

impl RangeDevice {
    fn translate(&self, index: u64) -> Result<u64, StorageError> {
        if index >= self.block_count {
            return Err(StorageError::OutOfRange {
                block: index,
                device_blocks: self.block_count,
            });
        }
        self.first_block
            .checked_add(index)
            .ok_or(StorageError::OutOfRange {
                block: index,
                device_blocks: self.block_count,
            })
    }
}

impl BlockDevice for RangeDevice {
    fn block_size(&self) -> usize {
        self.parent.block_size()
    }

    fn block_count(&self) -> u64 {
        self.block_count
    }

    fn read_block(&self, index: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        let idx = self.translate(index)?;
        self.parent.read_block(idx, buf)
    }

    fn write_block(&self, index: u64, data: &[u8]) -> Result<(), StorageError> {
        let idx = self.translate(index)?;
        self.parent.write_block(idx, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemBlockDevice;

    fn disk() -> Arc<dyn BlockDevice> {
        Arc::new(MemBlockDevice::new(256, 64))
    }

    fn table() -> PartitionTable {
        let mut t = PartitionTable::new();
        t.add("rootfs", PartitionKind::RootFs, 16).unwrap();
        t.add("verity", PartitionKind::VerityMeta, 8).unwrap();
        t.add("data", PartitionKind::Data, 16).unwrap();
        t
    }

    #[test]
    fn layout_is_contiguous_after_block_zero() {
        let t = table();
        assert_eq!(t.entries()[0].first_block, 1);
        assert_eq!(t.entries()[1].first_block, 17);
        assert_eq!(t.entries()[2].first_block, 25);
    }

    #[test]
    fn uuids_are_deterministic_and_distinct() {
        let t1 = table();
        let t2 = table();
        assert_eq!(t1.entries()[0].uuid, t2.entries()[0].uuid);
        assert_ne!(t1.entries()[0].uuid, t1.entries()[1].uuid);
    }

    #[test]
    fn serialization_roundtrip() {
        let t = table();
        assert_eq!(PartitionTable::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn apply_then_open_restores_views() {
        let d = disk();
        table().apply(Arc::clone(&d)).unwrap();
        let views = PartitionTable::open(Arc::clone(&d)).unwrap();
        assert_eq!(views.len(), 3);
        assert_eq!(views[0].partition.name, "rootfs");
        assert_eq!(views[2].partition.kind, PartitionKind::Data);
    }

    #[test]
    fn views_are_isolated() {
        let d = disk();
        let views = table().apply(Arc::clone(&d)).unwrap();
        let a = &views[0].device;
        let b = &views[1].device;
        a.write_block(0, &[1u8; 256]).unwrap();
        let mut buf = [0u8; 256];
        b.read_block(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 256]);
        // But they alias the same parent at different offsets.
        let mut raw = [0u8; 256];
        d.read_block(1, &mut raw).unwrap();
        assert_eq!(raw, [1u8; 256]);
    }

    #[test]
    fn view_bounds_enforced() {
        let d = disk();
        let views = table().apply(d).unwrap();
        let mut buf = [0u8; 256];
        assert!(views[1].device.read_block(8, &mut buf).is_err());
    }

    #[test]
    fn oversized_layout_rejected() {
        let mut t = PartitionTable::new();
        t.add("huge", PartitionKind::Data, 1000).unwrap();
        assert!(matches!(
            t.apply(disk()),
            Err(StorageError::PartitionOverflow { .. })
        ));
    }

    #[test]
    fn open_without_table_fails() {
        assert!(matches!(
            PartitionTable::open(disk()),
            Err(StorageError::BadSuperblock(_))
        ));
    }

    #[test]
    fn zero_length_partition_rejected() {
        let mut t = PartitionTable::new();
        assert!(t.add("empty", PartitionKind::Data, 0).is_err());
    }
}

//! A dm-verity analogue: a read-only block device whose every read is
//! verified against a SHA-256 Merkle tree rooted in a single trusted hash.
//!
//! Matches the kernel target's structure (§2.1.2 of the paper, and the
//! `veritysetup` defaults the evaluation uses): 4 KiB data and hash blocks,
//! SHA-256, salted leaf hashes, hash tree stored out-of-band (in Revelio, a
//! dedicated metadata partition) and a root hash that travels on the kernel
//! command line so it is covered by the launch measurement.
//!
//! Every read of a data block re-hashes the block and walks its path up the
//! tree to the trusted root — a single flipped bit anywhere in the data *or*
//! the stored tree makes the read fail with
//! [`StorageError::IntegrityViolation`]. Writes fail with
//! [`StorageError::ReadOnly`].

use std::sync::Arc;

use revelio_crypto::sha2::{HashFunction, Sha256};
use revelio_crypto::wire::{ByteReader, ByteWriter};

use crate::block::BlockDevice;
use crate::StorageError;

/// Digest size of the tree's hash function (SHA-256).
pub const DIGEST_LEN: usize = 32;

/// Parameters of a verity tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerityParams {
    /// Bytes per hash block (how many digests are packed per tree node);
    /// the paper uses 4 KiB.
    pub hash_block_size: usize,
    /// Salt mixed into every digest.
    pub salt: [u8; 32],
}

impl Default for VerityParams {
    fn default() -> Self {
        VerityParams {
            hash_block_size: 4096,
            salt: [0; 32],
        }
    }
}

impl VerityParams {
    fn digests_per_block(&self) -> usize {
        self.hash_block_size / DIGEST_LEN
    }
}

fn salted_digest(salt: &[u8; 32], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(salt);
    h.update(data);
    h.finalize().try_into().expect("32 bytes")
}

/// The out-of-band hash tree plus its parameters — what the build step
/// writes to the verity metadata partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerityTree {
    params: VerityParams,
    data_blocks: u64,
    /// `levels[0]` holds the leaf digests (padded to hash blocks);
    /// each higher level hashes the blocks of the one below.
    levels: Vec<Vec<u8>>,
    root_hash: [u8; DIGEST_LEN],
}

impl VerityTree {
    /// Builds the tree over every block of `device`.
    ///
    /// This is the cost the paper's Table 1 row "dm-verity setup" plus the
    /// image-build-time generation; it reads the whole device once.
    ///
    /// # Errors
    ///
    /// Propagates device read errors.
    pub fn build(device: &dyn BlockDevice, params: VerityParams) -> Result<Self, StorageError> {
        let mut leaf_level = Vec::new();
        let mut buf = vec![0u8; device.block_size()];
        for i in 0..device.block_count() {
            device.read_block(i, &mut buf)?;
            leaf_level.extend_from_slice(&salted_digest(&params.salt, &buf));
        }
        Self::from_leaf_level(leaf_level, device.block_count(), params)
    }

    fn from_leaf_level(
        mut level: Vec<u8>,
        data_blocks: u64,
        params: VerityParams,
    ) -> Result<Self, StorageError> {
        let hbs = params.hash_block_size;
        let mut levels = Vec::new();
        loop {
            // Pad the level to whole hash blocks.
            let padded = level.len().div_ceil(hbs).max(1) * hbs;
            level.resize(padded, 0);
            let is_top = level.len() == hbs;
            levels.push(level.clone());
            if is_top {
                break;
            }
            // Parent level: one digest per hash block.
            let mut parent = Vec::with_capacity(level.len() / hbs * DIGEST_LEN);
            for block in level.chunks_exact(hbs) {
                parent.extend_from_slice(&salted_digest(&params.salt, block));
            }
            level = parent;
        }
        let root_hash = salted_digest(&params.salt, levels.last().expect("nonempty"));
        Ok(VerityTree {
            params,
            data_blocks,
            levels,
            root_hash,
        })
    }

    /// The root hash — the value Revelio puts on the kernel command line.
    #[must_use]
    pub fn root_hash(&self) -> [u8; DIGEST_LEN] {
        self.root_hash
    }

    /// Number of protected data blocks.
    #[must_use]
    pub fn data_blocks(&self) -> u64 {
        self.data_blocks
    }

    /// Tree depth (number of hash levels).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Serializes tree and parameters for the metadata partition.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(b"RVVT");
        w.put_u32(self.params.hash_block_size as u32);
        w.put_bytes(&self.params.salt);
        w.put_u64(self.data_blocks);
        w.put_u32(self.levels.len() as u32);
        for level in &self.levels {
            w.put_var_bytes(level);
        }
        w.into_bytes()
    }

    /// Decodes tree metadata.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::BadSuperblock`] or [`StorageError::Wire`] on
    /// malformed input. The root hash is recomputed from the stored top
    /// level, so a tampered tree cannot smuggle in its own root.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StorageError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_array::<4>()?;
        if &magic != b"RVVT" {
            return Err(StorageError::BadSuperblock("missing verity magic".into()));
        }
        let hash_block_size = r.get_u32()? as usize;
        if hash_block_size == 0 || !hash_block_size.is_multiple_of(DIGEST_LEN) {
            return Err(StorageError::BadSuperblock(format!(
                "invalid hash block size {hash_block_size}"
            )));
        }
        let salt = r.get_array::<32>()?;
        let data_blocks = r.get_u64()?;
        let n_levels = r.get_count(4)?; // var-bytes prefix per level
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            levels.push(r.get_var_bytes()?.to_vec());
        }
        r.finish()?;
        if levels.is_empty() {
            return Err(StorageError::BadSuperblock(
                "verity tree has no levels".into(),
            ));
        }
        let params = VerityParams {
            hash_block_size,
            salt,
        };

        // Authenticate the whole geometry against the root: the root hash
        // only covers the top level directly, so recompute every parent
        // level from the leaves and compare. A metadata partition tampered
        // in hash_block_size, level contents, or level structure fails
        // here instead of causing out-of-bounds panics (or silently wrong
        // sizes) at read time.
        for (i, level) in levels.iter().enumerate() {
            let bad = || {
                StorageError::BadSuperblock(format!("verity level {i} has inconsistent geometry"))
            };
            if level.is_empty() || !level.len().is_multiple_of(hash_block_size) {
                return Err(bad());
            }
            if i + 1 < levels.len() {
                let mut expected_parent =
                    Vec::with_capacity(level.len() / hash_block_size * DIGEST_LEN);
                for block in level.chunks_exact(hash_block_size) {
                    expected_parent.extend_from_slice(&salted_digest(&salt, block));
                }
                let padded =
                    expected_parent.len().div_ceil(hash_block_size).max(1) * hash_block_size;
                expected_parent.resize(padded, 0);
                if expected_parent != levels[i + 1] {
                    return Err(bad());
                }
            } else if level.len() != hash_block_size {
                // The top level must be exactly one hash block.
                return Err(bad());
            }
        }
        // The claimed data-block count must exactly match the leaf level's
        // padded extent, so the advertised device size cannot be inflated
        // (and can shrink by at most the padding slack of one hash block).
        let leaf_bytes = (data_blocks as usize)
            .checked_mul(DIGEST_LEN)
            .ok_or_else(|| StorageError::BadSuperblock("data block count overflow".into()))?;
        let expected_leaf_len = leaf_bytes.div_ceil(hash_block_size).max(1) * hash_block_size;
        if levels[0].len() != expected_leaf_len {
            return Err(StorageError::BadSuperblock(format!(
                "data block count {data_blocks} disagrees with leaf level size"
            )));
        }

        let root_hash = salted_digest(&params.salt, levels.last().expect("nonempty"));
        Ok(VerityTree {
            params,
            data_blocks,
            levels,
            root_hash,
        })
    }
}

impl VerityTree {
    /// Writes the serialized tree to a metadata device, prefixed with its
    /// exact length (partitions are zero-padded; the prefix recovers the
    /// true extent).
    ///
    /// # Errors
    ///
    /// Propagates device errors; a too-small device fails with
    /// [`StorageError::OutOfRange`].
    pub fn write_to_device(&self, device: &dyn BlockDevice) -> Result<(), StorageError> {
        let bytes = self.to_bytes();
        crate::block::write_at(device, 0, &(bytes.len() as u64).to_le_bytes())?;
        crate::block::write_at(device, 8, &bytes)
    }

    /// Reads a tree previously stored with [`VerityTree::write_to_device`].
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::BadSuperblock`] for an implausible length
    /// prefix, plus decode errors.
    pub fn read_from_device(device: &dyn BlockDevice) -> Result<Self, StorageError> {
        let len_bytes = crate::block::read_at(device, 0, 8)?;
        let len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes"));
        if len == 0
            || len
                .checked_add(8)
                .is_none_or(|end| end > device.len_bytes())
        {
            return Err(StorageError::BadSuperblock(format!(
                "verity metadata length {len} does not fit device"
            )));
        }
        let bytes = crate::block::read_at(device, 8, len as usize)?;
        Self::from_bytes(&bytes)
    }
}

/// The verified, read-only device (`/dev/mapper/<name>` analogue).
pub struct VerityDevice {
    data: Arc<dyn BlockDevice>,
    tree: VerityTree,
}

impl std::fmt::Debug for VerityDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerityDevice")
            .field("data_blocks", &self.tree.data_blocks)
            .field("depth", &self.tree.depth())
            .finish_non_exhaustive()
    }
}

impl VerityDevice {
    /// Opens a verity mapping: `data` is the underlying (untrusted) device,
    /// `tree` its hash metadata, `expected_root` the trusted root hash from
    /// the kernel command line.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::RootHashMismatch`] when the tree does not
    /// produce `expected_root` — the paper's "mounting will be unsuccessful"
    /// failure (§6.1.2).
    pub fn open(
        data: Arc<dyn BlockDevice>,
        tree: VerityTree,
        expected_root: &[u8; DIGEST_LEN],
    ) -> Result<Self, StorageError> {
        if !revelio_crypto::ct::eq(&tree.root_hash, expected_root) {
            return Err(StorageError::RootHashMismatch);
        }
        Ok(VerityDevice { data, tree })
    }

    /// Verifies block `index`'s digest path from leaf to root.
    fn verify_path(&self, index: u64, data: &[u8]) -> Result<(), StorageError> {
        let params = &self.tree.params;
        let violation = || StorageError::IntegrityViolation { block: index };

        // Leaf: data block digest must match the stored leaf entry.
        let mut digest = salted_digest(&params.salt, data);
        let mut entry_index = index as usize;
        for (level_no, level) in self.tree.levels.iter().enumerate() {
            let offset = entry_index * DIGEST_LEN;
            if offset + DIGEST_LEN > level.len() {
                return Err(violation());
            }
            if !revelio_crypto::ct::eq(&digest, &level[offset..offset + DIGEST_LEN]) {
                return Err(violation());
            }
            // Hash the containing block of this level to check against the
            // next level up (or the root).
            let block_no = entry_index / params.digests_per_block();
            let start = block_no * params.hash_block_size;
            if start + params.hash_block_size > level.len() {
                // Geometry is validated at decode time; fail closed if a
                // hand-constructed tree slips through.
                return Err(violation());
            }
            let block = &level[start..start + params.hash_block_size];
            digest = salted_digest(&params.salt, block);
            entry_index = block_no;
            if level_no == self.tree.levels.len() - 1
                && !revelio_crypto::ct::eq(&digest, &self.tree.root_hash)
            {
                return Err(violation());
            }
        }
        Ok(())
    }
}

impl BlockDevice for VerityDevice {
    fn block_size(&self) -> usize {
        self.data.block_size()
    }

    fn block_count(&self) -> u64 {
        self.tree.data_blocks
    }

    fn read_block(&self, index: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        if index >= self.tree.data_blocks {
            return Err(StorageError::OutOfRange {
                block: index,
                device_blocks: self.tree.data_blocks,
            });
        }
        self.data.read_block(index, buf)?;
        self.verify_path(index, buf)
    }

    fn write_block(&self, _index: u64, _data: &[u8]) -> Result<(), StorageError> {
        Err(StorageError::ReadOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemBlockDevice;
    use proptest::prelude::*;

    const BS: usize = 512;

    fn data_device(blocks: u64) -> Arc<MemBlockDevice> {
        let dev = Arc::new(MemBlockDevice::new(BS, blocks));
        for i in 0..blocks {
            let fill = vec![(i % 251) as u8 + 1; BS];
            dev.write_block(i, &fill).unwrap();
        }
        dev
    }

    fn params() -> VerityParams {
        VerityParams {
            hash_block_size: 256,
            salt: [7; 32],
        }
    }

    #[test]
    fn reads_verify_and_return_data() {
        let dev = data_device(20);
        let tree = VerityTree::build(dev.as_ref(), params()).unwrap();
        let root = tree.root_hash();
        let verity = VerityDevice::open(dev, tree, &root).unwrap();
        let mut buf = [0u8; BS];
        for i in 0..20 {
            verity.read_block(i, &mut buf).unwrap();
            assert_eq!(buf[0], (i % 251) as u8 + 1);
        }
    }

    #[test]
    fn wrong_root_hash_fails_open() {
        let dev = data_device(4);
        let tree = VerityTree::build(dev.as_ref(), params()).unwrap();
        let mut bad_root = tree.root_hash();
        bad_root[0] ^= 1;
        assert_eq!(
            VerityDevice::open(dev, tree, &bad_root).err(),
            Some(StorageError::RootHashMismatch)
        );
    }

    #[test]
    fn single_bit_flip_detected() {
        // §6.1.3: "even a single bit change anywhere in the disk will cause
        // dm-verity to raise errors".
        let dev = data_device(8);
        let tree = VerityTree::build(dev.as_ref(), params()).unwrap();
        let root = tree.root_hash();
        dev.corrupt_bit(3 * BS as u64 + 100, 2); // inside block 3
        let verity = VerityDevice::open(Arc::clone(&dev) as _, tree, &root).unwrap();
        let mut buf = [0u8; BS];
        assert_eq!(
            verity.read_block(3, &mut buf),
            Err(StorageError::IntegrityViolation { block: 3 })
        );
        // Untouched blocks still read fine.
        verity.read_block(2, &mut buf).unwrap();
    }

    #[test]
    fn tampered_tree_detected() {
        let dev = data_device(8);
        let tree = VerityTree::build(dev.as_ref(), params()).unwrap();
        let root = tree.root_hash();
        // Attacker rewrites both a data block and its leaf digest in the
        // serialized tree; the level above catches it.
        let mut bytes = tree.to_bytes();
        // Flip a byte somewhere inside the leaf level payload.
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0xff;
        let tampered = VerityTree::from_bytes(&bytes).unwrap();
        // Recomputed root no longer matches the trusted root.
        assert!(VerityDevice::open(dev, tampered, &root).is_err());
    }

    #[test]
    fn writes_rejected() {
        let dev = data_device(4);
        let tree = VerityTree::build(dev.as_ref(), params()).unwrap();
        let root = tree.root_hash();
        let verity = VerityDevice::open(dev, tree, &root).unwrap();
        assert_eq!(
            verity.write_block(0, &[0u8; BS]),
            Err(StorageError::ReadOnly)
        );
    }

    #[test]
    fn tree_serialization_roundtrip() {
        let dev = data_device(10);
        let tree = VerityTree::build(dev.as_ref(), params()).unwrap();
        let decoded = VerityTree::from_bytes(&tree.to_bytes()).unwrap();
        assert_eq!(decoded, tree);
        assert_eq!(decoded.root_hash(), tree.root_hash());
    }

    #[test]
    fn depth_grows_with_device_size() {
        let small = VerityTree::build(data_device(2).as_ref(), params()).unwrap();
        // 256-byte hash blocks hold 8 digests; 100 blocks need 13 leaf
        // blocks -> 2 levels; 2 blocks fit in one -> 1 level.
        let large = VerityTree::build(data_device(100).as_ref(), params()).unwrap();
        assert_eq!(small.depth(), 1);
        assert!(large.depth() >= 2, "depth {}", large.depth());
    }

    #[test]
    fn salt_changes_root() {
        let dev = data_device(4);
        let t1 = VerityTree::build(
            dev.as_ref(),
            VerityParams {
                salt: [1; 32],
                ..params()
            },
        )
        .unwrap();
        let t2 = VerityTree::build(
            dev.as_ref(),
            VerityParams {
                salt: [2; 32],
                ..params()
            },
        )
        .unwrap();
        assert_ne!(t1.root_hash(), t2.root_hash());
    }

    #[test]
    fn bad_hash_block_size_rejected() {
        let dev = data_device(4);
        let tree = VerityTree::build(dev.as_ref(), params()).unwrap();
        let mut bytes = tree.to_bytes();
        bytes[4..8].copy_from_slice(&33u32.to_le_bytes()); // not multiple of 32
        assert!(matches!(
            VerityTree::from_bytes(&bytes),
            Err(StorageError::BadSuperblock(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn any_corruption_in_any_block_is_detected(
            blocks in 1u64..32,
            corrupt_byte in 0u64..,
            bit in 0u8..8,
        ) {
            let dev = data_device(blocks);
            let tree = VerityTree::build(dev.as_ref(), params()).unwrap();
            let root = tree.root_hash();
            let total = blocks * BS as u64;
            let offset = corrupt_byte % total;
            let victim = offset / BS as u64;
            dev.corrupt_bit(offset, bit);
            let verity = VerityDevice::open(dev, tree, &root).unwrap();
            let mut buf = [0u8; BS];
            prop_assert_eq!(
                verity.read_block(victim, &mut buf),
                Err(StorageError::IntegrityViolation { block: victim })
            );
        }
    }
}

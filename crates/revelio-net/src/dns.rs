//! Simulated DNS: name → address records plus the TXT records the ACME
//! DNS-01 challenge uses.
//!
//! DNS is *untrusted* in Revelio's threat model: a malicious service
//! provider controls the domain and "can create a new certificate as they
//! control access to DNS and use this new certificate to redirect users
//! away from the secure VM" (§5.3.2). The zone therefore has explicit
//! attacker operations; defenses live above (extension key pinning).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::NetError;

/// A mutable DNS zone shared by clients, servers and attackers.
#[derive(Debug, Clone, Default)]
pub struct DnsZone {
    records: Arc<Mutex<Records>>,
}

#[derive(Debug, Default)]
struct Records {
    a: HashMap<String, String>,
    txt: HashMap<String, Vec<String>>,
}

impl DnsZone {
    /// Creates an empty zone.
    #[must_use]
    pub fn new() -> Self {
        DnsZone::default()
    }

    /// Sets the address record for `domain` (also the attack primitive: a
    /// DNS-controlling adversary repoints the name).
    pub fn set_address(&self, domain: &str, address: &str) {
        self.records
            .lock()
            .a
            .insert(domain.to_owned(), address.to_owned());
    }

    /// Resolves `domain` to a network address.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NameResolution`] for unknown names.
    pub fn resolve(&self, domain: &str) -> Result<String, NetError> {
        self.records
            .lock()
            .a
            .get(domain)
            .cloned()
            .ok_or_else(|| NetError::NameResolution(domain.to_owned()))
    }

    /// Publishes a TXT record (ACME DNS-01 challenge tokens live at
    /// `_acme-challenge.<domain>`).
    pub fn set_txt(&self, name: &str, value: &str) {
        self.records
            .lock()
            .txt
            .entry(name.to_owned())
            .or_default()
            .push(value.to_owned());
    }

    /// Reads the TXT records at `name`.
    #[must_use]
    pub fn txt(&self, name: &str) -> Vec<String> {
        self.records
            .lock()
            .txt
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// Clears the TXT records at `name` (challenge cleanup).
    pub fn clear_txt(&self, name: &str) {
        self.records.lock().txt.remove(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_roundtrip_and_unknown() {
        let zone = DnsZone::new();
        zone.set_address("pad.example.org", "203.0.113.5:443");
        assert_eq!(zone.resolve("pad.example.org").unwrap(), "203.0.113.5:443");
        assert!(matches!(
            zone.resolve("other.example.org"),
            Err(NetError::NameResolution(_))
        ));
    }

    #[test]
    fn repointing_changes_resolution() {
        let zone = DnsZone::new();
        zone.set_address("pad.example.org", "honest:443");
        zone.set_address("pad.example.org", "evil:443");
        assert_eq!(zone.resolve("pad.example.org").unwrap(), "evil:443");
    }

    #[test]
    fn txt_records_accumulate_and_clear() {
        let zone = DnsZone::new();
        zone.set_txt("_acme-challenge.pad.example.org", "token-1");
        zone.set_txt("_acme-challenge.pad.example.org", "token-2");
        assert_eq!(zone.txt("_acme-challenge.pad.example.org").len(), 2);
        zone.clear_txt("_acme-challenge.pad.example.org");
        assert!(zone.txt("_acme-challenge.pad.example.org").is_empty());
    }

    #[test]
    fn clones_share_zone() {
        let a = DnsZone::new();
        let b = a.clone();
        a.set_address("x", "y:1");
        assert_eq!(b.resolve("x").unwrap(), "y:1");
    }
}

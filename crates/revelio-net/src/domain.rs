//! Correlated-failure domains: whole-subnet partitions, asymmetric
//! links, and scheduled heal times.
//!
//! Per-address [`FaultPlan`]s model independent link loss; real outages
//! are correlated — a rack switch dies and every address behind it goes
//! dark at once, or a peering dispute blackholes traffic in one
//! direction only. A [`FaultDomain`] captures that: it matches every
//! `(source, destination)` pair whose destination starts with one of its
//! prefixes (and, optionally, whose source starts with one of the source
//! prefixes — the asymmetric-link case), and applies its effect during a
//! sim-time window with a scheduled heal.
//!
//! Domains layer **over** the per-address/per-route plans: a domain is
//! consulted first (it is the lower network layer); only when it injects
//! nothing do the address and route plans get their say. Degraded
//! domains draw from their own splitmix64 streams keyed
//! `(domain name, destination address)` and seeded from the fabric's
//! fault seed, so chaos runs stay byte-identical at any thread count and
//! traffic to one destination cannot perturb another's decision stream.
//! Partitions consume no randomness at all: every matching dial and
//! exchange fails, deterministically.

use crate::fault::FaultPlan;

/// What a matching [`FaultDomain`] does to traffic while active.
#[derive(Debug, Clone)]
pub enum DomainEffect {
    /// Total blackout: every matching dial times out and every matching
    /// exchange is dropped, with no probabilistic draw.
    Partition,
    /// Probabilistic degradation: matching exchanges are governed by this
    /// plan, drawn from a per-destination stream. Dials are unaffected
    /// (the link is up, just lossy).
    Degraded(FaultPlan),
}

/// Derives the RNG stream key for a degraded domain's per-destination
/// stream. The double separator cannot collide with address-wide keys
/// (no `\n`) or route keys (exactly one `\n`).
#[must_use]
pub(crate) fn domain_stream_key(name: &str, dst: &str) -> String {
    format!("{name}\n\n{dst}")
}

/// A correlated-failure domain installed on the fabric via
/// [`crate::net::SimNet::install_fault_domain`].
///
/// ```
/// use revelio_net::{FaultDomain, FaultPlan};
///
/// // Rack 114 goes dark at t=0 and heals two simulated minutes later.
/// let partition = FaultDomain::partition("dc-114", "203.0.114.")
///     .healing_at_us(120_000_000);
/// // One-directional loss: traffic *from* 203.0.113.* *to* the KDS.
/// let asymmetric = FaultDomain::partition("kds-uplink", "kds.amd.test:")
///     .from_sources("203.0.113.");
/// let _ = (partition, asymmetric);
/// ```
#[derive(Debug, Clone)]
pub struct FaultDomain {
    /// Unique handle for install/replace/clear.
    pub name: String,
    /// Destination-address prefixes the domain matches (any hit counts).
    pub dst_prefixes: Vec<String>,
    /// Source-address prefixes. Empty matches **any** source, including
    /// handles with no bound source address; non-empty matches only
    /// dials made through [`crate::net::SimNet::bound_to`] handles whose
    /// local address starts with one of these prefixes — the
    /// asymmetric-link case (A→B dark while B→A delivers).
    pub src_prefixes: Vec<String>,
    /// What happens to matching traffic.
    pub effect: DomainEffect,
    /// Sim time the domain activates, µs (0 = immediately).
    pub from_us: u64,
    /// Scheduled heal: the domain stops matching at this sim time.
    /// `None` lasts until cleared.
    pub until_us: Option<u64>,
    /// Simulated time a client spends discovering a partitioned peer
    /// (per faulted dial or exchange), µs.
    pub timeout_us: u64,
}

impl FaultDomain {
    /// A total partition of every destination matching `dst_prefix`,
    /// active immediately and until cleared or a heal is scheduled.
    #[must_use]
    pub fn partition(name: &str, dst_prefix: &str) -> Self {
        FaultDomain {
            name: name.to_owned(),
            dst_prefixes: vec![dst_prefix.to_owned()],
            src_prefixes: Vec::new(),
            effect: DomainEffect::Partition,
            from_us: 0,
            until_us: None,
            timeout_us: FaultPlan::default().timeout_us,
        }
    }

    /// A lossy (but connected) domain: exchanges toward `dst_prefix`
    /// draw from `plan` on a per-destination stream.
    #[must_use]
    pub fn degraded(name: &str, dst_prefix: &str, plan: FaultPlan) -> Self {
        FaultDomain {
            effect: DomainEffect::Degraded(plan),
            ..FaultDomain::partition(name, dst_prefix)
        }
    }

    /// Adds another destination prefix.
    #[must_use]
    pub fn matching(mut self, dst_prefix: &str) -> Self {
        self.dst_prefixes.push(dst_prefix.to_owned());
        self
    }

    /// Restricts the domain to traffic originating from addresses with
    /// this prefix (asymmetric link). May be called repeatedly.
    #[must_use]
    pub fn from_sources(mut self, src_prefix: &str) -> Self {
        self.src_prefixes.push(src_prefix.to_owned());
        self
    }

    /// Delays activation until sim time `from_us`.
    #[must_use]
    pub fn starting_at_us(mut self, from_us: u64) -> Self {
        self.from_us = from_us;
        self
    }

    /// Schedules the heal: the domain stops matching at sim time
    /// `until_us`.
    #[must_use]
    pub fn healing_at_us(mut self, until_us: u64) -> Self {
        self.until_us = Some(until_us);
        self
    }

    /// Overrides the per-fault discovery timeout.
    #[must_use]
    pub fn with_timeout_us(mut self, timeout_us: u64) -> Self {
        self.timeout_us = timeout_us;
        self
    }

    /// Whether the domain's window covers sim time `now_us`.
    #[must_use]
    pub fn is_active_at(&self, now_us: u64) -> bool {
        now_us >= self.from_us && self.until_us.is_none_or(|until| now_us < until)
    }

    /// Whether traffic from `src` (None = an unbound handle) to `dst`
    /// falls inside this domain.
    #[must_use]
    pub fn matches(&self, src: Option<&str>, dst: &str) -> bool {
        if !self
            .dst_prefixes
            .iter()
            .any(|p| dst.starts_with(p.as_str()))
        {
            return false;
        }
        if self.src_prefixes.is_empty() {
            return true;
        }
        src.is_some_and(|s| self.src_prefixes.iter().any(|p| s.starts_with(p.as_str())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_matches_prefix_and_window() {
        let d = FaultDomain::partition("rack", "10.1.")
            .starting_at_us(100)
            .healing_at_us(200);
        assert!(d.matches(None, "10.1.0.7:443"));
        assert!(!d.matches(None, "10.2.0.7:443"));
        assert!(!d.is_active_at(99));
        assert!(d.is_active_at(100));
        assert!(d.is_active_at(199));
        assert!(!d.is_active_at(200));
    }

    #[test]
    fn source_prefixes_make_the_domain_asymmetric() {
        let d = FaultDomain::partition("uplink", "10.2.").from_sources("10.1.");
        assert!(d.matches(Some("10.1.0.3:8080"), "10.2.0.7:443"));
        assert!(!d.matches(Some("10.3.0.3:8080"), "10.2.0.7:443"));
        // Handles without a source address never match a source-scoped
        // domain.
        assert!(!d.matches(None, "10.2.0.7:443"));
    }

    #[test]
    fn extra_prefixes_extend_the_match() {
        let d = FaultDomain::partition("two-racks", "10.1.").matching("10.2.");
        assert!(d.matches(None, "10.1.9.9:1"));
        assert!(d.matches(None, "10.2.9.9:1"));
        assert!(!d.matches(None, "10.3.9.9:1"));
    }

    #[test]
    fn stream_keys_cannot_collide_with_route_keys() {
        // Route keys contain exactly one '\n'; domain keys two.
        let key = domain_stream_key("rack", "10.1.0.7:443");
        assert_eq!(key.matches('\n').count(), 2);
    }
}

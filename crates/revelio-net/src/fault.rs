//! Seeded, deterministic fault injection for the simulated network.
//!
//! The paper's end-user attestation path crosses four unreliable networks
//! (browser → boundary node → VM → AMD KDS), yet a perfectly reliable
//! fabric cannot exercise the retry and verdict logic that separates a
//! dropped packet from a failed attestation. A [`FaultPlan`] installed on
//! an address (via `net.peer(address).fault_plan(..)`) — or on a single
//! route (`.fault_plan_for_route(prefix, ..)`) — injects drops, timeouts,
//! connection resets, fail-N-then-recover windows, and latency jitter —
//! every decision drawn from a [`FaultRng`] seeded from the fabric's fault
//! seed and the stream key (address, or address + route prefix), so equal
//! seeds give byte-identical runs regardless of what other addresses or
//! routes are doing.
//!
//! Faults are injected **before delivery**: the listener's handler never
//! runs for a faulted exchange, so server-side state is untouched and
//! retries are always safe.

/// FNV-1a, used to derive a per-address RNG stream from the fabric seed.
#[must_use]
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic splitmix64 PRNG driving all fault decisions.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[0, n]` (inclusive); `n` may be 0.
    pub fn below_inclusive(&mut self, n: u64) -> u64 {
        if n == u64::MAX {
            self.next_u64()
        } else {
            self.next_u64() % (n + 1)
        }
    }

    /// A draw in `[0, 1)` for probability comparisons.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits, the standard uniform-double construction.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The kinds of fault the fabric can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The message (or connection attempt) was dropped in flight.
    Dropped,
    /// The peer never answered within the timeout window.
    Timeout,
    /// The connection was reset mid-exchange.
    Reset,
}

impl FaultKind {
    /// Stable lowercase label (for logs and metrics attributes).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Dropped => "dropped",
            FaultKind::Timeout => "timeout",
            FaultKind::Reset => "reset",
        }
    }
}

/// Per-address fault configuration.
///
/// Probabilities apply per exchange; `fail_first` applies per dial. All
/// zeros (the [`Default`]) injects nothing.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability an exchange's request is dropped in flight
    /// ([`crate::NetError::Dropped`] after waiting out `timeout_us`).
    pub drop_probability: f64,
    /// Probability an exchange times out undelivered
    /// ([`crate::NetError::Timeout`] after `timeout_us`).
    pub timeout_probability: f64,
    /// Probability the connection is reset mid-exchange
    /// ([`crate::NetError::ConnectionClosed`], costs one one-way trip).
    pub reset_probability: f64,
    /// Fail the first N dials to this address with a timeout, then
    /// recover — the "service briefly down" window.
    pub fail_first: u32,
    /// Simulated time a client waits before declaring a drop/timeout, µs.
    pub timeout_us: u64,
    /// Maximum extra one-way latency jitter per exchange, µs.
    pub jitter_us: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop_probability: 0.0,
            timeout_probability: 0.0,
            reset_probability: 0.0,
            fail_first: 0,
            timeout_us: 1_000_000,
            jitter_us: 0,
        }
    }
}

impl FaultPlan {
    /// A plan whose only effect is failing the first `n` dials.
    #[must_use]
    pub fn fail_first(n: u32) -> Self {
        FaultPlan {
            fail_first: n,
            ..FaultPlan::default()
        }
    }

    /// A plan dropping every exchange — a hard outage until cleared.
    #[must_use]
    pub fn outage() -> Self {
        FaultPlan {
            drop_probability: 1.0,
            ..FaultPlan::default()
        }
    }

    /// Compact deterministic digest of every plan parameter, used by view
    /// fingerprints to compare routing state across fabric modes. `{:?}`
    /// on the probabilities prints the shortest round-trippable form, so
    /// equal plans always digest identically.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "d{:?}/t{:?}/r{:?}/ff{}/to{}/j{}",
            self.drop_probability,
            self.timeout_probability,
            self.reset_probability,
            self.fail_first,
            self.timeout_us,
            self.jitter_us,
        )
    }
}

/// Derives the RNG stream key for a per-route plan. The `\n` separator
/// cannot appear in addresses or HTTP paths, so `(address, prefix)` pairs
/// never collide with each other or with address-wide streams.
#[must_use]
pub(crate) fn route_stream_key(address: &str, prefix: &str) -> String {
    format!("{address}\n{prefix}")
}

/// Mutable per-stream injection state: the plan, its RNG stream, and the
/// dial counter driving `fail_first`. One entry exists per address-wide
/// plan and one per `(address, route-prefix)` plan; each draws from its
/// own seeded stream, so traffic on one stream cannot perturb another.
#[derive(Debug)]
pub(crate) struct FaultEntry {
    pub(crate) plan: FaultPlan,
    pub(crate) rng: FaultRng,
    pub(crate) dials: u64,
}

impl FaultEntry {
    /// Creates an entry whose decision stream is derived from the fabric
    /// seed and `stream_key` (the address, or [`route_stream_key`] for
    /// per-route plans).
    pub(crate) fn new(plan: FaultPlan, fabric_seed: u64, stream_key: &str) -> Self {
        FaultEntry {
            plan,
            rng: FaultRng::new(fabric_seed ^ fnv1a(stream_key)),
            dials: 0,
        }
    }

    /// Decides the fate of one exchange: extra one-way jitter plus an
    /// optional fault. Consumes a fixed number of RNG draws per call so
    /// the decision stream is reproducible.
    pub(crate) fn exchange_decision(&mut self) -> (u64, Option<FaultKind>) {
        let jitter = if self.plan.jitter_us > 0 {
            self.rng.below_inclusive(self.plan.jitter_us)
        } else {
            0
        };
        let draw = self.rng.next_f64();
        let p_drop = self.plan.drop_probability;
        let p_timeout = p_drop + self.plan.timeout_probability;
        let p_reset = p_timeout + self.plan.reset_probability;
        let fault = if draw < p_drop {
            Some(FaultKind::Dropped)
        } else if draw < p_timeout {
            Some(FaultKind::Timeout)
        } else if draw < p_reset {
            Some(FaultKind::Reset)
        } else {
            None
        };
        (jitter, fault)
    }

    /// Whether this dial falls inside the fail-first window.
    pub(crate) fn dial_fails(&mut self) -> bool {
        let fails = self.dials < u64::from(self.plan.fail_first);
        self.dials += 1;
        fails
    }
}

/// Observer invoked on every injected fault: `(dialed address, kind)`.
/// Installed via [`crate::net::SimNet::set_fault_observer`]; the harness
/// uses it to mirror injections into telemetry counters.
pub type FaultObserver = dyn Fn(&str, FaultKind) + Send + Sync;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_draws_are_in_unit_interval() {
        let mut rng = FaultRng::new(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn per_address_streams_differ() {
        let mut a = FaultEntry::new(FaultPlan::outage(), 1, "kds:443");
        let mut b = FaultEntry::new(FaultPlan::outage(), 1, "node:8080");
        assert_ne!(a.rng.next_u64(), b.rng.next_u64());
    }

    #[test]
    fn fail_first_window_counts_dials() {
        let mut e = FaultEntry::new(FaultPlan::fail_first(2), 0, "a:1");
        assert!(e.dial_fails());
        assert!(e.dial_fails());
        assert!(!e.dial_fails());
        assert!(!e.dial_fails());
    }

    #[test]
    fn outage_plan_always_drops() {
        let mut e = FaultEntry::new(FaultPlan::outage(), 9, "a:1");
        for _ in 0..32 {
            let (_, fault) = e.exchange_decision();
            assert_eq!(fault, Some(FaultKind::Dropped));
        }
    }

    #[test]
    fn default_plan_injects_nothing() {
        let mut e = FaultEntry::new(FaultPlan::default(), 9, "a:1");
        for _ in 0..32 {
            let (jitter, fault) = e.exchange_decision();
            assert_eq!(jitter, 0);
            assert_eq!(fault, None);
            assert!(!e.dial_fails());
        }
    }

    #[test]
    fn jitter_bounded_by_plan() {
        let mut e = FaultEntry::new(
            FaultPlan {
                jitter_us: 500,
                ..FaultPlan::default()
            },
            3,
            "a:1",
        );
        for _ in 0..100 {
            let (jitter, _) = e.exchange_decision();
            assert!(jitter <= 500);
        }
    }

    #[test]
    fn probabilities_partition_in_order() {
        // With drop=timeout=reset=1/3 every kind appears; the cumulative
        // partition means a single draw can only pick one.
        let mut e = FaultEntry::new(
            FaultPlan {
                drop_probability: 1.0 / 3.0,
                timeout_probability: 1.0 / 3.0,
                reset_probability: 1.0 / 3.0,
                ..FaultPlan::default()
            },
            5,
            "a:1",
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let (_, fault) = e.exchange_decision();
            seen.insert(fault.expect("probabilities sum to 1"));
        }
        assert_eq!(seen.len(), 3);
    }
}

//! A deterministic simulated network for the Revelio reproduction.
//!
//! The paper's client-side evaluation (Table 3) is dominated by network
//! round trips: a plain HTTPS GET, the attestation-report fetch, the AMD
//! KDS query for the VCEK, and per-request connection revalidation. To
//! reproduce those *shapes* deterministically on any machine, this crate
//! provides:
//!
//! * [`clock::SimClock`] — a shared virtual clock, advanced only by
//!   simulated work (link latency, modelled server processing);
//! * [`net::SimNet`] — a registry of listeners keyed by address, with a
//!   per-link latency model; a [`net::Connection`] performs synchronous
//!   message exchanges, each advancing the clock by one round trip;
//! * [`dns::DnsZone`] — name resolution that attackers can repoint (the
//!   paper's "malicious service provider controls DNS" threat, §5.3.2);
//! * man-in-the-middle hooks — `net.peer(victim).redirect_to(attacker)`
//!   (see [`net::PeerShaper`]) silently rewires an address to an
//!   attacker's listener; higher layers (TLS, the web extension) must
//!   detect this;
//! * [`fault::FaultPlan`] — seeded, deterministic fault injection per
//!   dialed address or per `(address, route-prefix)` (drops, timeouts,
//!   resets, fail-first windows, latency jitter), installed via
//!   `net.peer(address).fault_plan(..)`;
//! * [`domain::FaultDomain`] — correlated failures layered *under* the
//!   per-address plans: whole-subnet partitions, asymmetric links
//!   (scoped to handles from [`net::SimNet::bound_to`]), and scheduled
//!   heal windows, installed via `net.install_fault_domain(..)`;
//! * [`retry::RetryPolicy`] — bounded exponential backoff whose sleeps
//!   advance the [`clock::SimClock`], never wall time;
//! * [`snapshot::Snapshot`] — a from-scratch epoch/arc-swap cell giving
//!   the dial fast path (and the KDS client's VCEK cache) lock-free
//!   reads of rarely-republished immutable state.
//!
//! Exchanges are synchronous — protocol state machines remain ordinary
//! sequential code — but the fabric itself is sharded and thread-safe:
//! dials to distinct addresses from different OS threads never contend
//! (and, on the default snapshot read path, clean dials touch no locks
//! at all), and the determinism contract (per-address seeded fault
//! streams, a lock-free [`clock::SimClock`]) holds under any thread
//! interleaving. See [`net`] for the sharding and determinism story.
//!
//! ```
//! use revelio_net::clock::SimClock;
//! use revelio_net::net::{ConnectionHandler, Listener, NetConfig, SimNet};
//!
//! struct Echo;
//! impl Listener for Echo {
//!     fn accept(&self) -> Box<dyn ConnectionHandler> {
//!         struct H;
//!         impl ConnectionHandler for H {
//!             fn on_message(&mut self, m: &[u8]) -> Result<Vec<u8>, revelio_net::NetError> {
//!                 Ok(m.to_vec())
//!             }
//!         }
//!         Box::new(H)
//!     }
//! }
//!
//! let clock = SimClock::new();
//! let net = SimNet::new(clock.clone(), NetConfig::default());
//! net.bind("203.0.113.1:7", std::sync::Arc::new(Echo))?;
//! let mut conn = net.dial("203.0.113.1:7")?;
//! assert_eq!(conn.exchange(b"ping")?, b"ping");
//! assert!(clock.now_ms() > 0.0); // the exchange cost a round trip
//! # Ok::<(), revelio_net::NetError>(())
//! ```

pub mod clock;
pub mod dns;
pub mod domain;
pub mod error;
pub mod fault;
pub mod net;
pub mod retry;
pub mod snapshot;
pub(crate) mod view;

pub use domain::{DomainEffect, FaultDomain};
pub use error::NetError;
pub use fault::{FaultKind, FaultPlan};
pub use retry::RetryPolicy;

//! The persistent (structurally shared) routing-view tree.
//!
//! PR 5's snapshot read path published the routing view as a flat
//! `Box<[Arc<HashMap>]>` mirroring the lock-shard array, and every
//! mutation cloned the *entire* slot array plus the per-slot planned
//! counts — O(slots) per write, and the whole reason fleet provisioning
//! regressed ~25× in snapshot mode. This module replaces that layout
//! with a fixed-depth persistent trie:
//!
//! * [`VIEW_FANOUT`]-way interior nodes, [`VIEW_LEVELS`] levels deep, so
//!   the tree fans out to [`VIEW_BUCKETS`] leaf buckets keyed purely by
//!   `fnv1a(address)` — **independent of the lock topology**, which is
//!   why hot-stripe registration no longer needs a view rebuild;
//! * a republish path-copies the O([`VIEW_LEVELS`]) interior nodes on the
//!   way to one leaf bucket and shares every untouched subtree with the
//!   previous view (`Arc` per child) — a single-address republish clones
//!   a handful of nodes regardless of fleet size;
//! * a batch flush applies all its updates in one pass, cloning each
//!   touched leaf bucket exactly once.
//!
//! The tree also carries the view-level bookkeeping the dial fast path
//! wants for free: total entry count and the count of *planned* peers
//! (any fault or route plan installed), so `all_clean` stays a stored
//! flag rather than a scan.
//!
//! [`PeerView`] itself changed shape in the same PR: instead of boolean
//! plan-presence flags that bounced every non-clean dial back to the
//! shard write locks, the view now publishes the **live fault entries**
//! (`Arc<Mutex<FaultEntry>>` shared with the authoritative shard maps).
//! A chaos-mode draw locks only the tiny per-entry mutex — the same
//! entry object both read paths consume, so the decision streams stay
//! byte-identical across fabric modes.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::fault::{fnv1a, FaultEntry};
use crate::net::{Listener, TamperFn};

/// Fan-out of each interior node (one hex nibble of the address hash).
pub(crate) const VIEW_FANOUT: usize = 16;

/// Interior levels between the root and the leaf buckets.
pub(crate) const VIEW_LEVELS: usize = 3;

/// Leaf buckets: `VIEW_FANOUT ^ VIEW_LEVELS`.
pub(crate) const VIEW_BUCKETS: usize = VIEW_FANOUT.pow(VIEW_LEVELS as u32);

// The nibble walk consumes 4 bits per level; the bucket count must match
// or lookups and updates would disagree on leaf placement.
const _: () = assert!(VIEW_BUCKETS == 1 << (4 * VIEW_LEVELS));

// `rebuilt_from` stores bucket indices as `u16`.
const _: () = assert!(VIEW_BUCKETS <= 1 << 16);

/// A fault entry shared between the authoritative shard map and the
/// published routing view. The mutex is a leaf lock: holders never
/// acquire anything else, so locking it inside a snapshot read guard
/// (or under a shard lock, as `set_fault_seed` does) cannot deadlock.
pub(crate) type SharedFaultEntry = Arc<Mutex<FaultEntry>>;

/// Everything the snapshot read path needs to know about one address.
/// The routing *shape* (listener, latency, redirect, tamper) is
/// immutable once published; the fault entries are shared mutable leaves
/// (see [`SharedFaultEntry`]) so draws never fall back to shard locks.
#[derive(Default, Clone)]
pub(crate) struct PeerView {
    pub(crate) listener: Option<Arc<dyn Listener>>,
    pub(crate) latency_us: Option<u64>,
    /// The cold fields (redirect, tamper, fault plans), boxed: the
    /// overwhelmingly common fleet entry is listener-only, and keeping
    /// it at 40 bytes instead of 112 cuts the batch-flush memory
    /// traffic — and the leaf-bucket cache footprint the dial path
    /// walks — by almost 3×.
    pub(crate) extra: Option<Box<PeerExtra>>,
}

/// The rarely-populated tail of a [`PeerView`].
#[derive(Default, Clone)]
pub(crate) struct PeerExtra {
    pub(crate) redirect: Option<String>,
    pub(crate) tamper: Option<Arc<TamperFn>>,
    /// The address-wide fault plan's live entry, if installed.
    pub(crate) fault: Option<SharedFaultEntry>,
    /// Per-route fault entries: `(path-prefix, entry)` in installation
    /// order; the longest matching prefix governs an exchange.
    pub(crate) routes: Option<Arc<[(String, SharedFaultEntry)]>>,
}

impl PeerExtra {
    fn is_empty(&self) -> bool {
        self.redirect.is_none()
            && self.tamper.is_none()
            && self.fault.is_none()
            && self.routes.is_none()
    }
}

impl PeerView {
    pub(crate) fn redirect(&self) -> Option<&str> {
        self.extra.as_deref()?.redirect.as_deref()
    }

    pub(crate) fn tamper(&self) -> Option<&Arc<TamperFn>> {
        self.extra.as_deref()?.tamper.as_ref()
    }

    pub(crate) fn fault(&self) -> Option<&SharedFaultEntry> {
        self.extra.as_deref()?.fault.as_ref()
    }

    pub(crate) fn routes(&self) -> Option<&[(String, SharedFaultEntry)]> {
        self.extra.as_deref()?.routes.as_deref()
    }

    /// The cold tail, allocated on first use (construction sites only).
    pub(crate) fn extra_mut(&mut self) -> &mut PeerExtra {
        self.extra.get_or_insert_with(Default::default)
    }

    /// Whether any plan (address-wide or per-route) is installed — the
    /// per-peer contribution to the view's planned count.
    pub(crate) fn planned(&self) -> bool {
        self.extra
            .as_deref()
            .is_some_and(|extra| extra.fault.is_some() || extra.routes.is_some())
    }

    /// Whether the view holds anything at all for the address; empty
    /// views are dropped from the tree instead of stored.
    pub(crate) fn is_empty(&self) -> bool {
        self.listener.is_none()
            && self.latency_us.is_none()
            && self.extra.as_deref().is_none_or(PeerExtra::is_empty)
    }

    /// Deterministic size estimate for one published entry, in bytes.
    /// Counts structure sizes and string lengths — never allocator or
    /// `HashMap`-capacity artifacts — so the fleet benchmark's
    /// memory-per-node column is byte-identical across runs.
    pub(crate) fn estimated_bytes(&self, address: &str) -> usize {
        // String header + bytes for the key, plus the entry struct.
        let mut bytes = 24 + address.len() + std::mem::size_of::<PeerView>();
        if let Some(extra) = self.extra.as_deref() {
            bytes += std::mem::size_of::<PeerExtra>();
            if let Some(redirect) = &extra.redirect {
                bytes += 24 + redirect.len();
            }
            if extra.fault.is_some() {
                bytes += SHARED_ENTRY_BYTES;
            }
            if let Some(routes) = &extra.routes {
                for (prefix, _) in routes.iter() {
                    bytes += 24 + prefix.len() + 16 + SHARED_ENTRY_BYTES;
                }
            }
        }
        bytes
    }
}

/// Estimated heap cost of one `Arc<Mutex<FaultEntry>>`.
const SHARED_ENTRY_BYTES: usize = 16 + std::mem::size_of::<Mutex<FaultEntry>>();

/// FNV-1a hasher for the leaf buckets. The leaf probe sits on the
/// clean-dial fast path, where SipHash's per-probe setup cost is
/// measurable at sub-microsecond dial latencies — and HashDoS
/// resistance buys nothing against the simulator's own address strings.
/// Matches [`fnv1a`] so the bucket nibbles and the in-bucket hash come
/// from the same function family.
pub(crate) struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        // Avalanche finalizer (murmur3's): every key in one leaf bucket
        // shares the low [`VIEW_LEVELS`]·4 hash bits that *picked* the
        // bucket, and the map derives its slot index from exactly those
        // low bits — raw FNV would collapse each leaf map into a linear
        // collision scan.
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^ (h >> 33)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Builds [`FnvHasher`]s seeded with the FNV offset basis.
#[derive(Default, Clone)]
pub(crate) struct FnvBuild;

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

/// One leaf bucket's map.
type Bucket = HashMap<String, PeerView, FnvBuild>;

/// Estimated cost of one interior node (`Arc` header + child array).
const INTERIOR_BYTES: usize = 16 + std::mem::size_of::<ViewNode>();

/// Estimated fixed cost of one leaf bucket's map.
const LEAF_BYTES: usize = 16 + 48;

/// One node of the persistent view trie.
enum ViewNode {
    /// An interior node; children indexed by the next hash nibble.
    /// `None` children are empty subtrees.
    Interior([Option<Arc<ViewNode>>; VIEW_FANOUT]),
    /// A leaf bucket: the addresses whose hash maps to this path.
    Leaf(Bucket),
}

/// The hash nibble indexing an interior node's children at `depth`.
fn nibble(hash: u64, depth: usize) -> usize {
    ((hash >> (4 * depth)) & (VIEW_FANOUT as u64 - 1)) as usize
}

/// The flattened leaf-bucket index for a hash: root nibble in the high
/// bits, so each chunk of [`VIEW_FANOUT`] adjacent buckets shares one
/// parent in [`SlotTree::rebuilt_from`]'s bottom-up assembly and the
/// order matches [`SlotTree::peer`]'s root-to-leaf walk.
fn bucket_index(hash: u64) -> usize {
    let mut idx = 0usize;
    for depth in 0..VIEW_LEVELS {
        idx = (idx << 4) | nibble(hash, depth);
    }
    idx
}

/// The persistent routing tree: a fixed-depth trie over
/// `fnv1a(address)` with structural sharing between versions. Cloning a
/// `SlotTree` clones one `Arc` and two counters; [`SlotTree::with_updates`]
/// path-copies only the nodes on the way to the touched leaf buckets.
#[derive(Default, Clone)]
pub(crate) struct SlotTree {
    root: Option<Arc<ViewNode>>,
    /// Number of addresses with a published entry.
    len: usize,
    /// Number of entries carrying any fault or route plan — the stored
    /// input to the view's `all_clean` flag.
    planned: usize,
}

impl SlotTree {
    /// Number of published entries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Number of entries carrying any plan.
    pub(crate) fn planned(&self) -> usize {
        self.planned
    }

    /// Looks up `address`'s published view: one hash, [`VIEW_LEVELS`]
    /// child hops, one leaf-map probe. No locks.
    pub(crate) fn peer(&self, address: &str) -> Option<&PeerView> {
        let hash = fnv1a(address);
        let mut node = self.root.as_deref()?;
        for depth in 0..VIEW_LEVELS {
            let ViewNode::Interior(children) = node else {
                unreachable!("interior node above leaf depth");
            };
            node = children[nibble(hash, depth)].as_deref()?;
        }
        let ViewNode::Leaf(bucket) = node else {
            unreachable!("leaf node at leaf depth");
        };
        bucket.get(address)
    }

    /// Returns a new tree with `updates` applied (`None` removes the
    /// address; an empty view also removes it). Updates are applied in
    /// order, so a later entry for the same address wins. Only the
    /// interior nodes on the paths to touched leaf buckets are copied;
    /// every other subtree is shared with `self`.
    pub(crate) fn with_updates(&self, updates: Vec<(String, Option<PeerView>)>) -> SlotTree {
        let mut updates: Vec<(u64, String, Option<PeerView>)> = updates
            .into_iter()
            .map(|(address, view)| {
                let view = view.filter(|v| !v.is_empty());
                (fnv1a(&address), address, view)
            })
            .collect();
        let mut len = self.len;
        let mut planned = self.planned;
        let root =
            Self::node_with_updates(self.root.as_ref(), 0, &mut updates, &mut len, &mut planned);
        SlotTree { root, len, planned }
    }

    /// Recursive path-copy: applies `updates` (all belonging to this
    /// subtree) to `node` at `depth`, adjusting the entry/planned counts.
    fn node_with_updates(
        node: Option<&Arc<ViewNode>>,
        depth: usize,
        updates: &mut Vec<(u64, String, Option<PeerView>)>,
        len: &mut usize,
        planned: &mut usize,
    ) -> Option<Arc<ViewNode>> {
        if depth == VIEW_LEVELS {
            let mut bucket = match node.map(Arc::as_ref) {
                Some(ViewNode::Leaf(bucket)) => bucket.clone(),
                None => Bucket::default(),
                Some(ViewNode::Interior(_)) => unreachable!("interior node at leaf depth"),
            };
            for (_, address, view) in updates.drain(..) {
                if let Some(old) = bucket.remove(&address) {
                    *len -= 1;
                    *planned -= usize::from(old.planned());
                }
                if let Some(view) = view {
                    *len += 1;
                    *planned += usize::from(view.planned());
                    bucket.insert(address, view);
                }
            }
            return (!bucket.is_empty()).then(|| Arc::new(ViewNode::Leaf(bucket)));
        }
        let mut children = match node.map(Arc::as_ref) {
            Some(ViewNode::Interior(children)) => children.clone(),
            None => std::array::from_fn(|_| None),
            Some(ViewNode::Leaf(_)) => unreachable!("leaf node above leaf depth"),
        };
        // Partition the updates by this level's nibble and recurse only
        // into touched children; untouched subtrees stay shared.
        let mut by_child: [Vec<(u64, String, Option<PeerView>)>; VIEW_FANOUT] =
            std::array::from_fn(|_| Vec::new());
        for update in updates.drain(..) {
            by_child[nibble(update.0, depth)].push(update);
        }
        for (i, subset) in by_child.iter_mut().enumerate() {
            if subset.is_empty() {
                continue;
            }
            children[i] =
                Self::node_with_updates(children[i].as_ref(), depth + 1, subset, len, planned);
        }
        (!children.iter().all(Option::is_none)).then(|| Arc::new(ViewNode::Interior(children)))
    }

    /// Builds a tree from scratch (the batch-overflow rebuild path).
    /// Buckets every entry directly by its three hash nibbles and
    /// assembles the interior levels bottom-up — one pass over the
    /// entries, instead of re-partitioning the whole set at every level
    /// the way the incremental path does. At 100k entries this is the
    /// difference between the batched provision flush being a blip and
    /// being half the provisioning bill.
    pub(crate) fn rebuilt_from(entries: Vec<(String, PeerView)>) -> SlotTree {
        // Hash once into a side index, count per bucket, then move each
        // entry straight into an exactly-sized map: repeated `HashMap`
        // growth re-moves every (large) entry log-many times, which at
        // 100k entries costs more than the extra counting pass.
        let indices: Vec<u16> = entries
            .iter()
            .map(|(address, _)| bucket_index(fnv1a(address)) as u16)
            .collect();
        let mut counts = vec![0usize; VIEW_BUCKETS];
        for (idx, (_, view)) in indices.iter().zip(&entries) {
            counts[*idx as usize] += usize::from(!view.is_empty());
        }
        let mut buckets: Vec<Bucket> = counts
            .into_iter()
            .map(|count| Bucket::with_capacity_and_hasher(count, FnvBuild))
            .collect();
        let mut len = 0usize;
        let mut planned = 0usize;
        for (idx, (address, view)) in indices.into_iter().zip(entries) {
            if view.is_empty() {
                continue;
            }
            planned += usize::from(view.planned());
            if let Some(old) = buckets[idx as usize].insert(address, view) {
                // A later duplicate wins, exactly as in `with_updates`.
                planned -= usize::from(old.planned());
            } else {
                len += 1;
            }
        }
        let mut level: Vec<Option<Arc<ViewNode>>> = buckets
            .into_iter()
            .map(|bucket| (!bucket.is_empty()).then(|| Arc::new(ViewNode::Leaf(bucket))))
            .collect();
        while level.len() > 1 {
            level = level
                .chunks_mut(VIEW_FANOUT)
                .map(|chunk| {
                    if chunk.iter().all(Option::is_none) {
                        return None;
                    }
                    let children: [Option<Arc<ViewNode>>; VIEW_FANOUT] =
                        std::array::from_fn(|i| chunk[i].take());
                    Some(Arc::new(ViewNode::Interior(children)))
                })
                .collect();
        }
        let root = level.into_iter().next().flatten();
        SlotTree { root, len, planned }
    }

    /// Visits every published entry, in unspecified order.
    pub(crate) fn for_each(&self, mut f: impl FnMut(&str, &PeerView)) {
        fn walk(node: &ViewNode, f: &mut impl FnMut(&str, &PeerView)) {
            match node {
                ViewNode::Interior(children) => {
                    for child in children.iter().flatten() {
                        walk(child, f);
                    }
                }
                ViewNode::Leaf(bucket) => {
                    for (address, view) in bucket {
                        f(address, view);
                    }
                }
            }
        }
        if let Some(root) = &self.root {
            walk(root, &mut f);
        }
    }

    /// Deterministic estimate of the tree's heap footprint in bytes
    /// (structure sizes and string lengths only — see
    /// [`PeerView::estimated_bytes`]). The fleet benchmark divides this
    /// by the node count for its memory-per-node column.
    pub(crate) fn estimated_bytes(&self) -> usize {
        fn walk(node: &ViewNode, bytes: &mut usize) {
            match node {
                ViewNode::Interior(children) => {
                    *bytes += INTERIOR_BYTES;
                    for child in children.iter().flatten() {
                        walk(child, bytes);
                    }
                }
                ViewNode::Leaf(bucket) => {
                    *bytes += LEAF_BYTES;
                    for (address, view) in bucket {
                        *bytes += view.estimated_bytes(address);
                    }
                }
            }
        }
        let mut bytes = std::mem::size_of::<SlotTree>();
        if let Some(root) = &self.root {
            walk(root, &mut bytes);
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_with_latency(latency: u64) -> PeerView {
        PeerView {
            latency_us: Some(latency),
            ..PeerView::default()
        }
    }

    #[test]
    fn lookup_roundtrips_and_counts() {
        let mut updates = Vec::new();
        for i in 0..500 {
            updates.push((format!("node-{i}:443"), Some(view_with_latency(i))));
        }
        let tree = SlotTree::default().with_updates(updates);
        assert_eq!(tree.len(), 500);
        assert_eq!(tree.planned(), 0);
        for i in 0..500 {
            let peer = tree.peer(&format!("node-{i}:443")).expect("published");
            assert_eq!(peer.latency_us, Some(i));
        }
        assert!(tree.peer("missing:443").is_none());
    }

    #[test]
    fn updates_share_untouched_structure() {
        let base = SlotTree::default().with_updates(
            (0..200)
                .map(|i| (format!("node-{i}:443"), Some(view_with_latency(i))))
                .collect(),
        );
        let next = base.with_updates(vec![("node-0:443".to_owned(), Some(view_with_latency(99)))]);
        // The untouched entries read identically from both versions and
        // the old version still holds its value (persistence).
        assert_eq!(base.peer("node-0:443").unwrap().latency_us, Some(0));
        assert_eq!(next.peer("node-0:443").unwrap().latency_us, Some(99));
        assert_eq!(next.len(), base.len());
        for i in 1..200 {
            let address = format!("node-{i}:443");
            let (a, b) = (base.peer(&address).unwrap(), next.peer(&address).unwrap());
            assert_eq!(a.latency_us, b.latency_us);
        }
    }

    #[test]
    fn removal_and_empty_views_prune_entries() {
        let tree = SlotTree::default().with_updates(vec![
            ("a:1".to_owned(), Some(view_with_latency(1))),
            ("b:1".to_owned(), Some(view_with_latency(2))),
        ]);
        let tree = tree.with_updates(vec![
            ("a:1".to_owned(), None),
            ("b:1".to_owned(), Some(PeerView::default())), // empty view = removal
        ]);
        assert_eq!(tree.len(), 0);
        assert!(tree.peer("a:1").is_none());
        assert!(tree.peer("b:1").is_none());
    }

    #[test]
    fn later_duplicate_update_wins() {
        let tree = SlotTree::default().with_updates(vec![
            ("a:1".to_owned(), Some(view_with_latency(1))),
            ("a:1".to_owned(), Some(view_with_latency(2))),
        ]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.peer("a:1").unwrap().latency_us, Some(2));
    }

    #[test]
    fn planned_count_tracks_fault_entries() {
        use crate::fault::FaultPlan;
        let entry: SharedFaultEntry =
            Arc::new(Mutex::new(FaultEntry::new(FaultPlan::default(), 0, "a:1")));
        let mut planned_view = PeerView::default();
        planned_view.extra_mut().fault = Some(entry);
        let tree = SlotTree::default().with_updates(vec![
            ("a:1".to_owned(), Some(planned_view.clone())),
            ("b:1".to_owned(), Some(view_with_latency(5))),
        ]);
        assert_eq!(tree.planned(), 1);
        let cleared = tree.with_updates(vec![("a:1".to_owned(), Some(view_with_latency(9)))]);
        assert_eq!(cleared.planned(), 0);
        assert_eq!(cleared.len(), 2);
    }

    #[test]
    fn rebuild_matches_incremental_construction() {
        let entries: Vec<(String, PeerView)> = (0..300)
            .map(|i| (format!("node-{i}:443"), view_with_latency(i)))
            .collect();
        let incremental = entries.iter().fold(SlotTree::default(), |tree, (a, v)| {
            tree.with_updates(vec![(a.clone(), Some(v.clone()))])
        });
        let rebuilt = SlotTree::rebuilt_from(entries);
        assert_eq!(incremental.len(), rebuilt.len());
        let mut count = 0;
        rebuilt.for_each(|address, view| {
            count += 1;
            assert_eq!(
                incremental.peer(address).unwrap().latency_us,
                view.latency_us
            );
        });
        assert_eq!(count, 300);
        // The estimate depends only on contents, not construction order.
        assert_eq!(incremental.estimated_bytes(), rebuilt.estimated_bytes());
    }

    #[test]
    fn bucket_constants_agree() {
        assert_eq!(VIEW_BUCKETS, 4096);
        // Every bucket index must be reachable from the hash nibbles.
        assert_eq!(VIEW_FANOUT.pow(VIEW_LEVELS as u32), VIEW_BUCKETS);
    }
}

//! The simulated network fabric: listeners, connections, latency, and
//! man-in-the-middle hooks.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::SimClock;
use crate::NetError;

/// Per-connection server-side state machine.
///
/// One handler instance exists per accepted connection; `on_message`
/// receives each client message and returns the response — the synchronous
/// exchange model every protocol in this workspace builds on.
pub trait ConnectionHandler: Send {
    /// Handles one client message, producing the response.
    ///
    /// # Errors
    ///
    /// Implementations return [`NetError::Protocol`] (or
    /// [`NetError::ConnectionClosed`]) to abort the connection.
    fn on_message(&mut self, message: &[u8]) -> Result<Vec<u8>, NetError>;
}

/// A service bound to an address; accepts connections.
pub trait Listener: Send + Sync {
    /// Creates the per-connection handler state.
    fn accept(&self) -> Box<dyn ConnectionHandler>;
}

/// Tampering hook: may rewrite a client→server message in flight.
pub type TamperFn = dyn Fn(&[u8]) -> Vec<u8> + Send + Sync;

/// Latency configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Default one-way link latency in microseconds.
    pub default_one_way_us: u64,
}

impl Default for NetConfig {
    /// 2.6 ms one way — the paper's 5.2 ms base round trip (Table 3).
    fn default() -> Self {
        NetConfig {
            default_one_way_us: 2600,
        }
    }
}

#[derive(Default)]
struct NetState {
    listeners: HashMap<String, Arc<dyn Listener>>,
    latency_overrides: HashMap<String, u64>,
    redirects: HashMap<String, String>,
    tamper: HashMap<String, Arc<TamperFn>>,
}

/// The shared network fabric.
#[derive(Clone)]
pub struct SimNet {
    clock: SimClock,
    config: NetConfig,
    state: Arc<Mutex<NetState>>,
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl SimNet {
    /// Creates a network fabric on `clock`.
    #[must_use]
    pub fn new(clock: SimClock, config: NetConfig) -> Self {
        SimNet {
            clock,
            config,
            state: Arc::new(Mutex::new(NetState::default())),
        }
    }

    /// The fabric's clock.
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Binds `listener` at `address` (e.g. `"203.0.113.7:443"`).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::AddressInUse`] when already bound.
    pub fn bind(&self, address: &str, listener: Arc<dyn Listener>) -> Result<(), NetError> {
        let mut state = self.state.lock();
        if state.listeners.contains_key(address) {
            return Err(NetError::AddressInUse(address.to_owned()));
        }
        state.listeners.insert(address.to_owned(), listener);
        Ok(())
    }

    /// Removes the listener at `address` (service shutdown).
    pub fn unbind(&self, address: &str) {
        self.state.lock().listeners.remove(address);
    }

    /// Sets the one-way latency for dials *to* `address`, in microseconds —
    /// e.g. a distant AMD KDS.
    pub fn set_latency(&self, address: &str, one_way_us: u64) {
        self.state
            .lock()
            .latency_overrides
            .insert(address.to_owned(), one_way_us);
    }

    /// ATTACK: silently rewires future dials of `victim` to `attacker`
    /// (BGP hijack / hostile middlebox). TLS endpoint checks must catch it.
    pub fn redirect(&self, victim: &str, attacker: &str) {
        self.state
            .lock()
            .redirects
            .insert(victim.to_owned(), attacker.to_owned());
    }

    /// Removes a redirect.
    pub fn clear_redirect(&self, victim: &str) {
        self.state.lock().redirects.remove(victim);
    }

    /// ATTACK: installs a message-tampering hook on dials to `address`.
    pub fn set_tamper(&self, address: &str, tamper: Arc<TamperFn>) {
        self.state.lock().tamper.insert(address.to_owned(), tamper);
    }

    /// Opens a connection to `address`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ConnectionRefused`] when nothing listens there —
    /// which is exactly what connecting to a Revelio VM's SSH port yields.
    pub fn dial(&self, address: &str) -> Result<Connection, NetError> {
        let state = self.state.lock();
        let effective = state
            .redirects
            .get(address)
            .cloned()
            .unwrap_or_else(|| address.to_owned());
        let listener = state
            .listeners
            .get(&effective)
            .ok_or_else(|| NetError::ConnectionRefused(address.to_owned()))?
            .clone();
        let one_way_us = state
            .latency_overrides
            .get(&effective)
            .or_else(|| state.latency_overrides.get(address))
            .copied()
            .unwrap_or(self.config.default_one_way_us);
        let tamper = state
            .tamper
            .get(&effective)
            .or_else(|| state.tamper.get(address))
            .cloned();
        drop(state);
        Ok(Connection {
            clock: self.clock.clone(),
            handler: listener.accept(),
            one_way_us,
            tamper,
            dialed: address.to_owned(),
            closed: false,
        })
    }
}

/// A client-side connection performing synchronous exchanges.
pub struct Connection {
    clock: SimClock,
    handler: Box<dyn ConnectionHandler>,
    one_way_us: u64,
    tamper: Option<Arc<TamperFn>>,
    dialed: String,
    closed: bool,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("dialed", &self.dialed)
            .field("one_way_us", &self.one_way_us)
            .finish_non_exhaustive()
    }
}

impl Connection {
    /// Sends `message` and waits for the response. Advances the clock by
    /// one round trip.
    ///
    /// # Errors
    ///
    /// Propagates handler errors; a closed connection returns
    /// [`NetError::ConnectionClosed`].
    pub fn exchange(&mut self, message: &[u8]) -> Result<Vec<u8>, NetError> {
        if self.closed {
            return Err(NetError::ConnectionClosed);
        }
        self.clock.advance_us(self.one_way_us);
        let delivered = match &self.tamper {
            Some(t) => t(message),
            None => message.to_vec(),
        };
        let result = self.handler.on_message(&delivered);
        self.clock.advance_us(self.one_way_us);
        if result.is_err() {
            self.closed = true;
        }
        result
    }

    /// The address this connection was dialed to (pre-redirect).
    #[must_use]
    pub fn dialed_address(&self) -> &str {
        &self.dialed
    }

    /// Closes the connection; further exchanges fail.
    pub fn close(&mut self) {
        self.closed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Listener for Echo {
        fn accept(&self) -> Box<dyn ConnectionHandler> {
            struct H;
            impl ConnectionHandler for H {
                fn on_message(&mut self, m: &[u8]) -> Result<Vec<u8>, NetError> {
                    Ok(m.to_vec())
                }
            }
            Box::new(H)
        }
    }

    struct Marker(&'static [u8]);
    impl Listener for Marker {
        fn accept(&self) -> Box<dyn ConnectionHandler> {
            struct H(&'static [u8]);
            impl ConnectionHandler for H {
                fn on_message(&mut self, _m: &[u8]) -> Result<Vec<u8>, NetError> {
                    Ok(self.0.to_vec())
                }
            }
            Box::new(H(self.0))
        }
    }

    fn fabric() -> (SimClock, SimNet) {
        let clock = SimClock::new();
        let net = SimNet::new(
            clock.clone(),
            NetConfig {
                default_one_way_us: 1000,
            },
        );
        (clock, net)
    }

    #[test]
    fn exchange_advances_clock_by_round_trip() {
        let (clock, net) = fabric();
        net.bind("a:1", Arc::new(Echo)).unwrap();
        let mut conn = net.dial("a:1").unwrap();
        conn.exchange(b"x").unwrap();
        assert_eq!(clock.now_us(), 2000);
        conn.exchange(b"x").unwrap();
        assert_eq!(clock.now_us(), 4000);
    }

    #[test]
    fn unbound_port_refuses() {
        let (_, net) = fabric();
        assert_eq!(
            net.dial("vm:22").unwrap_err(),
            NetError::ConnectionRefused("vm:22".into())
        );
    }

    #[test]
    fn double_bind_rejected_and_unbind_frees() {
        let (_, net) = fabric();
        net.bind("a:1", Arc::new(Echo)).unwrap();
        assert!(net.bind("a:1", Arc::new(Echo)).is_err());
        net.unbind("a:1");
        net.bind("a:1", Arc::new(Echo)).unwrap();
    }

    #[test]
    fn per_address_latency_override() {
        let (clock, net) = fabric();
        net.bind("kds:443", Arc::new(Echo)).unwrap();
        net.set_latency("kds:443", 100_000); // a distant service
        let mut conn = net.dial("kds:443").unwrap();
        conn.exchange(b"q").unwrap();
        assert_eq!(clock.now_us(), 200_000);
    }

    #[test]
    fn redirect_reroutes_to_attacker() {
        let (_, net) = fabric();
        net.bind("honest:443", Arc::new(Marker(b"honest"))).unwrap();
        net.bind("evil:443", Arc::new(Marker(b"evil"))).unwrap();
        net.redirect("honest:443", "evil:443");
        let mut conn = net.dial("honest:443").unwrap();
        assert_eq!(conn.exchange(b"hello").unwrap(), b"evil");
        net.clear_redirect("honest:443");
        let mut conn = net.dial("honest:443").unwrap();
        assert_eq!(conn.exchange(b"hello").unwrap(), b"honest");
    }

    #[test]
    fn tamper_rewrites_messages() {
        let (_, net) = fabric();
        net.bind("a:1", Arc::new(Echo)).unwrap();
        net.set_tamper(
            "a:1",
            Arc::new(|m: &[u8]| {
                let mut v = m.to_vec();
                if !v.is_empty() {
                    v[0] ^= 0xff;
                }
                v
            }),
        );
        let mut conn = net.dial("a:1").unwrap();
        assert_eq!(conn.exchange(&[1, 2]).unwrap(), vec![0xfe, 2]);
    }

    #[test]
    fn handler_error_closes_connection() {
        struct Fail;
        impl Listener for Fail {
            fn accept(&self) -> Box<dyn ConnectionHandler> {
                struct H;
                impl ConnectionHandler for H {
                    fn on_message(&mut self, _m: &[u8]) -> Result<Vec<u8>, NetError> {
                        Err(NetError::Protocol("boom".into()))
                    }
                }
                Box::new(H)
            }
        }
        let (_, net) = fabric();
        net.bind("a:1", Arc::new(Fail)).unwrap();
        let mut conn = net.dial("a:1").unwrap();
        assert!(matches!(conn.exchange(b"x"), Err(NetError::Protocol(_))));
        assert_eq!(conn.exchange(b"x"), Err(NetError::ConnectionClosed));
    }

    #[test]
    fn connections_have_independent_handler_state() {
        struct Counter;
        impl Listener for Counter {
            fn accept(&self) -> Box<dyn ConnectionHandler> {
                struct H(u32);
                impl ConnectionHandler for H {
                    fn on_message(&mut self, _m: &[u8]) -> Result<Vec<u8>, NetError> {
                        self.0 += 1;
                        Ok(vec![self.0 as u8])
                    }
                }
                Box::new(H(0))
            }
        }
        let (_, net) = fabric();
        net.bind("a:1", Arc::new(Counter)).unwrap();
        let mut c1 = net.dial("a:1").unwrap();
        let mut c2 = net.dial("a:1").unwrap();
        assert_eq!(c1.exchange(b"").unwrap(), vec![1]);
        assert_eq!(c1.exchange(b"").unwrap(), vec![2]);
        assert_eq!(c2.exchange(b"").unwrap(), vec![1]);
    }
}

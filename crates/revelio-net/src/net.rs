//! The simulated network fabric: listeners, connections, latency, and
//! man-in-the-middle hooks.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::SimClock;
use crate::fault::{FaultEntry, FaultKind, FaultObserver, FaultPlan};
use crate::NetError;

/// Per-connection server-side state machine.
///
/// One handler instance exists per accepted connection; `on_message`
/// receives each client message and returns the response — the synchronous
/// exchange model every protocol in this workspace builds on.
pub trait ConnectionHandler: Send {
    /// Handles one client message, producing the response.
    ///
    /// # Errors
    ///
    /// Implementations return [`NetError::Protocol`] (or
    /// [`NetError::ConnectionClosed`]) to abort the connection.
    fn on_message(&mut self, message: &[u8]) -> Result<Vec<u8>, NetError>;
}

/// A service bound to an address; accepts connections.
pub trait Listener: Send + Sync {
    /// Creates the per-connection handler state.
    fn accept(&self) -> Box<dyn ConnectionHandler>;
}

/// Tampering hook: may rewrite a client→server message in flight.
pub type TamperFn = dyn Fn(&[u8]) -> Vec<u8> + Send + Sync;

/// Latency configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Default one-way link latency in microseconds.
    pub default_one_way_us: u64,
}

impl Default for NetConfig {
    /// 2.6 ms one way — the paper's 5.2 ms base round trip (Table 3).
    fn default() -> Self {
        NetConfig {
            default_one_way_us: 2600,
        }
    }
}

#[derive(Default)]
struct NetState {
    listeners: HashMap<String, Arc<dyn Listener>>,
    latency_overrides: HashMap<String, u64>,
    redirects: HashMap<String, String>,
    tamper: HashMap<String, Arc<TamperFn>>,
    faults: HashMap<String, FaultEntry>,
    fault_seed: u64,
    faults_injected: u64,
    fault_observer: Option<Arc<FaultObserver>>,
}

impl NetState {
    /// Records an injected fault and returns the observer to notify (the
    /// caller invokes it after releasing the lock).
    fn record_fault(&mut self) -> Option<Arc<FaultObserver>> {
        self.faults_injected += 1;
        self.fault_observer.clone()
    }
}

/// The shared network fabric.
#[derive(Clone)]
pub struct SimNet {
    clock: SimClock,
    config: NetConfig,
    state: Arc<Mutex<NetState>>,
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl SimNet {
    /// Creates a network fabric on `clock`.
    #[must_use]
    pub fn new(clock: SimClock, config: NetConfig) -> Self {
        SimNet {
            clock,
            config,
            state: Arc::new(Mutex::new(NetState::default())),
        }
    }

    /// The fabric's clock.
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Binds `listener` at `address` (e.g. `"203.0.113.7:443"`).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::AddressInUse`] when already bound.
    pub fn bind(&self, address: &str, listener: Arc<dyn Listener>) -> Result<(), NetError> {
        let mut state = self.state.lock();
        if state.listeners.contains_key(address) {
            return Err(NetError::AddressInUse(address.to_owned()));
        }
        state.listeners.insert(address.to_owned(), listener);
        Ok(())
    }

    /// Removes the listener at `address` (service shutdown).
    pub fn unbind(&self, address: &str) {
        self.state.lock().listeners.remove(address);
    }

    /// Sets the one-way latency for dials *to* `address`, in microseconds —
    /// e.g. a distant AMD KDS.
    pub fn set_latency(&self, address: &str, one_way_us: u64) {
        self.state
            .lock()
            .latency_overrides
            .insert(address.to_owned(), one_way_us);
    }

    /// ATTACK: silently rewires future dials of `victim` to `attacker`
    /// (BGP hijack / hostile middlebox). TLS endpoint checks must catch it.
    pub fn redirect(&self, victim: &str, attacker: &str) {
        self.state
            .lock()
            .redirects
            .insert(victim.to_owned(), attacker.to_owned());
    }

    /// Removes a redirect.
    pub fn clear_redirect(&self, victim: &str) {
        self.state.lock().redirects.remove(victim);
    }

    /// ATTACK: installs a message-tampering hook on dials to `address`.
    pub fn set_tamper(&self, address: &str, tamper: Arc<TamperFn>) {
        self.state.lock().tamper.insert(address.to_owned(), tamper);
    }

    /// Sets the fabric-wide fault seed. Each faulted address derives its
    /// own decision stream from this seed and its address, so dial order
    /// across addresses cannot perturb another address's stream. Call
    /// before installing plans; already-installed plans are reseeded (and
    /// their fail-first windows reset).
    pub fn set_fault_seed(&self, seed: u64) {
        let mut state = self.state.lock();
        state.fault_seed = seed;
        let reseeded: Vec<(String, FaultPlan)> = state
            .faults
            .iter()
            .map(|(a, e)| (a.clone(), e.plan.clone()))
            .collect();
        for (address, plan) in reseeded {
            let entry = FaultEntry::new(plan, seed, &address);
            state.faults.insert(address, entry);
        }
    }

    /// Installs (or replaces) the fault plan for dials *to* `address`.
    /// Plans are keyed by the **dialed** address — under a redirect the
    /// victim's plan applies, matching the latency/tamper precedence.
    pub fn set_fault_plan(&self, address: &str, plan: FaultPlan) {
        let mut state = self.state.lock();
        let entry = FaultEntry::new(plan, state.fault_seed, address);
        state.faults.insert(address.to_owned(), entry);
    }

    /// Removes the fault plan for `address` — the "faults clear" moment.
    pub fn clear_fault_plan(&self, address: &str) {
        self.state.lock().faults.remove(address);
    }

    /// Installs an observer invoked on every injected fault (outside the
    /// fabric lock). The harness mirrors injections into telemetry.
    pub fn set_fault_observer(&self, observer: Arc<FaultObserver>) {
        self.state.lock().fault_observer = Some(observer);
    }

    /// Total faults injected so far, across all addresses.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.state.lock().faults_injected
    }

    /// Opens a connection to `address`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ConnectionRefused`] when nothing listens there —
    /// which is exactly what connecting to a Revelio VM's SSH port yields —
    /// or [`NetError::Timeout`] when the address's fault plan is inside a
    /// fail-first window.
    pub fn dial(&self, address: &str) -> Result<Connection, NetError> {
        let mut state = self.state.lock();
        // A fail-first window makes the service unreachable: the dial
        // times out before anything is delivered.
        if let Some(entry) = state.faults.get_mut(address) {
            if entry.dial_fails() {
                let timeout_us = entry.plan.timeout_us;
                let observer = state.record_fault();
                drop(state);
                self.clock.advance_us(timeout_us);
                if let Some(obs) = observer {
                    obs(address, FaultKind::Timeout);
                }
                return Err(NetError::Timeout(address.to_owned()));
            }
        }
        let effective = state
            .redirects
            .get(address)
            .cloned()
            .unwrap_or_else(|| address.to_owned());
        let listener = state
            .listeners
            .get(&effective)
            .ok_or_else(|| NetError::ConnectionRefused(address.to_owned()))?
            .clone();
        // The dialed address wins for latency and tamper lookups: an
        // override installed on the victim keeps applying after a
        // redirect, falling back to the attacker's setting only when the
        // victim has none.
        let one_way_us = state
            .latency_overrides
            .get(address)
            .or_else(|| state.latency_overrides.get(&effective))
            .copied()
            .unwrap_or(self.config.default_one_way_us);
        let tamper = state
            .tamper
            .get(address)
            .or_else(|| state.tamper.get(&effective))
            .cloned();
        drop(state);
        Ok(Connection {
            clock: self.clock.clone(),
            handler: listener.accept(),
            one_way_us,
            tamper,
            dialed: address.to_owned(),
            closed: false,
            timeout_us: FaultPlan::default().timeout_us,
            net_state: Arc::clone(&self.state),
        })
    }
}

/// A client-side connection performing synchronous exchanges.
pub struct Connection {
    clock: SimClock,
    handler: Box<dyn ConnectionHandler>,
    one_way_us: u64,
    tamper: Option<Arc<TamperFn>>,
    dialed: String,
    closed: bool,
    /// Timeout window charged for drops/timeouts; refreshed from the
    /// address's fault plan on each exchange.
    timeout_us: u64,
    net_state: Arc<Mutex<NetState>>,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("dialed", &self.dialed)
            .field("one_way_us", &self.one_way_us)
            .finish_non_exhaustive()
    }
}

impl Connection {
    /// Sends `message` and waits for the response. Advances the clock by
    /// one round trip.
    ///
    /// # Errors
    ///
    /// Propagates handler errors; a closed connection returns
    /// [`NetError::ConnectionClosed`].
    pub fn exchange(&mut self, message: &[u8]) -> Result<Vec<u8>, NetError> {
        if self.closed {
            return Err(NetError::ConnectionClosed);
        }
        let (jitter_us, fault) = self.fault_decision();
        let one_way_us = self.one_way_us.saturating_add(jitter_us);
        if let Some(err) = fault {
            self.closed = true;
            // The client spends simulated time discovering the fault: a
            // full timeout window for drops/timeouts, one (jittered)
            // one-way trip for a reset.
            let cost_us = match &err {
                NetError::ConnectionClosed => one_way_us,
                _ => self.timeout_us,
            };
            self.clock.advance_us(cost_us);
            return Err(err);
        }
        self.clock.advance_us(one_way_us);
        let delivered = match &self.tamper {
            Some(t) => t(message),
            None => message.to_vec(),
        };
        let result = self.handler.on_message(&delivered);
        self.clock.advance_us(one_way_us);
        if result.is_err() {
            self.closed = true;
        }
        result
    }

    /// Consults the dialed address's fault plan for this exchange,
    /// returning the one-way jitter and the fault to surface, if any.
    /// Faults fire **before** delivery — the handler never runs, so
    /// server-side state is untouched and a retry is always safe.
    fn fault_decision(&mut self) -> (u64, Option<NetError>) {
        let mut state = self.net_state.lock();
        let Some(entry) = state.faults.get_mut(&self.dialed) else {
            return (0, None);
        };
        let (jitter_us, fault) = entry.exchange_decision();
        self.timeout_us = entry.plan.timeout_us;
        let Some(kind) = fault else {
            return (jitter_us, None);
        };
        let observer = state.record_fault();
        drop(state);
        if let Some(obs) = observer {
            obs(&self.dialed, kind);
        }
        let err = match kind {
            FaultKind::Dropped => NetError::Dropped(self.dialed.clone()),
            FaultKind::Timeout => NetError::Timeout(self.dialed.clone()),
            FaultKind::Reset => NetError::ConnectionClosed,
        };
        (jitter_us, Some(err))
    }

    /// The address this connection was dialed to (pre-redirect).
    #[must_use]
    pub fn dialed_address(&self) -> &str {
        &self.dialed
    }

    /// Closes the connection; further exchanges fail.
    pub fn close(&mut self) {
        self.closed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Listener for Echo {
        fn accept(&self) -> Box<dyn ConnectionHandler> {
            struct H;
            impl ConnectionHandler for H {
                fn on_message(&mut self, m: &[u8]) -> Result<Vec<u8>, NetError> {
                    Ok(m.to_vec())
                }
            }
            Box::new(H)
        }
    }

    struct Marker(&'static [u8]);
    impl Listener for Marker {
        fn accept(&self) -> Box<dyn ConnectionHandler> {
            struct H(&'static [u8]);
            impl ConnectionHandler for H {
                fn on_message(&mut self, _m: &[u8]) -> Result<Vec<u8>, NetError> {
                    Ok(self.0.to_vec())
                }
            }
            Box::new(H(self.0))
        }
    }

    fn fabric() -> (SimClock, SimNet) {
        let clock = SimClock::new();
        let net = SimNet::new(
            clock.clone(),
            NetConfig {
                default_one_way_us: 1000,
            },
        );
        (clock, net)
    }

    #[test]
    fn exchange_advances_clock_by_round_trip() {
        let (clock, net) = fabric();
        net.bind("a:1", Arc::new(Echo)).unwrap();
        let mut conn = net.dial("a:1").unwrap();
        conn.exchange(b"x").unwrap();
        assert_eq!(clock.now_us(), 2000);
        conn.exchange(b"x").unwrap();
        assert_eq!(clock.now_us(), 4000);
    }

    #[test]
    fn unbound_port_refuses() {
        let (_, net) = fabric();
        assert_eq!(
            net.dial("vm:22").unwrap_err(),
            NetError::ConnectionRefused("vm:22".into())
        );
    }

    #[test]
    fn double_bind_rejected_and_unbind_frees() {
        let (_, net) = fabric();
        net.bind("a:1", Arc::new(Echo)).unwrap();
        assert!(net.bind("a:1", Arc::new(Echo)).is_err());
        net.unbind("a:1");
        net.bind("a:1", Arc::new(Echo)).unwrap();
    }

    #[test]
    fn per_address_latency_override() {
        let (clock, net) = fabric();
        net.bind("kds:443", Arc::new(Echo)).unwrap();
        net.set_latency("kds:443", 100_000); // a distant service
        let mut conn = net.dial("kds:443").unwrap();
        conn.exchange(b"q").unwrap();
        assert_eq!(clock.now_us(), 200_000);
    }

    #[test]
    fn redirect_reroutes_to_attacker() {
        let (_, net) = fabric();
        net.bind("honest:443", Arc::new(Marker(b"honest"))).unwrap();
        net.bind("evil:443", Arc::new(Marker(b"evil"))).unwrap();
        net.redirect("honest:443", "evil:443");
        let mut conn = net.dial("honest:443").unwrap();
        assert_eq!(conn.exchange(b"hello").unwrap(), b"evil");
        net.clear_redirect("honest:443");
        let mut conn = net.dial("honest:443").unwrap();
        assert_eq!(conn.exchange(b"hello").unwrap(), b"honest");
    }

    #[test]
    fn victim_latency_and_tamper_survive_redirect() {
        // Satellite fix: settings installed on the dialed (victim) address
        // must keep applying after a redirect; previously the attacker's
        // address shadowed them.
        let (clock, net) = fabric();
        net.bind("honest:443", Arc::new(Marker(b"honest"))).unwrap();
        net.bind("evil:443", Arc::new(Marker(b"evil"))).unwrap();
        net.set_latency("honest:443", 50_000);
        net.set_latency("evil:443", 7);
        net.set_tamper(
            "honest:443",
            Arc::new(|m: &[u8]| {
                let mut v = m.to_vec();
                v.push(b'!');
                v
            }),
        );
        net.redirect("honest:443", "evil:443");
        let start = clock.now_us();
        let mut conn = net.dial("honest:443").unwrap();
        assert_eq!(conn.exchange(b"hello").unwrap(), b"evil");
        // The victim's 50 ms one-way override wins over the attacker's.
        assert_eq!(clock.now_us() - start, 100_000);
    }

    #[test]
    fn attacker_settings_apply_when_victim_has_none() {
        let (clock, net) = fabric();
        net.bind("evil:443", Arc::new(Marker(b"evil"))).unwrap();
        net.set_latency("evil:443", 9_000);
        net.redirect("honest:443", "evil:443");
        let start = clock.now_us();
        let mut conn = net.dial("honest:443").unwrap();
        conn.exchange(b"hello").unwrap();
        assert_eq!(clock.now_us() - start, 18_000);
    }

    #[test]
    fn tamper_rewrites_messages() {
        let (_, net) = fabric();
        net.bind("a:1", Arc::new(Echo)).unwrap();
        net.set_tamper(
            "a:1",
            Arc::new(|m: &[u8]| {
                let mut v = m.to_vec();
                if !v.is_empty() {
                    v[0] ^= 0xff;
                }
                v
            }),
        );
        let mut conn = net.dial("a:1").unwrap();
        assert_eq!(conn.exchange(&[1, 2]).unwrap(), vec![0xfe, 2]);
    }

    #[test]
    fn handler_error_closes_connection() {
        struct Fail;
        impl Listener for Fail {
            fn accept(&self) -> Box<dyn ConnectionHandler> {
                struct H;
                impl ConnectionHandler for H {
                    fn on_message(&mut self, _m: &[u8]) -> Result<Vec<u8>, NetError> {
                        Err(NetError::Protocol("boom".into()))
                    }
                }
                Box::new(H)
            }
        }
        let (_, net) = fabric();
        net.bind("a:1", Arc::new(Fail)).unwrap();
        let mut conn = net.dial("a:1").unwrap();
        assert!(matches!(conn.exchange(b"x"), Err(NetError::Protocol(_))));
        assert_eq!(conn.exchange(b"x"), Err(NetError::ConnectionClosed));
    }

    #[test]
    fn outage_plan_drops_every_exchange_before_delivery() {
        use std::sync::atomic::{AtomicU32, Ordering};
        struct Count(Arc<AtomicU32>);
        impl Listener for Count {
            fn accept(&self) -> Box<dyn ConnectionHandler> {
                struct H(Arc<AtomicU32>);
                impl ConnectionHandler for H {
                    fn on_message(&mut self, _m: &[u8]) -> Result<Vec<u8>, NetError> {
                        self.0.fetch_add(1, Ordering::SeqCst);
                        Ok(vec![])
                    }
                }
                Box::new(H(Arc::clone(&self.0)))
            }
        }
        let (clock, net) = fabric();
        let delivered = Arc::new(AtomicU32::new(0));
        net.bind("a:1", Arc::new(Count(Arc::clone(&delivered))))
            .unwrap();
        net.set_fault_seed(1);
        net.set_fault_plan("a:1", FaultPlan::outage());
        let start = clock.now_us();
        let mut conn = net.dial("a:1").unwrap();
        assert_eq!(conn.exchange(b"x"), Err(NetError::Dropped("a:1".into())));
        // The handler never ran, and a full timeout window was spent.
        assert_eq!(delivered.load(Ordering::SeqCst), 0);
        assert_eq!(clock.now_us() - start, 1_000_000);
        assert_eq!(net.faults_injected(), 1);
        // Clearing the plan restores delivery.
        net.clear_fault_plan("a:1");
        let mut conn = net.dial("a:1").unwrap();
        assert!(conn.exchange(b"x").is_ok());
        assert_eq!(delivered.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn fail_first_window_times_out_dials_then_recovers() {
        let (clock, net) = fabric();
        net.bind("a:1", Arc::new(Echo)).unwrap();
        net.set_fault_seed(3);
        net.set_fault_plan(
            "a:1",
            FaultPlan {
                timeout_us: 250_000,
                ..FaultPlan::fail_first(2)
            },
        );
        let start = clock.now_us();
        assert_eq!(
            net.dial("a:1").unwrap_err(),
            NetError::Timeout("a:1".into())
        );
        assert_eq!(
            net.dial("a:1").unwrap_err(),
            NetError::Timeout("a:1".into())
        );
        assert_eq!(clock.now_us() - start, 500_000);
        let mut conn = net.dial("a:1").unwrap();
        assert!(conn.exchange(b"x").is_ok());
        assert_eq!(net.faults_injected(), 2);
    }

    #[test]
    fn reset_fault_surfaces_connection_closed() {
        let (_, net) = fabric();
        net.bind("a:1", Arc::new(Echo)).unwrap();
        net.set_fault_seed(5);
        net.set_fault_plan(
            "a:1",
            FaultPlan {
                reset_probability: 1.0,
                ..FaultPlan::default()
            },
        );
        let mut conn = net.dial("a:1").unwrap();
        assert_eq!(conn.exchange(b"x"), Err(NetError::ConnectionClosed));
        // A faulted connection is closed; later exchanges fail fast.
        assert_eq!(conn.exchange(b"x"), Err(NetError::ConnectionClosed));
        assert_eq!(net.faults_injected(), 1);
    }

    #[test]
    fn jitter_stretches_round_trips_deterministically() {
        let run = |seed: u64| {
            let (clock, net) = fabric();
            net.bind("a:1", Arc::new(Echo)).unwrap();
            net.set_fault_seed(seed);
            net.set_fault_plan(
                "a:1",
                FaultPlan {
                    jitter_us: 800,
                    ..FaultPlan::default()
                },
            );
            let mut conn = net.dial("a:1").unwrap();
            for _ in 0..8 {
                conn.exchange(b"x").unwrap();
            }
            clock.now_us()
        };
        let base = {
            let (clock, net) = fabric();
            net.bind("a:1", Arc::new(Echo)).unwrap();
            let mut conn = net.dial("a:1").unwrap();
            for _ in 0..8 {
                conn.exchange(b"x").unwrap();
            }
            clock.now_us()
        };
        let a = run(21);
        assert_eq!(a, run(21), "same seed, same timings");
        assert!(a >= base && a <= base + 8 * 2 * 800);
    }

    #[test]
    fn same_seed_yields_identical_fault_streams() {
        let stream = |seed: u64| {
            let (_, net) = fabric();
            net.bind("a:1", Arc::new(Echo)).unwrap();
            net.set_fault_seed(seed);
            net.set_fault_plan(
                "a:1",
                FaultPlan {
                    drop_probability: 0.3,
                    timeout_probability: 0.2,
                    reset_probability: 0.1,
                    ..FaultPlan::default()
                },
            );
            let mut out = Vec::new();
            for _ in 0..32 {
                let mut conn = net.dial("a:1").unwrap();
                out.push(conn.exchange(b"x").is_ok());
            }
            out
        };
        assert_eq!(stream(99), stream(99));
        assert_ne!(stream(99), stream(100));
    }

    #[test]
    fn fault_observer_sees_every_injection() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let (_, net) = fabric();
        net.bind("a:1", Arc::new(Echo)).unwrap();
        net.set_fault_seed(1);
        net.set_fault_plan("a:1", FaultPlan::outage());
        let seen = Arc::new(AtomicU32::new(0));
        let seen2 = Arc::clone(&seen);
        net.set_fault_observer(Arc::new(move |address, kind| {
            assert_eq!(address, "a:1");
            assert_eq!(kind, FaultKind::Dropped);
            seen2.fetch_add(1, Ordering::SeqCst);
        }));
        for _ in 0..5 {
            let mut conn = net.dial("a:1").unwrap();
            let _ = conn.exchange(b"x");
        }
        assert_eq!(seen.load(Ordering::SeqCst), 5);
        assert_eq!(net.faults_injected(), 5);
    }

    #[test]
    fn connections_have_independent_handler_state() {
        struct Counter;
        impl Listener for Counter {
            fn accept(&self) -> Box<dyn ConnectionHandler> {
                struct H(u32);
                impl ConnectionHandler for H {
                    fn on_message(&mut self, _m: &[u8]) -> Result<Vec<u8>, NetError> {
                        self.0 += 1;
                        Ok(vec![self.0 as u8])
                    }
                }
                Box::new(H(0))
            }
        }
        let (_, net) = fabric();
        net.bind("a:1", Arc::new(Counter)).unwrap();
        let mut c1 = net.dial("a:1").unwrap();
        let mut c2 = net.dial("a:1").unwrap();
        assert_eq!(c1.exchange(b"").unwrap(), vec![1]);
        assert_eq!(c1.exchange(b"").unwrap(), vec![2]);
        assert_eq!(c2.exchange(b"").unwrap(), vec![1]);
    }
}
